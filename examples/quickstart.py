"""Quickstart: the paper's running example (Example 1), end to end.

The instructor's reference query finds students who registered for *exactly
one* CS course; the student's query finds students with *one or more* CS
courses.  RATest evaluates both on the test instance of Figure 1, notices they
disagree, and explains the mistake with a three-tuple counterexample.

Run with:  python examples/quickstart.py
"""

from repro import RATest
from repro.datagen import toy_university_instance
from repro.ratest import format_instance

CORRECT_QUERY = r"""
(
  \project_{s.name -> name, s.major -> major} (
    \rename_{prefix: s} Student
    \join_{s.name = r.name and r.dept = 'CS'}
    \rename_{prefix: r} Registration
  )
) \diff (
  \project_{s.name -> name, s.major -> major} (
    \rename_{prefix: s} Student
    \join_{s.name = r1.name}
    \rename_{prefix: r1} Registration
    \join_{s.name = r2.name and r1.course <> r2.course and r1.dept = 'CS' and r2.dept = 'CS'}
    \rename_{prefix: r2} Registration
  )
)
"""

STUDENT_QUERY = r"""
\project_{s.name -> name, s.major -> major} (
  \rename_{prefix: s} Student
  \join_{s.name = r.name and r.dept = 'CS'}
  \rename_{prefix: r} Registration
)
"""


def main() -> None:
    instance = toy_university_instance()
    print("Test database instance (Figure 1 of the paper):\n")
    print(format_instance(instance))
    print()

    tool = RATest(instance)
    outcome = tool.check(CORRECT_QUERY, STUDENT_QUERY)
    print("Submitting the student's query ...\n")
    print(outcome.render())

    report = outcome.report
    assert report is not None and report.counterexample_size == 3
    print()
    print(f"Summary: {report.summary()}")
    print(
        "The full test instance has "
        f"{instance.total_size()} tuples; the explanation needs only "
        f"{report.counterexample_size}."
    )


if __name__ == "__main__":
    main()
