"""A course grading session: auto-grader plus counterexample feedback.

This reproduces the workflow of §7.1/§8: students submit relational algebra
queries for the eight homework questions; the auto-grader checks them on a
*hidden* instance (much larger than the sample instance they can see); failing
submissions get a small counterexample as feedback.  The script also shows the
Table 3 effect: a larger hidden instance catches more wrong queries.

Run with:  python examples/grading_session.py
"""

from repro.datagen import university_instance, university_instance_with_size
from repro.ratest import AutoGrader, Question, RATest
from repro.ra.evaluator import evaluate
from repro.workload import course_questions, course_submission_pool


def build_grader(hidden_size: int = 60):
    hidden = university_instance(hidden_size, seed=2018)
    questions = {
        q.key: Question(q.key, q.prompt, q.correct_query, q.difficulty)
        for q in course_questions()
    }
    return AutoGrader(hidden, questions), hidden


def grade_one_student(grader: AutoGrader, hidden) -> None:
    """One simulated student: right on q1, wrong on q2 (the classic mistake)."""
    q1, q2 = course_questions()[0], course_questions()[1]
    submissions = {
        q1.key: q1.correct_query,
        q2.key: q2.handwritten_wrong_queries[0],  # "one or more" instead of "exactly one"
    }
    report = grader.grade(submissions, explain=True)
    print(f"Auto-grader: {report.num_passed} passed, {report.num_failed} failed\n")

    tool = RATest(hidden)
    for entry in report.entries:
        question = next(q for q in course_questions() if q.key == entry.question)
        if entry.passed:
            print(f"[{entry.question}] PASSED — {question.prompt}")
            continue
        print(f"[{entry.question}] FAILED — {question.prompt}")
        outcome = tool.check(question.correct_query, submissions[entry.question])
        if outcome.report is not None:
            print()
            print(outcome.report.render())
        print()


def table3_style_sweep() -> None:
    """More test data catches more wrong queries (the Table 3 effect)."""
    pool = course_submission_pool(seed=7, mutants_per_question=15)
    print("Wrong queries discovered vs hidden instance size")
    print("(pool of", pool.total_wrong(), "wrong queries)")
    for size in (200, 600, 1500):
        hidden = university_instance_with_size(size, seed=2018)
        reference = {
            q.key: evaluate(q.correct_query, hidden) for q in course_questions()
        }
        discovered = 0
        for key, wrong_queries in pool.wrong_queries.items():
            for wrong in wrong_queries:
                try:
                    if not evaluate(wrong, hidden).same_rows(reference[key]):
                        discovered += 1
                except Exception:
                    discovered += 1
        print(f"  |D| = {hidden.total_size():5d}  ->  {discovered} wrong queries discovered")


def main() -> None:
    grader, hidden = build_grader()
    print(f"Hidden grading instance: {hidden.total_size()} tuples\n")
    grade_one_student(grader, hidden)
    table3_style_sweep()


if __name__ == "__main__":
    main()
