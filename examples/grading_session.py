"""A course grading session, served through the batch-first GradingService.

This reproduces the workflow of §7.1/§8: students submit relational algebra
queries for the homework questions; the grading service checks them on a
*hidden* instance (much larger than the sample instance they can see); failing
submissions get a small counterexample as feedback.  Everything is graded in
one ``submit_batch`` call over a shared warm engine session, and every grade
is JSON-serializable — the script prints one grade as the JSONL the ``batch``
CLI emits.  The Table 3 effect (a larger hidden instance catches more wrong
queries) is measured through the AutoGrader adapter on top of the same
service.

Run with:  python examples/grading_session.py
"""

import json

from repro import AutoGrader, GradingService, Question, SubmissionRequest
from repro.datagen import university_instance, university_instance_with_size
from repro.workload import course_questions, course_submission_pool


def build_service(hidden_size: int = 60):
    hidden = university_instance(hidden_size, seed=2018)
    return GradingService.for_instance(hidden, name="hidden-university"), hidden


def grade_class_batch(service: GradingService) -> None:
    """A small class: every (student, question) pair graded in one batch."""
    q1, q2 = course_questions()[0], course_questions()[1]
    requests = [
        SubmissionRequest(q1.correct_text, q1.correct_text, id="alice/q1"),
        SubmissionRequest(q2.correct_text, q2.correct_text, id="alice/q2"),
        SubmissionRequest(q1.correct_text, q1.correct_text, id="bob/q1"),
        # The classic mistake: "one or more" instead of "exactly one".
        SubmissionRequest(q2.correct_text, q2.wrong_texts[0], id="bob/q2"),
    ]
    graded = service.submit_batch(requests, workers=4)

    passed = sum(1 for g in graded if g.correct)
    print(f"Batch of {len(graded)} submissions: {passed} passed, {len(graded) - passed} failed\n")
    for result in graded:
        if result.correct:
            print(f"[{result.id}] PASSED")
            continue
        print(f"[{result.id}] FAILED")
        if result.outcome.report is not None:
            print()
            print(result.outcome.render())
        print()

    failed = next(g for g in graded if not g.correct)
    line = json.dumps(failed.to_dict(), sort_keys=True)
    print("The same grade as the machine-readable JSONL record (truncated):")
    print(line[:160] + f"... ({len(line)} bytes)\n")


def table3_style_sweep() -> None:
    """More test data catches more wrong queries (the Table 3 effect)."""
    pool = course_submission_pool(seed=7, mutants_per_question=15)
    questions = {
        q.key: Question(q.key, q.prompt, q.correct_query, q.difficulty)
        for q in course_questions()
    }
    print("Wrong queries discovered vs hidden instance size")
    print("(pool of", pool.total_wrong(), "wrong queries, screened via submit_batch)")
    for size in (200, 600, 1500):
        hidden = university_instance_with_size(size, seed=2018)
        grader = AutoGrader(hidden, questions)
        discovered = grader.count_discovered_wrong_queries(pool.wrong_queries, workers=4)
        print(f"  |D| = {hidden.total_size():5d}  ->  {discovered} wrong queries discovered")


def main() -> None:
    service, hidden = build_service()
    print(f"Hidden grading instance: {hidden.total_size()} tuples\n")
    grade_class_batch(service)
    table3_style_sweep()


if __name__ == "__main__":
    main()
