"""Replay the §8 user study on a simulated cohort and print its tables.

Real students are not available to a reproduction, so the cohort is simulated
(see ``repro.userstudy``); the analysis pipeline then regenerates the paper's
Figure 8 (usage statistics), Table 5 (scores by usage), Figure 9 (transfer to
similar problems) and Figure 10 (questionnaire).

Run with:  python examples/user_study_replay.py
"""

from repro.experiments import user_study_experiments
from repro.userstudy import headline_findings, simulate_cohort


def main() -> None:
    results = user_study_experiments("paper", seed=2018)
    for key in ("figure8", "table5", "figure9", "figure10"):
        print(results[key].to_markdown())

    cohort = simulate_cohort(169, seed=2018)
    findings = headline_findings(cohort)
    print("Headline findings (cf. the Summary paragraph of §8):")
    print(
        "  * RATest users scored at least as well on the hard problems (g), (i):",
        findings["users_better_on_hard_problems"],
    )
    print(
        "  * Using RATest on (i) transferred to the similar problem (h):",
        findings["transfer_to_similar_problem"],
    )
    print(
        "  * No comparable effect on the dissimilar problem (j):",
        findings["no_transfer_to_dissimilar_problem"],
    )
    print(
        "  * Respondents agreeing counterexamples helped them fix their queries:",
        f"{findings['pct_agree_counterexamples_helped']:.1f}%",
    )


if __name__ == "__main__":
    main()
