"""Regression-testing rewritten aggregate queries on TPC-H (the §7.2 scenario).

A developer "optimises" TPC-H Q18 and Q16 but the rewrites are subtly wrong.
Running the rewrite against the reference query on a test database produces a
difference; the aggregate counterexample algorithms explain it with a handful
of tuples, and parameterizing the HAVING constant (Agg-Param) shrinks the
explanation further — the Figure 6 / Figure 7 story.

Run with:  python examples/tpch_regression.py
"""

from repro.core import (
    smallest_counterexample_agg_basic,
    smallest_counterexample_agg_opt,
)
from repro.datagen import tpch_instance
from repro.ra import evaluate, results_differ
from repro.ratest import format_instance
from repro.solver import AggregateSolverConfig
from repro.workload import tpch_query


def explain(query_key: str, variant_index: int, instance) -> None:
    query = tpch_query(query_key)
    correct = query.correct_query
    rewrite = query.wrong_queries[variant_index]
    print(f"=== {query_key}: {query.description}")
    if not results_differ(correct, rewrite, instance):
        print("    (rewrite is indistinguishable at this scale — try a larger scale)\n")
        return
    reference_rows = len(evaluate(correct, instance))
    rewrite_rows = len(evaluate(rewrite, instance))
    print(f"    reference returns {reference_rows} rows, rewrite returns {rewrite_rows} rows")

    config = AggregateSolverConfig(max_nodes=40_000, time_budget=10.0)
    heuristic = smallest_counterexample_agg_opt(correct, rewrite, instance)
    print(
        f"    Agg-Opt  : counterexample of {heuristic.size} tuples "
        f"in {heuristic.total_time():.2f}s"
    )
    basic = smallest_counterexample_agg_basic(correct, rewrite, instance, solver_config=config)
    print(
        f"    Agg-Basic: counterexample of {basic.size} tuples "
        f"in {basic.total_time():.2f}s "
        f"({'optimal' if basic.optimal else 'budget exhausted'})"
    )
    if query.has_aggregate_predicate:
        parameterized = smallest_counterexample_agg_basic(
            correct, rewrite, instance, parameterize=True, solver_config=config
        )
        setting = ", ".join(
            f"@{name}={value}" for name, value in sorted(parameterized.parameter_values.items())
        )
        print(
            f"    Agg-Param: counterexample of {parameterized.size} tuples "
            f"with parameter setting {setting}"
        )
    print()
    print("    Counterexample returned by Agg-Opt:")
    print(_indent(format_instance(heuristic.counterexample), 6))
    print()


def _indent(text: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line for line in text.splitlines())


def main() -> None:
    instance = tpch_instance(scale=0.1, seed=1)
    print(f"TPC-H-lite test database: {instance.total_size()} tuples\n")
    explain("Q18", 1, instance)   # rewrite added a spurious returnflag filter
    explain("Q16", 1, instance)   # rewrite dropped the supplier exclusion
    explain("Q21", 0, instance)   # rewrite forgot the "sole failing supplier" check


if __name__ == "__main__":
    main()
