"""Setuptools entry point (kept for offline editable installs without wheel)."""
from setuptools import setup

setup()
