"""Setuptools entry point (kept for offline editable installs without wheel).

The version is parsed from ``src/repro/__init__.py`` — the package's single
source of truth — rather than duplicated here.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def _version() -> str:
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=_version(),
    package_dir={"": "src"},
    packages=find_packages("src"),
)
