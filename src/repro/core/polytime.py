"""Poly-time specialised algorithms from the complexity dichotomy (Table 1).

Two specialised algorithms are implemented:

* :func:`smallest_witness_monotone_dnf` — Theorem 6: when both queries are
  monotone (SPJU, covering the SJ, SPU, JU* and PJ rows of the table), the
  how-provenance of the target tuple w.r.t. *Q1 alone* can be expanded into
  DNF and the smallest minterm is the smallest witness, because removing
  tuples can never put the target into the monotone Q2.
* :func:`smallest_witness_spjud_star` — Theorem 7: for SPJUD* queries
  (differences only at the top), the smallest witness is a union of minimal
  witnesses of the target w.r.t. the difference-free terminals, so it can be
  found by enumerating combinations of per-terminal minimal witnesses.

Both are exercised against the generic solver and against a brute-force
oracle in the test suite.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

from repro.catalog.constraints import close_under_foreign_keys
from repro.catalog.instance import DatabaseInstance, Values
from repro.core.common import (
    Stopwatch,
    annotate_cached,
    evaluate_cached,
    finalize_result,
    pick_witness_target,
)
from repro.core.fk import dangling_children
from repro.engine.session import EngineSession
from repro.core.results import CounterexampleResult
from repro.errors import CounterexampleError, NotApplicableError
from repro.provenance.boolexpr import to_dnf
from repro.ra.analysis import QueryClass, profile, spju_terminals
from repro.ra.ast import Difference, RAExpression
from repro.ra.evaluator import evaluate

ParamValues = Mapping[str, Any]


def smallest_witness_monotone_dnf(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    params: ParamValues | None = None,
    max_terms: int = 100_000,
    session: EngineSession | None = None,
) -> CounterexampleResult:
    """Theorem 6: smallest witness for monotone (SPJU) query pairs via DNF."""
    profile1, profile2 = profile(q1), profile(q2)
    if not profile1.is_monotone or not profile2.is_monotone:
        raise NotApplicableError(
            "the DNF algorithm requires both queries to be monotone (SPJU)"
        )
    stopwatch = Stopwatch()
    with stopwatch.measure("raw_eval"):
        row, winning, _losing = pick_witness_target(q1, q2, instance, params, session)
    with stopwatch.measure("provenance"):
        annotated = annotate_cached(winning, instance, params, session)
        expression = annotated.expression_for(row)
    with stopwatch.measure("solver"):
        minterms = to_dnf(expression, max_terms=max_terms)
        # A derivation through a tuple whose foreign-key reference is dangling
        # in the full instance is inadmissible — the solver-based algorithms
        # encode it as ``¬tid`` and so must the specialisations, or the two
        # families would disagree on minimality (found by the fuzz verifier).
        dangling = dangling_children(instance)
        if dangling:
            minterms = [term for term in minterms if not (term & dangling)]
        minterms.sort(key=lambda term: (len(term), sorted(term)))
        smallest: frozenset[str] | None = None
        closed: set[str] = set()
        for term in minterms:
            candidate = close_under_foreign_keys(instance, term)
            if not (candidate & dangling):
                smallest, closed = term, candidate
                break
        if smallest is None:
            raise CounterexampleError(
                "every derivation of the witness target requires a tuple with "
                "a dangling foreign-key reference"
            )
    return finalize_result(
        q1,
        q2,
        instance,
        closed,
        distinguishing_row=row,
        optimal=len(closed) == len(smallest),
        algorithm="polytime-dnf",
        timings=stopwatch.finish(),
        params=params,
    )


def smallest_witness_spjud_star(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    params: ParamValues | None = None,
    max_witnesses_per_terminal: int = 64,
    max_combinations: int = 50_000,
    session: EngineSession | None = None,
) -> CounterexampleResult:
    """Theorem 7: smallest witness for SPJUD* query pairs by terminal enumeration."""
    for query in (q1, q2):
        query_class = profile(query).query_class
        if query_class not in (
            QueryClass.SPJUD_STAR,
            QueryClass.SJ,
            QueryClass.SPU,
            QueryClass.PJ,
            QueryClass.JU,
            QueryClass.JU_STAR,
            QueryClass.SPJU,
        ):
            raise NotApplicableError(
                f"the SPJUD* algorithm does not apply to query class {query_class.value}"
            )
    stopwatch = Stopwatch()
    with stopwatch.measure("raw_eval"):
        row, winning, losing = pick_witness_target(q1, q2, instance, params, session)
    combined = Difference(winning, losing)
    terminals = spju_terminals(combined)

    # Minimal witnesses of the target w.r.t. every terminal containing it.
    dangling = dangling_children(instance)
    with stopwatch.measure("provenance"):
        options: list[list[frozenset[str]]] = []
        for terminal in terminals:
            annotated = annotate_cached(terminal, instance, params, session)
            if row not in annotated.provenance:
                continue
            expression = annotated.expression_for(row)
            if not expression.is_positive():
                # A difference hidden below a rename/projection survives the
                # class check but leaves negations in the terminal; Theorem 7
                # does not apply then.
                raise NotApplicableError(
                    "a decomposed terminal still contains negation; the query "
                    "pair is not SPJUD* after normalisation"
                )
            minterms = to_dnf(expression)
            if dangling:
                # Match the solver encoding: never build on a tuple whose
                # reference is dangling in the full instance.
                minterms = [term for term in minterms if not (term & dangling)]
            minterms.sort(key=lambda term: (len(term), sorted(term)))
            choices = [frozenset()] + minterms[:max_witnesses_per_terminal]
            options.append(choices)
    if not options:
        raise NotApplicableError("the witness target is not produced by any terminal")

    best: frozenset[str] | None = None
    examined = 0
    exhausted = True
    with stopwatch.measure("solver"):
        for combination in itertools.product(*options):
            examined += 1
            if examined > max_combinations:
                exhausted = False
                break
            candidate = frozenset().union(*combination)
            if best is not None and len(candidate) >= len(best):
                continue
            closed = frozenset(close_under_foreign_keys(instance, candidate))
            if closed & dangling:
                continue  # closure dragged in a tuple that cannot be supported
            if best is not None and len(closed) >= len(best):
                continue
            subinstance = instance.subinstance(closed)
            result = evaluate(combined, subinstance, params)
            if row in result.rows:
                best = closed
    if best is None:
        raise NotApplicableError("terminal enumeration found no witness (budget too small)")
    return finalize_result(
        q1,
        q2,
        instance,
        best,
        distinguishing_row=row,
        optimal=exhausted,
        algorithm="spjud-star",
        timings=stopwatch.finish(),
        params=params,
    )
