"""Foreign-key clauses for the counterexample solvers (§4.3).

Counterexamples must satisfy referential integrity: keeping a child tuple
requires keeping at least one matching parent tuple.  Keys, functional
dependencies and NOT NULL constraints are closed under subinstances and need
no clauses (§2.1).

:func:`foreign_key_clauses` builds the implication clauses restricted to the
tuples the solver may actually keep, following references transitively (a
Registration row may require a Student row, which may itself require a
Department row, and so on).
"""

from __future__ import annotations

from typing import Iterable

from repro.catalog.constraints import ForeignKeyConstraint
from repro.catalog.instance import DatabaseInstance, split_tid
from repro.solver.minones import ForeignKeyClause


def dangling_children(instance: DatabaseInstance) -> set[str]:
    """Tids whose non-NULL foreign-key reference has no matching parent at all.

    The solver encoding turns such a tuple into a unit clause ``¬child`` (it
    can never be part of a referentially valid witness); the enumeration-based
    algorithms and the verifier use this set to apply the same rule, so every
    algorithm agrees on which witnesses are admissible — including on dirty
    fuzz instances that violate their own constraints.
    """
    dangling: set[str] = set()
    for constraint in instance.schema.constraints:
        if not isinstance(constraint, ForeignKeyConstraint):
            continue
        for child_tid, parents in constraint.implications(instance).items():
            if not parents:
                dangling.add(child_tid)
    return dangling


def foreign_key_clauses(
    instance: DatabaseInstance, relevant_tids: Iterable[str]
) -> list[ForeignKeyClause]:
    """Implication clauses ``child ⇒ parent₁ ∨ …`` for every relevant child tuple.

    ``relevant_tids`` are the tuples that may appear in the counterexample
    (typically the variables of the provenance constraint).  Parents referenced
    by those children are added to the frontier so that chains of foreign keys
    are covered.
    """
    foreign_keys = [
        c for c in instance.schema.constraints if isinstance(c, ForeignKeyConstraint)
    ]
    if not foreign_keys:
        return []

    implications_per_fk = [(fk, fk.implications(instance)) for fk in foreign_keys]
    clauses: list[ForeignKeyClause] = []
    emitted: set[tuple[str, str]] = set()
    frontier = set(relevant_tids)
    processed: set[str] = set()
    while frontier:
        tid = frontier.pop()
        if tid in processed:
            continue
        processed.add(tid)
        relation_name, _ = split_tid(tid)
        for fk, implications in implications_per_fk:
            if fk.child != relation_name or tid not in implications:
                continue
            key = (tid, str(fk))
            if key in emitted:
                continue
            emitted.add(key)
            parents = tuple(implications[tid])
            clauses.append(ForeignKeyClause(tid, parents))
            for parent in parents:
                if parent not in processed:
                    frontier.add(parent)
    return clauses
