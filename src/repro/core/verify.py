"""Machine verification of counterexamples: the pipeline's trust layer.

A counterexample is only worth showing a student if it provably does what the
report claims.  Given a :class:`~repro.core.results.CounterexampleResult`,
:func:`verify_counterexample` re-establishes every claim from scratch:

* **validity** — the witness sub-instance really is induced by ``tids`` from
  the graded instance, and re-evaluating both queries on it (under the
  result's parameter setting) still distinguishes them, matching the recorded
  ``q1_rows``/``q2_rows`` bit for bit;
* **foreign-key closure** — every kept child tuple that has at least one
  matching parent in the full instance keeps one in the witness too (chained
  references included, because *every* kept tuple is checked);
* **size accounting** — ``result.size``, the materialised sub-instance and
  the tid set all agree on the paper's distinct-tuple cardinality metric;
* **minimality** — when the solver claimed ``optimal=True`` (a proven
  minimum for the witness target it examined), the claim is cross-checked
  against two independent oracles: exhaustive subset search
  (:mod:`repro.theory.bruteforce` style, on small instances) and Naive-M /
  Opt agreement — re-deriving the provenance constraint and asking the model
  *enumeration* strategy and a fresh *minimisation* for anything smaller.

The fuzzer's counterexample mode (``repro.workload.fuzz``) and the FK-closure
suite drive this over hundreds of generated wrong-query pairs; any failure it
ever reports is a genuine bug in an algorithm, a solver, or the provenance
layer — which is exactly the point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from math import comb
from typing import Any, Iterable, Mapping

from repro.catalog.constraints import ForeignKeyConstraint
from repro.catalog.instance import DatabaseInstance, Values
from repro.core.common import evaluate_cached
from repro.core.fk import foreign_key_clauses
from repro.core.results import CounterexampleResult, witness_cardinality
from repro.engine.session import EngineSession
from repro.errors import ReproError, SolverError
from repro.provenance.annotate import annotate
from repro.ra.ast import Difference, RAExpression
from repro.ra.evaluator import evaluate
from repro.ra.rewrite import (
    add_tuple_selection,
    expression_parameters,
    parameterize_query,
    push_selections_down,
)
from repro.solver.minones import MinOnesProblem, MinOnesSolver

ParamValues = Mapping[str, Any]

#: Aggregate algorithms produce *group-key* distinguishing rows and validate
#: against (possibly re-parameterized) aggregate queries; their optimality
#: claim lives in a different solver, so the SWP-specific minimality oracles
#: below do not apply to them.
_AGGREGATE_ALGORITHMS_PREFIXES = ("agg-",)


class VerificationFailure(ReproError):
    """A counterexample failed machine verification.

    Carries the full :class:`VerificationReport` so callers (the fuzzer, CI)
    can print every failed check alongside the reproduction line.
    """

    def __init__(self, report: "VerificationReport") -> None:
        super().__init__("; ".join(report.issues) or "counterexample verification failed")
        self.report = report


@dataclass
class VerificationReport:
    """Outcome of verifying one counterexample."""

    algorithm: str
    #: Check name → ``"ok"`` / ``"failed"`` / ``"skipped"``.
    checks: dict[str, str] = field(default_factory=dict)
    #: Human-readable description of every failed check.
    issues: list[str] = field(default_factory=list)
    #: How minimality was established: ``"bruteforce"``, ``"enumeration"``,
    #: ``"bruteforce+enumeration"``, ``"not_claimed"`` or ``"skipped"``.
    minimality_method: str = "skipped"

    @property
    def valid(self) -> bool:
        return not self.issues

    def _ok(self, check: str) -> None:
        self.checks[check] = "ok"

    def _skip(self, check: str) -> None:
        self.checks[check] = "skipped"

    def _fail(self, check: str, message: str) -> None:
        self.checks[check] = "failed"
        self.issues.append(f"{check}: {message}")

    def raise_if_invalid(self) -> "VerificationReport":
        if not self.valid:
            raise VerificationFailure(self)
        return self


def verify_counterexample(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    result: CounterexampleResult,
    *,
    params: ParamValues | None = None,
    session: EngineSession | None = None,
    check_minimality: bool = True,
    bruteforce_budget: int = 20_000,
    enumeration_budget: int = 48,
    solver_time_budget: float | None = 5.0,
) -> VerificationReport:
    """Re-establish every claim a counterexample result makes.

    ``q1``/``q2`` are the queries the result was computed for (the *original*
    queries — parameterized variants produced by the SCP algorithms are
    re-derived internally exactly as the algorithms derive them).  ``params``
    is the original caller-supplied binding; the result's own
    ``parameter_values`` take precedence where they overlap.

    ``bruteforce_budget`` caps the number of candidate subsets the exhaustive
    minimality oracle may examine (it runs only when the whole search fits);
    ``enumeration_budget`` is the Naive-M model count of the solver-agreement
    oracle.  Returns a :class:`VerificationReport`; use
    :meth:`VerificationReport.raise_if_invalid` to turn failures into an
    exception.
    """
    report = VerificationReport(algorithm=result.algorithm)
    binding: dict[str, Any] = dict(params or {})
    binding.update(result.parameter_values)

    _check_witness_tuples(instance, result, report)
    _check_size_accounting(result, report)
    effective = _check_distinguishes(
        q1, q2, instance, result, binding, dict(params or {}), report
    )
    _check_fk_closure(instance, result, report)

    if not result.optimal:
        report.minimality_method = "not_claimed"
        report._skip("minimality")
        return report
    if not check_minimality or effective is None:
        report._skip("minimality")
        return report
    if result.algorithm.startswith(_AGGREGATE_ALGORITHMS_PREFIXES):
        # Group-key targets and re-parameterized validation put aggregate
        # results outside the SWP oracles; their branch-and-bound solver is
        # cross-checked directly in tests/test_solver_theory.py.
        report._skip("minimality")
        return report

    eff_q1, eff_q2 = effective
    oriented = _orient_target(eff_q1, eff_q2, instance, result, binding, session)
    if oriented is None:
        report._skip("minimality")
        return report
    target, winning, losing = oriented

    methods: list[str] = []
    if _minimality_by_bruteforce(
        winning, losing, target, instance, result, binding, report, bruteforce_budget
    ):
        methods.append("bruteforce")
    if _minimality_by_solver_agreement(
        winning,
        losing,
        target,
        instance,
        result,
        binding,
        report,
        session,
        enumeration_budget,
        solver_time_budget,
    ):
        methods.append("enumeration")
    report.minimality_method = "+".join(methods) if methods else "skipped"
    if report.checks.get("minimality") is None:
        report.checks["minimality"] = "ok" if methods else "skipped"
    return report


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


def _check_witness_tuples(
    instance: DatabaseInstance, result: CounterexampleResult, report: VerificationReport
) -> None:
    """The witness really is the sub-instance of ``instance`` induced by ``tids``."""
    check = "witness_tuples"
    witness_tids = {
        tid
        for relation in result.counterexample.relations.values()
        for tid in relation.tids()
    }
    if witness_tids != set(result.tids):
        report._fail(
            check,
            f"materialised witness holds {sorted(witness_tids)} "
            f"but tids claim {sorted(result.tids)}",
        )
        return
    for tid in sorted(result.tids):
        try:
            original = instance.lookup(tid)
        except (KeyError, ValueError, ReproError) as exc:
            report._fail(check, f"tid {tid!r} is not part of the graded instance ({exc})")
            return
        if result.counterexample.lookup(tid) != original:
            report._fail(
                check,
                f"tuple {tid!r} was altered: witness has "
                f"{result.counterexample.lookup(tid)!r}, instance has {original!r}",
            )
            return
    report._ok(check)


def _check_size_accounting(result: CounterexampleResult, report: VerificationReport) -> None:
    check = "size"
    expected = witness_cardinality(result.tids)
    materialised = result.counterexample.total_size()
    if result.size != expected or materialised != expected:
        report._fail(
            check,
            f"size={result.size}, distinct tids={expected}, "
            f"materialised tuples={materialised} — all three must agree",
        )
    else:
        report._ok(check)


def _check_distinguishes(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    result: CounterexampleResult,
    binding: Mapping[str, Any],
    caller_params: Mapping[str, Any],
    report: VerificationReport,
) -> tuple[RAExpression, RAExpression] | None:
    """Re-evaluate both queries on the witness; returns the query forms that
    reproduced the recorded rows (original, or re-parameterized for SCP)."""
    check = "distinguishes"
    for label, (form1, form2) in _query_forms(q1, q2, instance, result, caller_params):
        try:
            rows1 = evaluate(form1, result.counterexample, binding)
            rows2 = evaluate(form2, result.counterexample, binding)
        except ReproError:
            continue
        if rows1.same_rows(rows2):
            continue
        if not rows1.same_rows(result.q1_rows) or not rows2.same_rows(result.q2_rows):
            continue
        if not result.verified:
            report._fail(
                check,
                "the witness distinguishes the queries but the result was not "
                "marked verified",
            )
            return (form1, form2)
        report._ok(check)
        return (form1, form2)
    report._fail(
        check,
        "no query form (original or re-parameterized) both distinguishes the "
        f"queries on the witness under {dict(binding)!r} and reproduces the "
        "recorded q1_rows/q2_rows",
    )
    return None


def _query_forms(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    result: CounterexampleResult,
    caller_params: Mapping[str, Any],
) -> list[tuple[str, tuple[RAExpression, RAExpression]]]:
    """The query pairs a result may have been finalised against.

    The SCP algorithms (Agg-Param, Agg-Opt fallback) replace HAVING constants
    by parameters and record the distinguishing *parameter setting*; they are
    re-derived with the same shared naming and the same reserved-name set the
    algorithms use (both queries' own parameters plus the caller's binding —
    *not* the generated names), so the exact final queries are reproduced.
    """
    forms: list[tuple[str, tuple[RAExpression, RAExpression]]] = [
        ("original", (q1, q2))
    ]
    if result.parameter_values:
        try:
            shared: dict[Any, str] = {}
            reserved = (
                expression_parameters(q1)
                | expression_parameters(q2)
                | set(caller_params)
            )
            p1 = parameterize_query(
                q1, instance.schema, shared_names=shared, reserved_names=reserved
            )
            p2 = parameterize_query(
                q2, instance.schema, shared_names=shared, reserved_names=reserved
            )
        except ReproError:  # pragma: no cover - parameterization is total
            return forms
        if p1.original_values or p2.original_values:
            forms.append(("parameterized", (p1.query, p2.query)))
    return forms


def _check_fk_closure(
    instance: DatabaseInstance, result: CounterexampleResult, report: VerificationReport
) -> None:
    """Every kept child keeps at least one parent, per foreign key.

    Mirrors the solver encoding of :mod:`repro.core.fk` exactly: a child with
    candidate parents must keep one, and a child whose reference is dangling
    in the *full* instance (dirty fuzz data) is inadmissible outright — the
    encoding turns it into ``¬child``.  Chains are covered because every kept
    tuple is checked, parents included; all-NULL references impose nothing.
    """
    check = "fk_closed"
    kept = set(result.tids)
    foreign_keys = [
        c for c in instance.schema.constraints if isinstance(c, ForeignKeyConstraint)
    ]
    for fk in foreign_keys:
        implications = fk.implications(instance)
        for child_tid in sorted(kept):
            parents = implications.get(child_tid)
            if parents is None:
                continue  # not a child of this FK, or all-NULL reference
            if not parents:
                report._fail(
                    check,
                    f"{child_tid} is kept but its {fk} reference is dangling "
                    f"even in the full instance",
                )
                return
            if not any(parent in kept for parent in parents):
                report._fail(
                    check,
                    f"{child_tid} is kept but none of its {fk} parents "
                    f"{sorted(parents)} are",
                )
                return
    report._ok(check)


# ---------------------------------------------------------------------------
# Minimality oracles
# ---------------------------------------------------------------------------


def _orient_target(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    result: CounterexampleResult,
    binding: Mapping[str, Any],
    session: EngineSession | None,
) -> tuple[Values, RAExpression, RAExpression] | None:
    """``(t, winning, losing)`` with ``t ∈ winning(D) \\ losing(D)``, or None."""
    if result.distinguishing_row is None:
        return None
    target = tuple(result.distinguishing_row)
    try:
        rows1 = evaluate_cached(q1, instance, binding, session).rows
        rows2 = evaluate_cached(q2, instance, binding, session).rows
    except ReproError:
        return None
    if target in rows1 and target not in rows2:
        return target, q1, q2
    if target in rows2 and target not in rows1:
        return target, q2, q1
    return None


def _fk_implication_maps(instance: DatabaseInstance) -> list[dict[str, list[str]]]:
    """One child→parents map per FK constraint, computed once per search."""
    return [
        fk.implications(instance)
        for fk in instance.schema.constraints
        if isinstance(fk, ForeignKeyConstraint)
    ]


def _fk_respecting(
    implication_maps: list[dict[str, list[str]]], kept: frozenset[str]
) -> bool:
    for implications in implication_maps:
        for child_tid in kept:
            parents = implications.get(child_tid)
            if parents is not None and not any(parent in kept for parent in parents):
                return False  # unsupported or dangling child — inadmissible
    return True


def _minimality_by_bruteforce(
    winning: RAExpression,
    losing: RAExpression,
    target: Values,
    instance: DatabaseInstance,
    result: CounterexampleResult,
    binding: Mapping[str, Any],
    report: VerificationReport,
    budget: int,
) -> bool:
    """Exhaustively rule out any smaller FK-respecting witness of ``target``.

    Only runs when the complete search (all subsets strictly smaller than the
    claimed optimum) fits in ``budget`` evaluations; returns whether it ran.
    """
    all_tids = sorted(instance.all_tids())
    smaller = result.size - 1
    if smaller < 0:
        return False
    total = sum(comb(len(all_tids), size) for size in range(0, smaller + 1))
    if total > budget:
        return False
    combined = Difference(winning, losing)
    implication_maps = _fk_implication_maps(instance)
    for size in range(0, smaller + 1):
        for subset in itertools.combinations(all_tids, size):
            kept = frozenset(subset)
            if not _fk_respecting(implication_maps, kept):
                continue
            sub = instance.subinstance(kept)
            try:
                produced = evaluate(combined, sub, binding).rows
            except ReproError:
                continue
            if target in produced:
                report._fail(
                    "minimality",
                    f"claimed optimal at {result.size} tuples, but brute force "
                    f"found the {len(kept)}-tuple witness {sorted(kept)}",
                )
                return True
    return True


def _minimality_by_solver_agreement(
    winning: RAExpression,
    losing: RAExpression,
    target: Values,
    instance: DatabaseInstance,
    result: CounterexampleResult,
    binding: Mapping[str, Any],
    report: VerificationReport,
    session: EngineSession | None,
    enumeration_budget: int,
    solver_time_budget: float | None,
) -> bool:
    """Naive-M / Opt agreement: re-derive the constraint, re-solve both ways.

    The provenance of the witness target is recomputed independently (through
    the same engine path the algorithms use), handed to the min-ones solver
    in *enumeration* mode (Naive-M) and in fresh *minimisation* mode (Opt);
    either strategy finding a model smaller than the claimed optimum — or the
    fresh minimisation proving a different optimum — is a failure.  Returns
    whether the oracle ran.
    """
    diff = Difference(winning, losing)
    selected = push_selections_down(
        add_tuple_selection(diff, instance.schema, target), instance.schema
    )
    try:
        if session is not None and session.instance is instance:
            schema, rows = session.annotated_rows(selected, binding)
            expression = rows.get(tuple(target))
        else:
            expression = annotate(selected, instance, binding).expression_for(target)
    except ReproError:
        return False
    if expression is None or (not expression.variables() and not expression.evaluate({})):
        report._fail(
            "minimality",
            "no provenance derivation found for the distinguishing row while "
            "re-deriving the solver constraint",
        )
        return True
    problem = MinOnesProblem()
    problem.add_constraint(expression)
    for clause in foreign_key_clauses(instance, expression.variables()):
        problem.add_foreign_key(clause.child, clause.parents)
    try:
        enumeration = MinOnesSolver(problem, default_phase=True).enumerate_models(
            enumeration_budget, time_budget=solver_time_budget
        )
        opt = MinOnesSolver(problem).minimize(time_budget=solver_time_budget)
    except SolverError:
        return False
    if enumeration.best is not None and len(enumeration.best) < result.size:
        report._fail(
            "minimality",
            f"claimed optimal at {result.size} tuples, but Naive-M enumeration "
            f"found the {len(enumeration.best)}-tuple model {sorted(enumeration.best)}",
        )
        return True
    if opt.optimal and opt.cost != result.size:
        report._fail(
            "minimality",
            f"claimed optimal at {result.size} tuples, but an independent Opt "
            f"run proved the minimum is {opt.cost}",
        )
        return True
    return True


def verify_many(
    pairs: Iterable[tuple[RAExpression, RAExpression, CounterexampleResult]],
    instance: DatabaseInstance,
    **options: Any,
) -> list[VerificationReport]:
    """Verify a batch of results against one instance (testing convenience)."""
    session = options.pop("session", None) or EngineSession(instance)
    return [
        verify_counterexample(q1, q2, instance, result, session=session, **options)
        for q1, q2, result in pairs
    ]
