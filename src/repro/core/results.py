"""Result objects returned by the counterexample algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.catalog.instance import DatabaseInstance, ResultSet, Values


def witness_cardinality(tids: Iterable[str]) -> int:
    """The paper's counterexample-quality metric, defined once for everyone.

    Counts **distinct tuples across relations**: each identifier contributes
    once, no matter how often an iterable names it (identifiers are unique
    across relations by construction — ``relation:suffix`` — so deduplicating
    the names deduplicates the tuples).  Both result classes below,
    ``RATestReport`` and the serialization layer derive their cardinality
    from this function, so a witness can never be sized differently in two
    places.
    """
    return len(frozenset(tids))


@dataclass
class CounterexampleResult:
    """A (hopefully smallest) counterexample for a pair of queries.

    Attributes
    ----------
    tids:
        Identifiers of the tuples kept from the original instance.
    counterexample:
        The subinstance induced by ``tids``.
    distinguishing_row:
        The output row that differs between the two queries on the
        counterexample (the witness target ``t`` of the SWP), when known.
    q1_rows / q2_rows:
        Results of the two queries evaluated on the counterexample, for
        display in reports.
    optimal:
        True when the solver proved the counterexample minimum-cardinality
        (for the witness target it examined).
    algorithm:
        Name of the algorithm that produced the result
        (``basic``, ``optsigma``, ``polytime-dnf``, ``spjud-star``,
        ``agg-basic``, ``agg-param``, ``agg-opt``, ...).
    timings:
        Wall-clock breakdown in seconds, keyed by phase
        (``raw_eval``, ``provenance``, ``solver``, ``total``).
    parameter_values:
        For parameterized counterexamples (SPCP), the parameter setting under
        which the two queries differ on the counterexample.
    verified:
        True when ``Q1(D') != Q2(D')`` was re-checked by evaluation.
    """

    tids: frozenset[str]
    counterexample: DatabaseInstance
    distinguishing_row: Values | None
    q1_rows: ResultSet
    q2_rows: ResultSet
    optimal: bool
    algorithm: str
    timings: dict[str, float] = field(default_factory=dict)
    parameter_values: Mapping[str, Any] = field(default_factory=dict)
    solver_calls: int = 0
    verified: bool = False

    @property
    def size(self) -> int:
        """Number of distinct tuples in the counterexample (the paper's metric).

        Shares one definition with :class:`WitnessResult` via
        :func:`witness_cardinality`, so a per-target witness compared during
        the search and the final reported counterexample are always counted
        the same way.
        """
        return witness_cardinality(self.tids)

    def total_time(self) -> float:
        return self.timings.get("total", sum(self.timings.values()))

    def to_dict(self, *, include_timings: bool = True) -> dict[str, Any]:
        """JSON-compatible payload (see :mod:`repro.api.serialization`)."""
        from repro.api.serialization import counterexample_result_to_dict

        return counterexample_result_to_dict(self, include_timings=include_timings)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "CounterexampleResult":
        from repro.api.serialization import counterexample_result_from_dict

        return counterexample_result_from_dict(payload)


@dataclass
class WitnessResult:
    """Result of the smallest witness problem for one output tuple."""

    tids: frozenset[str]
    row: Values
    optimal: bool
    solver_calls: int = 0

    @property
    def size(self) -> int:
        return witness_cardinality(self.tids)
