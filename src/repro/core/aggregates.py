"""Counterexample algorithms for aggregate queries (§5).

Three algorithms are provided, mirroring the paper's evaluation (Figures 6
and 7):

* :func:`smallest_counterexample_agg_basic` — **Agg-Basic**: aggregate-aware
  provenance (Amsterdamer et al.) turned into a symbolic constraint — the
  distinguishing group either exists in only one query's result or exists in
  both with different aggregate values — solved by the branch-and-bound
  aggregate solver.  Scales poorly when groups are large, exactly as the
  paper observes for TPC-H Q4/Q21.
* :func:`smallest_counterexample_agg_basic` with ``parameterize=True`` —
  **Agg-Param**: constants compared against aggregates are replaced by free
  integer parameters (the SPCP of Definition 3), typically shrinking the
  counterexample (Figure 7).
* :func:`smallest_counterexample_agg_opt` — **Agg-Opt** (Algorithm 3): the
  heuristic that compares the *pre-aggregation* queries ``Q1'`` and ``Q2'``
  with the SPJUD machinery, then re-validates (and, if needed, re-parameterizes
  or retries) on the original aggregate queries.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Mapping

from repro.catalog.instance import DatabaseInstance, Values
from repro.core.common import Stopwatch, finalize_result
from repro.core.fk import foreign_key_clauses
from repro.core.results import CounterexampleResult
from repro.errors import (
    CounterexampleError,
    NotApplicableError,
    QueryEvaluationError,
    UnsatisfiableError,
)
from repro.provenance.aggregate import (
    AggConstraint,
    AggNot,
    AggregateAnnotation,
    ValuesDiffer,
    agg_and,
    agg_or,
    annotate_aggregate_query,
    decompose_aggregate_query,
)
from repro.ra.analysis import profile
from repro.ra.ast import Difference, GroupBy, Projection, RAExpression
from repro.ra.evaluator import evaluate
from repro.core.common import annotate_cached, evaluate_cached
from repro.engine.session import EngineSession
from repro.ra.rewrite import (
    add_tuple_selection,
    expression_parameters,
    parameterize_query,
    push_selections_down,
)
from repro.solver.minones import MinOnesProblem, MinOnesSolver
from repro.solver.theory import AggregateProblem, AggregateSolver, AggregateSolverConfig

ParamValues = Mapping[str, Any]


def is_aggregate_pair(q1: RAExpression, q2: RAExpression) -> bool:
    """True when at least one of the two queries uses aggregation."""
    return profile(q1).uses_aggregate or profile(q2).uses_aggregate


def _pair_parameter_names(
    q1: RAExpression, q2: RAExpression, params: Mapping[str, Any]
) -> set[str]:
    """Parameter names already taken by either query or the caller's binding.

    The two queries of a grading pair share one binding at evaluation time, so
    a generated parameter name colliding with *either* side's existing
    ``@param`` would silently rebind it (e.g. a string-valued ``@p1`` to a
    freed integer constant).
    """
    return expression_parameters(q1) | expression_parameters(q2) | set(params)


# ---------------------------------------------------------------------------
# Agg-Basic / Agg-Param
# ---------------------------------------------------------------------------


def smallest_counterexample_agg_basic(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    params: ParamValues | None = None,
    parameterize: bool = False,
    solver_config: AggregateSolverConfig | None = None,
    all_groups: bool = False,
    session: EngineSession | None = None,
) -> CounterexampleResult:
    """Aggregate-provenance counterexamples (Agg-Basic; Agg-Param when parameterized)."""
    stopwatch = Stopwatch()
    original_params: dict[str, Any] = dict(params or {})
    query1, query2 = q1, q2
    if parameterize:
        shared: dict[Any, str] = {}
        reserved = _pair_parameter_names(q1, q2, original_params)
        parameterized1 = parameterize_query(
            q1, instance.schema, shared_names=shared, reserved_names=reserved
        )
        parameterized2 = parameterize_query(
            q2, instance.schema, shared_names=shared, reserved_names=reserved
        )
        query1, query2 = parameterized1.query, parameterized2.query
        original_params.update(parameterized1.original_values)
        original_params.update(parameterized2.original_values)

    with stopwatch.measure("raw_eval"):
        result1 = evaluate_cached(query1, instance, original_params, session)
        result2 = evaluate_cached(query2, instance, original_params, session)
        if result1.same_rows(result2):
            raise CounterexampleError(
                "the two queries return identical results on this instance"
            )

    with stopwatch.measure("provenance"):
        annotation1 = annotate_aggregate_query(query1, instance, original_params, session)
        annotation2 = annotate_aggregate_query(query2, instance, original_params, session)
        differing = _differing_keys(annotation1, result1, result2)
        candidates = [
            item for item in _group_constraints(annotation1, annotation2) if item[0] in differing
        ]
        if not candidates:
            # Fall back to every candidate group (the differing key may only be
            # reachable under a different parameter setting).
            candidates = _group_constraints(annotation1, annotation2)
    if not candidates:
        raise CounterexampleError("no candidate group distinguishes the two queries")

    # Cheapest candidate first (fewest tuple variables involved).
    candidates.sort(key=lambda item: (len(item[1].variables()), item[0]))

    # The per-group constraint is an abstraction of "this group distinguishes
    # the two queries"; when the two queries group differently (a student
    # dropped a grouping attribute) a solved group need not distinguish the
    # *final* results, so every solver outcome is re-validated by evaluation
    # and non-distinguishing groups are skipped — shipping an unverified
    # witness is exactly the failure mode the fuzz verifier exists to catch.
    best: tuple[Values, Any, dict[str, Any]] | None = None
    timed_out = False
    with stopwatch.measure("solver"):
        for key, constraint in candidates:
            if best is not None and not all_groups:
                break
            problem = AggregateProblem(constraint=constraint)
            problem.seed_parameters(original_params)
            for clause in foreign_key_clauses(instance, problem.cost_variables):
                problem.add_foreign_key(clause.child, clause.parents)
            try:
                outcome = AggregateSolver(problem, solver_config).solve()
            except UnsatisfiableError:
                continue
            timed_out = timed_out or outcome.timed_out
            if outcome.timed_out and not outcome.true_variables:
                continue
            candidate_params = dict(original_params)
            candidate_params.update(outcome.parameter_values)
            if not _validate_on_counterexample(
                query1, query2, instance, outcome.true_variables, candidate_params
            ):
                continue
            if best is None or outcome.cost < len(best[1].true_variables):
                best = (key, outcome, candidate_params)
    if best is None:
        raise CounterexampleError(
            "the aggregate solver found no group whose witness distinguishes "
            "the two queries within its budget"
        )
    key, outcome, final_params = best
    algorithm = "agg-param" if parameterize else "agg-basic"
    return finalize_result(
        query1,
        query2,
        instance,
        outcome.true_variables,
        distinguishing_row=key,
        optimal=outcome.optimal,
        algorithm=algorithm,
        timings=stopwatch.finish(),
        params=final_params,
        solver_calls=outcome.nodes_explored,
    )


def _differing_keys(annotation1, result1, result2) -> set[Values]:
    """Group keys on which the two queries already differ on the full instance."""
    key_indices = [annotation1.schema.index_of(name) for name in annotation1.key_columns]

    def rows_by_key(result) -> dict[Values, set[Values]]:
        grouped: dict[Values, set[Values]] = {}
        for row in result.rows:
            grouped.setdefault(tuple(row[i] for i in key_indices), set()).add(row)
        return grouped

    grouped1, grouped2 = rows_by_key(result1), rows_by_key(result2)
    differing: set[Values] = set()
    for key in set(grouped1) | set(grouped2):
        if grouped1.get(key) != grouped2.get(key):
            differing.add(key)
    return differing


def _group_constraints(
    annotation1: AggregateAnnotation, annotation2: AggregateAnnotation
) -> list[tuple[Values, AggConstraint]]:
    """Per-group constraints expressing "this group distinguishes Q1 and Q2"."""
    constraints: list[tuple[Values, AggConstraint]] = []
    keys = set(annotation1.groups) | set(annotation2.groups)
    shared_value_columns = [
        column for column in annotation1.value_columns if column in annotation2.value_columns
    ]
    for key in sorted(keys, key=lambda k: tuple(str(v) for v in k)):
        group1 = annotation1.groups.get(key)
        group2 = annotation2.groups.get(key)
        if group1 is not None and group2 is None:
            constraints.append((key, group1.condition))
        elif group2 is not None and group1 is None:
            constraints.append((key, group2.condition))
        elif group1 is not None and group2 is not None:
            disjuncts: list[AggConstraint] = [
                agg_and([group1.condition, AggNot(group2.condition)]),
                agg_and([group2.condition, AggNot(group1.condition)]),
            ]
            value_differs = [
                ValuesDiffer(group1.outputs[column], group2.outputs[column])
                for column in shared_value_columns
            ]
            if value_differs:
                disjuncts.append(
                    agg_and([group1.condition, group2.condition, agg_or(value_differs)])
                )
            constraints.append((key, agg_or(disjuncts)))
    return constraints


# ---------------------------------------------------------------------------
# Agg-Opt (Algorithm 3)
# ---------------------------------------------------------------------------


def smallest_counterexample_agg_opt(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    params: ParamValues | None = None,
    max_retries: int = 8,
    session: EngineSession | None = None,
) -> CounterexampleResult:
    """Algorithm 3: compare the pre-aggregation queries, then re-validate.

    Falls back to Agg-Basic when the pre-aggregation queries agree on the
    instance (e.g. the only error is in the HAVING clause) — the heuristic
    has nothing to work with in that case.
    """
    stopwatch = Stopwatch()
    original_params: dict[str, Any] = dict(params or {})
    form1 = decompose_aggregate_query(q1, instance.schema)
    form2 = decompose_aggregate_query(q2, instance.schema)
    core1, core2 = form1.core, form2.core

    # Algorithm 3 assumes the two pre-aggregation queries are comparable.  If
    # their schemas diverge (e.g. one of them projects an extra column), they
    # are compared on their shared columns; with no shared columns at all the
    # heuristic does not apply and Agg-Basic takes over.
    schema1 = core1.output_schema(instance.schema)
    schema2 = core2.output_schema(instance.schema)
    if schema1.attribute_names != schema2.attribute_names:
        common = [name for name in schema1.attribute_names if schema2.has_attribute(name)]
        if not common:
            return smallest_counterexample_agg_basic(
                q1, q2, instance, params=params, parameterize=True, session=session
            )
        core1 = Projection(core1, tuple(common))
        core2 = Projection(core2, tuple(common))

    with stopwatch.measure("raw_eval"):
        core_rows1 = evaluate_cached(core1, instance, original_params, session)
        core_rows2 = evaluate_cached(core2, instance, original_params, session)
    if core_rows1.rows == core_rows2.rows:
        return smallest_counterexample_agg_basic(
            q1, q2, instance, params=params, parameterize=True, session=session
        )
    only_in_1 = sorted(core_rows1.rows - core_rows2.rows, key=lambda r: tuple(str(v) for v in r))
    only_in_2 = sorted(core_rows2.rows - core_rows1.rows, key=lambda r: tuple(str(v) for v in r))
    if only_in_1:
        target, winning, losing = only_in_1[0], core1, core2
    else:
        target, winning, losing = only_in_2[0], core2, core1

    # Provenance of the distinguishing core tuple with selection pushdown.
    diff = Difference(winning, losing)
    selected = push_selections_down(
        add_tuple_selection(diff, instance.schema, target), instance.schema
    )
    with stopwatch.measure("provenance"):
        annotated = annotate_cached(selected, instance, original_params, session)
        expression = annotated.expression_for(target)

    problem = MinOnesProblem()
    problem.add_constraint(expression)
    for clause in foreign_key_clauses(instance, expression.variables()):
        problem.add_foreign_key(clause.child, clause.parents)
    solver = MinOnesSolver(
        problem, clause_cache=session.clause_cache if session is not None else None
    )

    # Candidate parameter settings are tried against the *parameterized*
    # original queries whenever re-validation with the original constants fails.
    shared: dict[Any, str] = {}
    reserved = _pair_parameter_names(q1, q2, original_params)
    parameterized1 = parameterize_query(
        q1, instance.schema, shared_names=shared, reserved_names=reserved
    )
    parameterized2 = parameterize_query(
        q2, instance.schema, shared_names=shared, reserved_names=reserved
    )
    has_parameters = bool(parameterized1.original_values or parameterized2.original_values)

    best_tids: frozenset[str] | None = None
    best_params: dict[str, Any] = dict(original_params)
    solver_calls = 0
    optimal = True
    with stopwatch.measure("solver"):
        outcome = solver.minimize()
        solver_calls += outcome.solver_calls
        candidates: Iterable[frozenset[str]] = [outcome.true_variables]
        optimal = outcome.optimal
        for attempt, tids in enumerate(_with_retries(solver, candidates, max_retries)):
            solver_calls += 1 if attempt else 0
            validated = _validate_on_counterexample(
                q1, q2, instance, tids, original_params
            )
            if validated:
                best_tids, best_params = tids, dict(original_params)
                break
            if has_parameters:
                param_setting = _find_parameter_setting(
                    parameterized1.query,
                    parameterized2.query,
                    instance,
                    tids,
                    {**parameterized1.original_values, **parameterized2.original_values},
                )
                if param_setting is not None:
                    best_tids, best_params = tids, param_setting
                    break
            optimal = False
    if best_tids is None:
        # Heuristic failed to validate within the retry budget: fall back.
        return smallest_counterexample_agg_basic(
            q1, q2, instance, params=params, parameterize=has_parameters
        )
    final_q1 = parameterized1.query if best_params.keys() - original_params.keys() else q1
    final_q2 = parameterized2.query if best_params.keys() - original_params.keys() else q2
    return finalize_result(
        final_q1,
        final_q2,
        instance,
        best_tids,
        distinguishing_row=target,
        optimal=optimal,
        algorithm="agg-opt",
        timings=stopwatch.finish(),
        params=best_params,
        solver_calls=solver_calls,
    )


def _with_retries(
    solver: MinOnesSolver, first: Iterable[frozenset[str]], max_retries: int
) -> Iterable[frozenset[str]]:
    """Yield the optimal model, then alternative models from enumeration.

    Running out of models is the one *expected* way enumeration ends early
    (``UnsatisfiableError``: the blocked clause set admits no further model),
    so only that is treated as benign exhaustion.  Anything else — a solver
    budget or internal limit (→ ``error_kind="solver_error"``), an evaluation
    failure while consuming the candidates (→ ``"evaluation_error"``) —
    propagates so the PR 2 taxonomy classifies it, instead of being swallowed
    here and silently degrading Agg-Opt's retry loop to a single candidate.
    """
    yield from first
    if max_retries <= 0:
        return
    try:
        enumeration = solver.enumerate_models(max_retries)
    except UnsatisfiableError:
        return
    for model in enumeration.models:
        yield model


def _validate_on_counterexample(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    tids: frozenset[str],
    params: ParamValues,
) -> bool:
    subinstance = instance.subinstance(tids)
    try:
        return not evaluate(q1, subinstance, params).same_rows(
            evaluate(q2, subinstance, params)
        )
    except (TypeError, QueryEvaluationError):
        # A synthesised parameter value of the wrong type (an integer probe
        # for a string parameter) makes a comparison ill-typed, and a
        # sub-instance can hit evaluation errors the full instance avoids
        # (division by an aggregate that is zero on this group); either way
        # the candidate simply does not validate — the search moves on.
        return False


def _find_parameter_setting(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    tids: frozenset[str],
    original_values: Mapping[str, Any],
) -> dict[str, Any] | None:
    """Choose parameter values making the parameterized queries differ on ``tids``.

    Candidate values follow §5.3.2: 0, 1, the original constant, and the
    aggregate values observed on the counterexample (±1).
    """
    subinstance = instance.subinstance(tids)
    candidates: dict[str, set[Any]] = {}
    for name, value in original_values.items():
        # Integer probes only make sense for numeric parameters; for any
        # other type the original constant is the sole trustworthy candidate.
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            candidates[name] = {0, 1, value}
        else:
            candidates[name] = {value}
    observed = _observed_aggregate_values(q1, subinstance) | _observed_aggregate_values(
        q2, subinstance
    )
    for name in candidates:
        if not isinstance(original_values[name], (int, float)):
            continue
        for value in observed:
            candidates[name].update({value, value - 1, value + 1})

    def closeness(name: str):
        origin = original_values[name]

        def key(v: Any):
            try:
                return (0, abs(v - origin), str(v))
            except TypeError:
                return (0 if v == origin else 1, 0, str(v))

        return key

    names = sorted(candidates)
    pools = [sorted(candidates[name], key=closeness(name)) for name in names]
    for combination in itertools.islice(itertools.product(*pools), 200):
        setting = dict(zip(names, combination))
        if _validate_on_counterexample(q1, q2, instance, tids, setting):
            return setting
    return None


def _observed_aggregate_values(query: RAExpression, instance: DatabaseInstance) -> set[Any]:
    """Aggregate alias values produced by the query's GroupBy nodes on ``instance``."""
    values: set[Any] = set()
    for node in query.walk():
        if not isinstance(node, GroupBy):
            continue
        result = evaluate(node, instance)
        schema = result.schema
        for spec in node.aggregates:
            index = schema.index_of(spec.alias)
            for row in result.rows:
                value = row[index]
                if isinstance(value, (int, float)):
                    values.add(int(value))
    return values
