"""The Basic algorithm (Algorithm 1): counterexamples over all differing tuples.

``smallest_counterexample_basic`` computes the how-provenance of *every*
output tuple on which the two queries disagree, solves a min-ones instance
for each, and keeps the globally smallest witness.  The per-tuple solving
step can either be the optimal minimisation (this is the configuration used
in Table 4, "Basic with the Z3 optimizer") or the naive model-enumeration
loop of Algorithm 1 (the Naive-M baseline of Figure 5).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.catalog.instance import DatabaseInstance, Values
from repro.core.common import (
    Stopwatch,
    annotate_cached,
    finalize_result,
    symmetric_difference_rows,
)
from repro.core.fk import foreign_key_clauses
from repro.core.results import CounterexampleResult, WitnessResult
from repro.engine.session import EngineSession
from repro.errors import CounterexampleError
from repro.provenance.boolexpr import BoolExpr
from repro.ra.ast import Difference, RAExpression
from repro.solver.minones import MinOnesProblem, MinOnesSolver

ParamValues = Mapping[str, Any]


def smallest_witness_for_expression(
    expression: BoolExpr,
    instance: DatabaseInstance,
    row: Values,
    *,
    mode: str = "optimal",
    max_trials: int = 128,
    strategy: str = "descend",
    clause_cache=None,
) -> WitnessResult:
    """Solve the smallest-witness problem for one provenance expression."""
    problem = MinOnesProblem()
    problem.add_constraint(expression)
    for clause in foreign_key_clauses(instance, expression.variables()):
        problem.add_foreign_key(clause.child, clause.parents)
    if mode == "enumerate":
        # The Naive-M baseline stays cache-free: phase hints from a cached
        # first model would change its model sequence (Figure 5 determinism).
        solver = MinOnesSolver(problem, default_phase=True)
        enumeration = solver.enumerate_models(max_trials)
        assert enumeration.best is not None
        return WitnessResult(
            tids=enumeration.best,
            row=row,
            optimal=enumeration.exhausted,
            solver_calls=enumeration.solver_calls,
        )
    solver = MinOnesSolver(problem, clause_cache=clause_cache)
    outcome = solver.minimize(strategy=strategy)  # type: ignore[arg-type]
    return WitnessResult(
        tids=outcome.true_variables,
        row=row,
        optimal=outcome.optimal,
        solver_calls=outcome.solver_calls,
    )


def smallest_counterexample_basic(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    params: ParamValues | None = None,
    mode: str = "optimal",
    max_trials: int = 128,
    strategy: str = "descend",
    max_rows: int | None = None,
    session: EngineSession | None = None,
) -> CounterexampleResult:
    """Find the smallest counterexample by examining every differing output tuple.

    ``max_rows`` caps how many differing tuples are examined (useful for large
    result differences); the paper's Basic algorithm has no such cap, so the
    default is unlimited.  ``session`` optionally shares an engine session's
    plan/result caches with the caller (e.g. the RATest facade).
    """
    stopwatch = Stopwatch()
    with stopwatch.measure("raw_eval"):
        only_in_q1, only_in_q2 = symmetric_difference_rows(q1, q2, instance, params, session)
    if not only_in_q1 and not only_in_q2:
        raise CounterexampleError("the two queries return identical results on this instance")

    candidates: list[tuple[Values, RAExpression, RAExpression]] = []
    candidates.extend((row, q1, q2) for row in only_in_q1)
    candidates.extend((row, q2, q1) for row in only_in_q2)
    if max_rows is not None:
        candidates = candidates[:max_rows]

    annotations: dict[int, Any] = {}
    best: WitnessResult | None = None
    solver_calls = 0
    for row, winning, losing in candidates:
        key = id(winning)
        if key not in annotations:
            with stopwatch.measure("provenance"):
                annotations[key] = annotate_cached(
                    Difference(winning, losing), instance, params, session
                )
        annotated = annotations[key]
        expression = annotated.expression_for(row)
        with stopwatch.measure("solver"):
            witness = smallest_witness_for_expression(
                expression,
                instance,
                row,
                mode=mode,
                max_trials=max_trials,
                strategy=strategy,
                clause_cache=session.clause_cache if session is not None else None,
            )
        solver_calls += witness.solver_calls
        if best is None or witness.size < best.size:
            best = witness
    assert best is not None
    return finalize_result(
        q1,
        q2,
        instance,
        best.tids,
        distinguishing_row=best.row,
        optimal=best.optimal,
        algorithm="basic" if mode == "optimal" else f"basic-naive-{max_trials}",
        timings=stopwatch.finish(),
        params=params,
        solver_calls=solver_calls,
    )
