"""Shared helpers for the counterexample algorithms."""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping

from repro.catalog.instance import DatabaseInstance, Values
from repro.core.results import CounterexampleResult
from repro.engine.session import EngineSession
from repro.errors import CounterexampleError
from repro.ra.ast import Difference, RAExpression
from repro.ra.evaluator import evaluate

ParamValues = Mapping[str, Any]


def evaluate_cached(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
    session: EngineSession | None = None,
):
    """Evaluate through ``session`` when it is bound to this very instance.

    The counterexample algorithms re-evaluate the same queries several times
    (agreement check, symmetric difference, witness verification); threading
    an :class:`EngineSession` through them turns the repeats into cache hits.
    A session bound to a *different* instance (e.g. when verifying on a
    counterexample subinstance) is ignored.
    """
    if session is not None and session.instance is instance:
        return session.evaluate(expression, params)
    return evaluate(expression, instance, params)


def annotate_cached(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
    session: EngineSession | None = None,
):
    """Provenance annotation through ``session`` when bound to ``instance``.

    Sharing the session lets provenance construction reuse the scans and
    subplans already cached by the set-semantics agreement checks.
    """
    from repro.provenance.annotate import AnnotatedRelation, annotate

    if session is not None and session.instance is instance:
        schema, rows = session.annotated_rows(expression, params)
        return AnnotatedRelation(schema, rows)
    return annotate(expression, instance, params)


class Stopwatch:
    """Tiny helper accumulating named wall-clock phases."""

    def __init__(self) -> None:
        self.timings: dict[str, float] = {}
        self._started = time.perf_counter()

    def measure(self, name: str):
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def finish(self) -> dict[str, float]:
        self.timings["total"] = time.perf_counter() - self._started
        return self.timings


class _Phase:
    def __init__(self, stopwatch: Stopwatch, name: str) -> None:
        self._stopwatch = stopwatch
        self._name = name

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stopwatch.add(self._name, time.perf_counter() - self._start)


def symmetric_difference_rows(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
    session: EngineSession | None = None,
) -> tuple[list[Values], list[Values]]:
    """Rows in ``Q1(D) \\ Q2(D)`` and ``Q2(D) \\ Q1(D)`` (each sorted deterministically)."""
    result1 = evaluate_cached(q1, instance, params, session)
    result2 = evaluate_cached(q2, instance, params, session)
    only_in_q1 = sorted(result1.rows - result2.rows, key=_row_key)
    only_in_q2 = sorted(result2.rows - result1.rows, key=_row_key)
    return only_in_q1, only_in_q2


def pick_witness_target(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
    session: EngineSession | None = None,
) -> tuple[Values, RAExpression, RAExpression]:
    """Choose the output tuple ``t`` to witness and orient the difference.

    Returns ``(t, winning, losing)`` such that ``t ∈ winning(D) \\ losing(D)``;
    the witness is then computed w.r.t. ``winning − losing``.  Raises
    :class:`CounterexampleError` when the two queries agree on the instance.
    """
    only_in_q1, only_in_q2 = symmetric_difference_rows(q1, q2, instance, params, session)
    if only_in_q1:
        return only_in_q1[0], q1, q2
    if only_in_q2:
        return only_in_q2[0], q2, q1
    raise CounterexampleError("the two queries return identical results on this instance")


def difference_query(winning: RAExpression, losing: RAExpression) -> Difference:
    return Difference(winning, losing)


def finalize_result(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    tids: Iterable[str],
    *,
    distinguishing_row: Values | None,
    optimal: bool,
    algorithm: str,
    timings: dict[str, float],
    params: ParamValues | None = None,
    solver_calls: int = 0,
) -> CounterexampleResult:
    """Materialise the counterexample, re-evaluate both queries and verify it."""
    tid_set = frozenset(tids)
    counterexample = instance.subinstance(tid_set)
    q1_rows = evaluate(q1, counterexample, params)
    q2_rows = evaluate(q2, counterexample, params)
    return CounterexampleResult(
        tids=tid_set,
        counterexample=counterexample,
        distinguishing_row=distinguishing_row,
        q1_rows=q1_rows,
        q2_rows=q2_rows,
        optimal=optimal,
        algorithm=algorithm,
        timings=timings,
        parameter_values=dict(params or {}),
        solver_calls=solver_calls,
        verified=not q1_rows.same_rows(q2_rows),
    )


def _row_key(row: Values) -> tuple[str, ...]:
    return tuple(str(v) for v in row)
