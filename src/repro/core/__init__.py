"""The paper's algorithms: SWP/SCP solvers for SPJUD and aggregate queries."""

from repro.core.aggregates import (
    is_aggregate_pair,
    smallest_counterexample_agg_basic,
    smallest_counterexample_agg_opt,
)
from repro.core.basic import smallest_counterexample_basic, smallest_witness_for_expression
from repro.core.common import pick_witness_target, symmetric_difference_rows
from repro.core.finder import (
    ALGORITHMS,
    SmallestCounterexampleFinder,
    find_smallest_counterexample,
    find_smallest_witness,
)
from repro.core.fk import foreign_key_clauses
from repro.core.optsigma import smallest_witness_optsigma
from repro.core.polytime import smallest_witness_monotone_dnf, smallest_witness_spjud_star
from repro.core.results import CounterexampleResult, WitnessResult, witness_cardinality
from repro.core.verify import (
    VerificationFailure,
    VerificationReport,
    verify_counterexample,
)

__all__ = [
    "ALGORITHMS",
    "CounterexampleResult",
    "SmallestCounterexampleFinder",
    "VerificationFailure",
    "VerificationReport",
    "WitnessResult",
    "find_smallest_counterexample",
    "find_smallest_witness",
    "foreign_key_clauses",
    "is_aggregate_pair",
    "pick_witness_target",
    "smallest_counterexample_agg_basic",
    "smallest_counterexample_agg_opt",
    "smallest_counterexample_basic",
    "smallest_witness_for_expression",
    "smallest_witness_monotone_dnf",
    "smallest_witness_optsigma",
    "smallest_witness_spjud_star",
    "symmetric_difference_rows",
    "verify_counterexample",
    "witness_cardinality",
]
