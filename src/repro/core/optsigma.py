"""The Optσ algorithm (Algorithm 2): one witness target, selection pushdown,
optimal min-ones solving.

Compared to Basic, Optσ (i) picks a *single* output tuple on which the two
queries disagree, (ii) narrows provenance computation to that tuple by placing
a selection on top of ``Q1 − Q2`` and pushing it down the tree, and (iii) asks
the optimizing solver for a minimum-cardinality model directly instead of
enumerating models.  This is the configuration the paper recommends (6.9×
faster than Basic in Table 4 with the same counterexample sizes).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.catalog.instance import DatabaseInstance, Values
from repro.core.common import (
    Stopwatch,
    annotate_cached,
    finalize_result,
    pick_witness_target,
)
from repro.core.fk import foreign_key_clauses
from repro.core.results import CounterexampleResult
from repro.engine.session import EngineSession
from repro.errors import CounterexampleError
from repro.ra.ast import Difference, RAExpression
from repro.ra.rewrite import add_tuple_selection, push_selections_down
from repro.solver.minones import MinOnesProblem, MinOnesSolver

ParamValues = Mapping[str, Any]


def smallest_witness_optsigma(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    params: ParamValues | None = None,
    target_row: Values | None = None,
    pushdown: bool = True,
    strategy: str = "descend",
    solver_time_budget: float | None = None,
    session: EngineSession | None = None,
) -> CounterexampleResult:
    """Algorithm 2: smallest witness of one differing output tuple.

    ``target_row`` overrides the automatically chosen tuple (which is the
    lexicographically first row of ``Q1(D) \\ Q2(D)``, falling back to
    ``Q2(D) \\ Q1(D)``).  ``pushdown`` controls the selection-pushdown rewrite
    — disabling it is the "prov-all on one tuple" ablation of Figure 4.
    """
    stopwatch = Stopwatch()
    with stopwatch.measure("raw_eval"):
        row, winning, losing = pick_witness_target(q1, q2, instance, params, session)
    if target_row is not None:
        row = tuple(target_row)

    diff = Difference(winning, losing)
    selected: RAExpression = add_tuple_selection(diff, instance.schema, row)
    if pushdown:
        selected = push_selections_down(selected, instance.schema)

    with stopwatch.measure("provenance"):
        annotated = annotate_cached(selected, instance, params, session)
        expression = annotated.expression_for(row)
    if expression.variables() == frozenset() and not expression.evaluate({}):
        raise CounterexampleError(
            f"no provenance derivation found for the chosen output tuple {row!r}"
        )

    problem = MinOnesProblem()
    problem.add_constraint(expression)
    for clause in foreign_key_clauses(instance, expression.variables()):
        problem.add_foreign_key(clause.child, clause.parents)

    with stopwatch.measure("solver"):
        clause_cache = session.clause_cache if session is not None else None
        outcome = MinOnesSolver(problem, clause_cache=clause_cache).minimize(
            strategy=strategy, time_budget=solver_time_budget  # type: ignore[arg-type]
        )

    return finalize_result(
        q1,
        q2,
        instance,
        outcome.true_variables,
        distinguishing_row=row,
        optimal=outcome.optimal,
        algorithm="optsigma" if pushdown else "optsigma-nopushdown",
        timings=stopwatch.finish(),
        params=params,
        solver_calls=outcome.solver_calls,
    )
