"""Algorithm dispatch: pick and run the right counterexample algorithm.

``find_smallest_counterexample(q1, q2, instance)`` inspects the query classes
(Table 1) and routes to:

* the aggregate algorithms when either query aggregates (Agg-Opt first, with
  Agg-Basic as fallback),
* Optσ (Algorithm 2) for general SPJUD queries,
* optionally the poly-time specialisations when explicitly requested.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.catalog.instance import DatabaseInstance
from repro.engine.session import EngineSession
from repro.core.aggregates import (
    is_aggregate_pair,
    smallest_counterexample_agg_basic,
    smallest_counterexample_agg_opt,
)
from repro.core.basic import smallest_counterexample_basic
from repro.core.optsigma import smallest_witness_optsigma
from repro.core.polytime import smallest_witness_monotone_dnf, smallest_witness_spjud_star
from repro.core.results import CounterexampleResult
from repro.errors import NotApplicableError, ReproError
from repro.ra.ast import RAExpression

ParamValues = Mapping[str, Any]

#: Algorithms selectable by name.
ALGORITHMS: dict[str, Callable[..., CounterexampleResult]] = {
    "basic": smallest_counterexample_basic,
    "optsigma": smallest_witness_optsigma,
    "polytime-dnf": smallest_witness_monotone_dnf,
    "spjud-star": smallest_witness_spjud_star,
    "agg-basic": smallest_counterexample_agg_basic,
    "agg-opt": smallest_counterexample_agg_opt,
}


def find_smallest_witness(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    params: ParamValues | None = None,
    session: EngineSession | None = None,
    **options: Any,
) -> CounterexampleResult:
    """Solve the smallest-witness problem (SWP) with Optσ — the recommended path."""
    return smallest_witness_optsigma(q1, q2, instance, params=params, session=session, **options)


def find_smallest_counterexample(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    algorithm: str = "auto",
    params: ParamValues | None = None,
    session: EngineSession | None = None,
    **options: Any,
) -> CounterexampleResult:
    """Find a smallest counterexample, dispatching on the query classes.

    ``algorithm`` may be ``"auto"`` or any key of :data:`ALGORITHMS`; extra
    keyword options are forwarded to the chosen algorithm (e.g.
    ``parameterize=True`` for ``agg-basic``, ``mode="enumerate"`` for
    ``basic``).  ``session`` shares an engine session's plan/result caches
    across the algorithm's evaluations (all algorithms accept it).
    """
    if algorithm != "auto":
        if algorithm not in ALGORITHMS:
            raise ReproError(
                f"unknown algorithm {algorithm!r}; choose one of {sorted(ALGORITHMS)} or 'auto'"
            )
        return ALGORITHMS[algorithm](q1, q2, instance, params=params, session=session, **options)

    if is_aggregate_pair(q1, q2):
        try:
            return smallest_counterexample_agg_opt(
                q1, q2, instance, params=params, session=session, **options
            )
        except NotApplicableError:
            return smallest_counterexample_agg_basic(
                q1, q2, instance, params=params, session=session, **options
            )
    return smallest_witness_optsigma(q1, q2, instance, params=params, session=session, **options)


class SmallestCounterexampleFinder:
    """Object-oriented facade binding an instance once and answering many queries.

    Holds one :class:`EngineSession`, so plan compilation and subquery results
    are shared across every ``find`` call on the same instance.
    """

    def __init__(self, instance: DatabaseInstance) -> None:
        self.instance = instance
        self.session = EngineSession(instance)

    def find(
        self,
        q1: RAExpression,
        q2: RAExpression,
        *,
        algorithm: str = "auto",
        params: ParamValues | None = None,
        **options: Any,
    ) -> CounterexampleResult:
        return find_smallest_counterexample(
            q1,
            q2,
            self.instance,
            algorithm=algorithm,
            params=params,
            session=self.session,
            **options,
        )
