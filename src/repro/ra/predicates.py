"""Scalar and predicate expressions used by selections, joins and HAVING.

Expressions are evaluated against a single value tuple whose layout is given
by a :class:`~repro.catalog.schema.RelationSchema`.  Parameters (the ``@name``
placeholders of parameterized queries, §5.3.1 of the paper) are resolved from
a parameter dictionary at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.catalog.schema import RelationSchema
from repro.errors import QueryEvaluationError, UnknownAttributeError

ParamValues = Mapping[str, Any]

#: Comparison operators supported in predicates, in their textual form.
COMPARISON_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

ARITHMETIC_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Scalar:
    """Base class of scalar expressions (things that evaluate to a value)."""

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> Any:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        return set()

    def referenced_params(self) -> set[str]:
        return set()

    def substitute_params(self, bindings: ParamValues) -> "Scalar":
        """Return a copy with the given parameters replaced by constants."""
        return self


class Predicate:
    """Base class of Boolean predicate expressions."""

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> bool:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        return set()

    def referenced_params(self) -> set[str]:
        return set()

    def substitute_params(self, bindings: ParamValues) -> "Predicate":
        return self

    def conjuncts(self) -> list["Predicate"]:
        """Flatten a top-level conjunction into its conjuncts."""
        return [self]

    # Convenience combinators so callers can write ``p & q``, ``p | q``, ``~p``.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


# ---------------------------------------------------------------------------
# Scalars
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef(Scalar):
    """A reference to an attribute of the input tuple, by name."""

    name: str

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> Any:
        try:
            return row[schema.index_of(self.name)]
        except UnknownAttributeError as exc:
            raise QueryEvaluationError(str(exc)) from exc

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Scalar):
    """A constant value."""

    value: Any

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> Any:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Param(Scalar):
    """A named query parameter (``@name``), bound at evaluation time."""

    name: str

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> Any:
        if self.name not in params:
            raise QueryEvaluationError(f"unbound query parameter @{self.name}")
        return params[self.name]

    def referenced_params(self) -> set[str]:
        return {self.name}

    def substitute_params(self, bindings: ParamValues) -> Scalar:
        if self.name in bindings:
            return Literal(bindings[self.name])
        return self

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class Arithmetic(Scalar):
    """A binary arithmetic expression over scalars."""

    op: str
    left: Scalar
    right: Scalar

    def __post_init__(self) -> None:
        if self.op not in ARITHMETIC_OPS:
            raise QueryEvaluationError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> Any:
        left = self.left.evaluate(schema, row, params)
        right = self.right.evaluate(schema, row, params)
        if left is None or right is None:
            return None
        try:
            return ARITHMETIC_OPS[self.op](left, right)
        except ZeroDivisionError as exc:
            raise QueryEvaluationError("division by zero in scalar expression") from exc

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def referenced_params(self) -> set[str]:
        return self.left.referenced_params() | self.right.referenced_params()

    def substitute_params(self, bindings: ParamValues) -> Scalar:
        return Arithmetic(
            self.op, self.left.substitute_params(bindings), self.right.substitute_params(bindings)
        )

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left op right`` where op is one of =, !=, <, <=, >, >=."""

    op: str
    left: Scalar
    right: Scalar

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryEvaluationError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> bool:
        left = self.left.evaluate(schema, row, params)
        right = self.right.evaluate(schema, row, params)
        if left is None or right is None:
            # SQL-style: comparisons with NULL are not satisfied.
            return False
        return COMPARISON_OPS[self.op](left, right)

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def referenced_params(self) -> set[str]:
        return self.left.referenced_params() | self.right.referenced_params()

    def substitute_params(self, bindings: ParamValues) -> Predicate:
        return Comparison(
            self.op, self.left.substitute_params(bindings), self.right.substitute_params(bindings)
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    operands: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise QueryEvaluationError("AND requires at least one operand")

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> bool:
        return all(p.evaluate(schema, row, params) for p in self.operands)

    def referenced_columns(self) -> set[str]:
        return set().union(*(p.referenced_columns() for p in self.operands))

    def referenced_params(self) -> set[str]:
        return set().union(*(p.referenced_params() for p in self.operands))

    def substitute_params(self, bindings: ParamValues) -> Predicate:
        return And(tuple(p.substitute_params(bindings) for p in self.operands))

    def conjuncts(self) -> list[Predicate]:
        result: list[Predicate] = []
        for operand in self.operands:
            result.extend(operand.conjuncts())
        return result

    def __str__(self) -> str:
        return " AND ".join(f"({p})" for p in self.operands)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    operands: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise QueryEvaluationError("OR requires at least one operand")

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> bool:
        return any(p.evaluate(schema, row, params) for p in self.operands)

    def referenced_columns(self) -> set[str]:
        return set().union(*(p.referenced_columns() for p in self.operands))

    def referenced_params(self) -> set[str]:
        return set().union(*(p.referenced_params() for p in self.operands))

    def substitute_params(self, bindings: ParamValues) -> Predicate:
        return Or(tuple(p.substitute_params(bindings) for p in self.operands))

    def __str__(self) -> str:
        return " OR ".join(f"({p})" for p in self.operands)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> bool:
        return not self.operand.evaluate(schema, row, params)

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def referenced_params(self) -> set[str]:
        return self.operand.referenced_params()

    def substitute_params(self, bindings: ParamValues) -> Predicate:
        return Not(self.operand.substitute_params(bindings))

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (used for cross products)."""

    def evaluate(self, schema: RelationSchema, row: Sequence[Any], params: ParamValues) -> bool:
        return True

    def __str__(self) -> str:
        return "TRUE"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def param(name: str) -> Param:
    """Shorthand for :class:`Param`."""
    return Param(name)


def _as_scalar(value: Any) -> Scalar:
    if isinstance(value, Scalar):
        return value
    if isinstance(value, str):
        return ColumnRef(value)
    return Literal(value)


def eq(left: Any, right: Any) -> Comparison:
    """``left = right`` where bare strings are column names, other values literals."""
    return Comparison("=", _as_scalar(left), _as_scalar(right))


def neq(left: Any, right: Any) -> Comparison:
    return Comparison("!=", _as_scalar(left), _as_scalar(right))


def lt(left: Any, right: Any) -> Comparison:
    return Comparison("<", _as_scalar(left), _as_scalar(right))


def le(left: Any, right: Any) -> Comparison:
    return Comparison("<=", _as_scalar(left), _as_scalar(right))


def gt(left: Any, right: Any) -> Comparison:
    return Comparison(">", _as_scalar(left), _as_scalar(right))


def ge(left: Any, right: Any) -> Comparison:
    return Comparison(">=", _as_scalar(left), _as_scalar(right))


def conj(predicates: Iterable[Predicate]) -> Predicate:
    """Conjunction of an iterable of predicates (TRUE when empty)."""
    preds = tuple(predicates)
    if not preds:
        return TruePredicate()
    if len(preds) == 1:
        return preds[0]
    return And(preds)


def equals_constant(attribute: str, value: Any) -> Comparison:
    """``attribute = value`` with ``value`` taken literally even if a string."""
    return Comparison("=", ColumnRef(attribute), Literal(value))
