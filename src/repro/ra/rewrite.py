"""Query rewrites: selection pushdown and query parameterization.

The Optσ algorithm (Algorithm 2) adds a selection ``σ_{A=t}`` on top of
``Q1 − Q2`` so that only one output tuple's provenance is computed, and relies
on the DBMS optimizer to push that selection down.  This module performs that
pushdown explicitly; it doubles as the AST-level optimization pass of the
execution engine (:func:`repro.engine.optimizer.optimize_expression`):

* selections commute with selections, projections (after renaming through the
  projection's aliases), renames, unions, differences and intersections;
* at a join, each conjunct is pushed to whichever side contains all of its
  columns, and equality conjuncts ``col = const`` are additionally propagated
  across the join's equi-join pairs to the other side;
* at a GroupBy, conjuncts touching only grouping attributes are pushed below.

:func:`parameterize_query` implements §5.3.1: constants compared against
aggregate aliases in HAVING-style selections become named parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ra.ast import (
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.ra.predicates import (
    ColumnRef,
    Comparison,
    Literal,
    Param,
    Predicate,
    conj,
)
from repro.catalog.schema import DatabaseSchema


def add_tuple_selection(
    expression: RAExpression, db: DatabaseSchema, row: tuple
) -> Selection:
    """``σ_{A1=t.A1 ∧ …}(expression)`` selecting exactly the output tuple ``row``."""
    schema = expression.output_schema(db)
    conjuncts = [
        Comparison("=", ColumnRef(attr.name), Literal(value))
        for attr, value in zip(schema.attributes, row)
        if value is not None
    ]
    return Selection(expression, conj(conjuncts))


def push_selections_down(expression: RAExpression, db: DatabaseSchema) -> RAExpression:
    """Push every selection in ``expression`` as far down as possible."""
    return _push(expression, db)


def _push(node: RAExpression, db: DatabaseSchema) -> RAExpression:
    if isinstance(node, Selection):
        child = _push(node.child, db)
        return _push_selection_into(node.predicate, child, db)
    children = [_push(child, db) for child in node.children()]
    if not children:
        return node
    return node.with_children(children)


def _push_selection_into(
    predicate: Predicate, node: RAExpression, db: DatabaseSchema
) -> RAExpression:
    conjuncts = predicate.conjuncts()

    if isinstance(node, Selection):
        # Merge and keep pushing through the inner selection's child.
        merged = conj(conjuncts + node.predicate.conjuncts())
        return _push_selection_into(merged, node.child, db)

    if isinstance(node, (Union, Difference, Intersection)):
        left_schema = node.children()[0].output_schema(db)
        right_schema = node.children()[1].output_schema(db)
        left_pred = predicate
        right_pred = _rename_predicate_columns(
            predicate,
            dict(zip(left_schema.attribute_names, right_schema.attribute_names)),
        )
        left = _push_selection_into(left_pred, node.children()[0], db)
        right = _push_selection_into(right_pred, node.children()[1], db)
        return node.with_children([left, right])

    if isinstance(node, Projection):
        mapping = {out: col for col, out in zip(node.columns, node.output_names())}
        if all(
            name in mapping
            for conjunct in conjuncts
            for name in conjunct.referenced_columns()
        ):
            renamed = _rename_predicate_columns(predicate, mapping)
            pushed = _push_selection_into(renamed, node.child, db)
            return node.with_children([pushed])
        return Selection(node, predicate)

    if isinstance(node, Rename):
        child_schema = node.child.output_schema(db)
        out_schema = node.output_schema(db)
        mapping = dict(zip(out_schema.attribute_names, child_schema.attribute_names))
        renamed = _rename_predicate_columns(predicate, mapping)
        pushed = _push_selection_into(renamed, node.child, db)
        return node.with_children([pushed])

    if isinstance(node, (Join, NaturalJoin)):
        return _push_into_join(conjuncts, node, db)

    if isinstance(node, GroupBy):
        group_attrs = set(node.group_by)
        pushable = [c for c in conjuncts if c.referenced_columns() <= group_attrs]
        remaining = [c for c in conjuncts if c not in pushable]
        result: RAExpression = node
        if pushable:
            pushed_child = _push_selection_into(conj(pushable), node.child, db)
            result = node.with_children([pushed_child])
        if remaining:
            result = Selection(result, conj(remaining))
        return result

    # Base relation or anything else: stop here.
    return Selection(node, predicate)


def _push_into_join(
    conjuncts: list[Predicate], node: Join | NaturalJoin, db: DatabaseSchema
) -> RAExpression:
    left, right = node.children()
    left_schema = left.output_schema(db)
    right_schema = right.output_schema(db)
    left_names = set(left_schema.attribute_names)
    right_names = set(right_schema.attribute_names)

    left_conjuncts: list[Predicate] = []
    right_conjuncts: list[Predicate] = []
    kept: list[Predicate] = []
    for conjunct in conjuncts:
        referenced = conjunct.referenced_columns()
        if referenced <= left_names:
            left_conjuncts.append(conjunct)
        elif referenced <= right_names:
            right_conjuncts.append(conjunct)
        else:
            kept.append(conjunct)

    # Equality propagation: col = const can cross the join along equi-join pairs.
    for pair_left, pair_right in _equijoin_pairs(node, left_schema, right_schema, db):
        for conjunct in conjuncts:
            constant = _constant_equality(conjunct)
            if constant is None:
                continue
            column, literal = constant
            if column == pair_left:
                right_conjuncts.append(Comparison("=", ColumnRef(pair_right), Literal(literal)))
            elif column == pair_right:
                left_conjuncts.append(Comparison("=", ColumnRef(pair_left), Literal(literal)))

    new_left = _push_selection_into(conj(left_conjuncts), left, db) if left_conjuncts else left
    new_right = _push_selection_into(conj(right_conjuncts), right, db) if right_conjuncts else right
    rebuilt = node.with_children([new_left, new_right])
    if kept:
        return Selection(rebuilt, conj(kept))
    return rebuilt


def _equijoin_pairs(
    node: Join | NaturalJoin, left_schema, right_schema, db: DatabaseSchema
) -> list[tuple[str, str]]:
    if isinstance(node, NaturalJoin):
        return [(name, name) for name in node.shared_attributes(db)]
    pairs: list[tuple[str, str]] = []
    for conjunct in node.effective_predicate().conjuncts():
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            a, b = conjunct.left.name, conjunct.right.name
            if left_schema.has_attribute(a) and right_schema.has_attribute(b):
                pairs.append((a, b))
            elif left_schema.has_attribute(b) and right_schema.has_attribute(a):
                pairs.append((b, a))
    return pairs


def _constant_equality(predicate: Predicate) -> tuple[str, Any] | None:
    """Return ``(column, constant)`` for predicates of the form ``col = const``."""
    if not isinstance(predicate, Comparison) or predicate.op != "=":
        return None
    if isinstance(predicate.left, ColumnRef) and isinstance(predicate.right, Literal):
        return predicate.left.name, predicate.right.value
    if isinstance(predicate.right, ColumnRef) and isinstance(predicate.left, Literal):
        return predicate.right.name, predicate.left.value
    return None


def _rename_predicate_columns(predicate: Predicate, mapping: dict[str, str]) -> Predicate:
    """Rewrite column references in ``predicate`` according to ``mapping``."""
    from repro.ra.predicates import And, Not, Or

    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.op,
            _rename_scalar(predicate.left, mapping),
            _rename_scalar(predicate.right, mapping),
        )
    if isinstance(predicate, And):
        return And(tuple(_rename_predicate_columns(p, mapping) for p in predicate.operands))
    if isinstance(predicate, Or):
        return Or(tuple(_rename_predicate_columns(p, mapping) for p in predicate.operands))
    if isinstance(predicate, Not):
        return Not(_rename_predicate_columns(predicate.operand, mapping))
    return predicate


def _rename_scalar(scalar, mapping: dict[str, str]):
    from repro.ra.predicates import Arithmetic

    if isinstance(scalar, ColumnRef):
        return ColumnRef(mapping.get(scalar.name, scalar.name))
    if isinstance(scalar, Arithmetic):
        return Arithmetic(
            scalar.op, _rename_scalar(scalar.left, mapping), _rename_scalar(scalar.right, mapping)
        )
    return scalar


# ---------------------------------------------------------------------------
# Parameterization (§5.3.1)
# ---------------------------------------------------------------------------


@dataclass
class ParameterizedQuery:
    """A query with HAVING constants replaced by parameters, plus their originals."""

    query: RAExpression
    original_values: dict[str, Any]


def expression_parameters(expression: RAExpression) -> set[str]:
    """Names of every ``@param`` referenced by the expression's predicates."""
    names: set[str] = set()
    for node in expression.walk():
        predicate = getattr(node, "predicate", None)
        if predicate is not None:
            names |= predicate.referenced_params()
    return names


def parameterize_query(
    expression: RAExpression,
    db: DatabaseSchema,
    *,
    shared_names: dict[Any, str] | None = None,
    reserved_names: set[str] | None = None,
) -> ParameterizedQuery:
    """Replace constants in aggregate-comparing selections by parameters.

    ``shared_names`` lets the caller parameterize two queries consistently:
    the same constant value maps to the same parameter name in both, which is
    what Example 6 does with ``@numCS``.  Generated names never shadow a
    parameter the query (or ``reserved_names`` — e.g. the sibling query of a
    grading pair, or the caller's binding) already uses: a collision would
    silently rebind an existing ``@p1`` to the freed constant's value.
    """
    names = shared_names if shared_names is not None else {}
    original: dict[str, Any] = {}
    reserved = set(reserved_names or ())
    reserved |= expression_parameters(expression)
    reserved |= set(names.values())

    def aggregate_aliases(node: RAExpression) -> set[str]:
        aliases: set[str] = set()
        for descendant in node.walk():
            if isinstance(descendant, GroupBy):
                aliases |= {spec.alias for spec in descendant.aggregates}
        return aliases

    def rewrite(node: RAExpression) -> RAExpression:
        children = [rewrite(child) for child in node.children()]
        rebuilt = node.with_children(children) if children else node
        if isinstance(rebuilt, Selection):
            aliases = aggregate_aliases(rebuilt.child)
            if aliases:
                new_predicate = _parameterize_predicate(
                    rebuilt.predicate, aliases, names, original, reserved
                )
                return Selection(rebuilt.child, new_predicate)
        return rebuilt

    rewritten = rewrite(expression)
    return ParameterizedQuery(rewritten, original)


def _parameterize_predicate(
    predicate: Predicate,
    aggregate_aliases: set[str],
    names: dict[Any, str],
    original: dict[str, Any],
    reserved: set[str],
) -> Predicate:
    from repro.ra.predicates import And, Not, Or

    if isinstance(predicate, Comparison):
        touches_aggregate = any(
            isinstance(side, ColumnRef) and side.name in aggregate_aliases
            for side in (predicate.left, predicate.right)
        )
        if not touches_aggregate:
            return predicate
        left, right = predicate.left, predicate.right
        if isinstance(left, Literal):
            left = _literal_to_param(left, names, original, reserved)
        if isinstance(right, Literal):
            right = _literal_to_param(right, names, original, reserved)
        return Comparison(predicate.op, left, right)
    if isinstance(predicate, And):
        return And(
            tuple(
                _parameterize_predicate(p, aggregate_aliases, names, original, reserved)
                for p in predicate.operands
            )
        )
    if isinstance(predicate, Or):
        return Or(
            tuple(
                _parameterize_predicate(p, aggregate_aliases, names, original, reserved)
                for p in predicate.operands
            )
        )
    if isinstance(predicate, Not):
        return Not(
            _parameterize_predicate(
                predicate.operand, aggregate_aliases, names, original, reserved
            )
        )
    return predicate


def _literal_to_param(
    literal: Literal, names: dict[Any, str], original: dict[str, Any], reserved: set[str]
) -> Param:
    value = literal.value
    if value not in names:
        index = len(names)
        name = f"p{index}"
        while name in reserved:
            index += 1
            name = f"p{index}"
        names[value] = name
        reserved.add(name)
    name = names[value]
    original[name] = value
    return Param(name)
