"""Relational algebra operator AST.

The node classes cover the paper's SPJUDA language: Selection, Projection,
Join (theta and natural), Union, Difference, Intersection, Rename, and
Group-by/Aggregate, over named base relations.  All operators use **set
semantics**, matching the paper's relational algebra formulation.

Nodes are immutable; query rewrites (selection pushdown, parameterization,
mutation operators) build new trees via :meth:`RAExpression.with_children`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.catalog.schema import Attribute, DatabaseSchema, RelationSchema
from repro.catalog.types import DataType, is_numeric
from repro.errors import SchemaError, UnknownAttributeError
from repro.ra.predicates import Predicate, TruePredicate


class RAExpression:
    """Base class of relational algebra expressions."""

    def children(self) -> tuple["RAExpression", ...]:
        raise NotImplementedError

    def with_children(self, children: Sequence["RAExpression"]) -> "RAExpression":
        """Return a copy of this node with the given children substituted."""
        raise NotImplementedError

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        """The schema of this expression's result, validating the tree."""
        raise NotImplementedError

    def walk(self) -> Iterator["RAExpression"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def height(self) -> int:
        """Height of the operator tree (a leaf has height 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.height() for child in kids)

    def operator_count(self) -> int:
        """Number of operator nodes, excluding base relation references."""
        return sum(1 for node in self.walk() if not isinstance(node, RelationRef))

    def base_relations(self) -> set[str]:
        """Names of base relations referenced anywhere in the tree."""
        return {node.name for node in self.walk() if isinstance(node, RelationRef)}

    def __str__(self) -> str:
        raise NotImplementedError


def _expect_children(children: Sequence[RAExpression], count: int, node: str) -> None:
    if len(children) != count:
        raise SchemaError(f"{node} expects {count} child expressions, got {len(children)}")


@dataclass(frozen=True)
class RelationRef(RAExpression):
    """A reference to a named base relation."""

    name: str

    def children(self) -> tuple[RAExpression, ...]:
        return ()

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 0, "RelationRef")
        return self

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        return db.relation(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Selection(RAExpression):
    """``sigma_predicate(child)``."""

    child: RAExpression
    predicate: Predicate

    def children(self) -> tuple[RAExpression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 1, "Selection")
        return Selection(children[0], self.predicate)

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        schema = self.child.output_schema(db)
        for name in self.predicate.referenced_columns():
            if not schema.has_attribute(name):
                raise UnknownAttributeError(
                    f"selection predicate references unknown attribute {name!r} "
                    f"(available: {schema.attribute_names})"
                )
        return schema

    def __str__(self) -> str:
        return f"σ[{self.predicate}]({self.child})"


@dataclass(frozen=True)
class Projection(RAExpression):
    """``pi_columns(child)`` with optional output aliases (set semantics)."""

    child: RAExpression
    columns: tuple[str, ...]
    aliases: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("projection must keep at least one column")
        if self.aliases is not None and len(self.aliases) != len(self.columns):
            raise SchemaError("projection aliases must match the projected columns")

    def children(self) -> tuple[RAExpression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 1, "Projection")
        return Projection(children[0], self.columns, self.aliases)

    def output_names(self) -> tuple[str, ...]:
        return self.aliases if self.aliases is not None else self.columns

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        schema = self.child.output_schema(db)
        attrs = []
        for column, out_name in zip(self.columns, self.output_names()):
            attrs.append(schema.attribute(column).renamed(out_name))
        return RelationSchema(schema.name, tuple(attrs))

    def __str__(self) -> str:
        cols = ", ".join(
            c if a == c else f"{c} AS {a}" for c, a in zip(self.columns, self.output_names())
        )
        return f"π[{cols}]({self.child})"


@dataclass(frozen=True)
class Rename(RAExpression):
    """``rho`` — rename the relation and/or attributes of the child.

    ``prefix`` is a convenience: when set, every attribute ``a`` becomes
    ``prefix.a``, which is how self-joins disambiguate their columns.
    """

    child: RAExpression
    relation_name: str | None = None
    attribute_mapping: tuple[tuple[str, str], ...] = ()
    prefix: str | None = None

    def children(self) -> tuple[RAExpression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 1, "Rename")
        return Rename(children[0], self.relation_name, self.attribute_mapping, self.prefix)

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        schema = self.child.output_schema(db)
        if self.prefix is not None:
            mapping = {a.name: f"{self.prefix}.{a.name}" for a in schema.attributes}
        else:
            mapping = dict(self.attribute_mapping)
        return schema.rename_attributes(mapping, new_name=self.relation_name or schema.name)

    def __str__(self) -> str:
        if self.prefix is not None:
            return f"ρ[{self.prefix}.*]({self.child})"
        renames = ", ".join(f"{old}->{new}" for old, new in self.attribute_mapping)
        name = self.relation_name or ""
        return f"ρ[{name} {renames}]({self.child})"


@dataclass(frozen=True)
class Join(RAExpression):
    """Theta join: cross product of two children filtered by ``predicate``.

    The children must have disjoint attribute names (use :class:`Rename`
    with a prefix on one or both sides); a ``None`` predicate yields the
    plain cross product.
    """

    left: RAExpression
    right: RAExpression
    predicate: Predicate | None = None

    def children(self) -> tuple[RAExpression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 2, "Join")
        return Join(children[0], children[1], self.predicate)

    def effective_predicate(self) -> Predicate:
        return self.predicate if self.predicate is not None else TruePredicate()

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        left = self.left.output_schema(db)
        right = self.right.output_schema(db)
        combined = left.concat(right)
        for name in self.effective_predicate().referenced_columns():
            if not combined.has_attribute(name):
                raise UnknownAttributeError(
                    f"join predicate references unknown attribute {name!r} "
                    f"(available: {combined.attribute_names})"
                )
        return combined

    def __str__(self) -> str:
        if self.predicate is None:
            return f"({self.left}) × ({self.right})"
        return f"({self.left}) ⋈[{self.predicate}] ({self.right})"


@dataclass(frozen=True)
class NaturalJoin(RAExpression):
    """Natural join on all shared attribute names (kept once in the output)."""

    left: RAExpression
    right: RAExpression

    def children(self) -> tuple[RAExpression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 2, "NaturalJoin")
        return NaturalJoin(children[0], children[1])

    def shared_attributes(self, db: DatabaseSchema) -> tuple[str, ...]:
        left = self.left.output_schema(db)
        right = self.right.output_schema(db)
        return tuple(name for name in left.attribute_names if right.has_attribute(name))

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        left = self.left.output_schema(db)
        right = self.right.output_schema(db)
        shared = set(self.shared_attributes(db))
        attrs: list[Attribute] = list(left.attributes)
        attrs.extend(a for a in right.attributes if a.name not in shared)
        return RelationSchema(f"{left.name}_{right.name}", tuple(attrs))

    def __str__(self) -> str:
        return f"({self.left}) ⋈ ({self.right})"


@dataclass(frozen=True)
class Union(RAExpression):
    """Set union of two union-compatible children (left operand's names win)."""

    left: RAExpression
    right: RAExpression

    def children(self) -> tuple[RAExpression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 2, "Union")
        return Union(children[0], children[1])

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        left = self.left.output_schema(db)
        right = self.right.output_schema(db)
        if not left.union_compatible(right):
            raise SchemaError(f"union operands are not compatible: {left} vs {right}")
        return left

    def __str__(self) -> str:
        return f"({self.left}) ∪ ({self.right})"


@dataclass(frozen=True)
class Difference(RAExpression):
    """Set difference ``left - right`` of two union-compatible children."""

    left: RAExpression
    right: RAExpression

    def children(self) -> tuple[RAExpression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 2, "Difference")
        return Difference(children[0], children[1])

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        left = self.left.output_schema(db)
        right = self.right.output_schema(db)
        if not left.union_compatible(right):
            raise SchemaError(f"difference operands are not compatible: {left} vs {right}")
        return left

    def __str__(self) -> str:
        return f"({self.left}) − ({self.right})"


@dataclass(frozen=True)
class Intersection(RAExpression):
    """Set intersection of two union-compatible children."""

    left: RAExpression
    right: RAExpression

    def children(self) -> tuple[RAExpression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 2, "Intersection")
        return Intersection(children[0], children[1])

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        left = self.left.output_schema(db)
        right = self.right.output_schema(db)
        if not left.union_compatible(right):
            raise SchemaError(f"intersection operands are not compatible: {left} vs {right}")
        return left

    def __str__(self) -> str:
        return f"({self.left}) ∩ ({self.right})"


class AggregateFunction(enum.Enum):
    """Aggregate functions supported by :class:`GroupBy`."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: ``func(attribute) AS alias``.

    ``attribute`` is ``None`` only for ``COUNT(*)``.
    """

    func: AggregateFunction
    attribute: str | None
    alias: str

    def __post_init__(self) -> None:
        if self.attribute is None and self.func is not AggregateFunction.COUNT:
            raise SchemaError(f"{self.func.value.upper()} requires an attribute")

    def __str__(self) -> str:
        arg = self.attribute if self.attribute is not None else "*"
        return f"{self.func.value.upper()}({arg}) AS {self.alias}"


@dataclass(frozen=True)
class GroupBy(RAExpression):
    """``gamma_{group_by; aggregates}(child)``.

    Produces one output tuple per non-empty group; the output schema is the
    grouping attributes followed by the aggregate aliases.  HAVING clauses are
    expressed as a :class:`Selection` above the GroupBy referencing the
    aggregate aliases, matching the paper's RA form
    ``sigma_{agg op const}(gamma(...))``.
    """

    child: RAExpression
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise SchemaError("GroupBy requires at least one aggregate")
        aliases = [spec.alias for spec in self.aggregates]
        if len(aliases) != len(set(aliases)):
            raise SchemaError(f"duplicate aggregate aliases: {aliases}")

    def children(self) -> tuple[RAExpression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RAExpression]) -> RAExpression:
        _expect_children(children, 1, "GroupBy")
        return GroupBy(children[0], self.group_by, self.aggregates)

    def output_schema(self, db: DatabaseSchema) -> RelationSchema:
        schema = self.child.output_schema(db)
        attrs: list[Attribute] = [schema.attribute(name) for name in self.group_by]
        for spec in self.aggregates:
            if spec.func is AggregateFunction.COUNT:
                dtype = DataType.INT
            else:
                input_attr = schema.attribute(spec.attribute or "")
                if not is_numeric(input_attr.dtype) and spec.func in (
                    AggregateFunction.SUM,
                    AggregateFunction.AVG,
                ):
                    raise SchemaError(
                        f"{spec.func.value.upper()} requires a numeric attribute, "
                        f"got {input_attr}"
                    )
                dtype = DataType.FLOAT if spec.func is AggregateFunction.AVG else input_attr.dtype
            attrs.append(Attribute(spec.alias, dtype))
        return RelationSchema(f"{schema.name}_agg", tuple(attrs))

    def __str__(self) -> str:
        group = ", ".join(self.group_by)
        aggs = ", ".join(str(spec) for spec in self.aggregates)
        return f"γ[{group}; {aggs}]({self.child})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def relation(name: str) -> RelationRef:
    return RelationRef(name)


def select(child: RAExpression, predicate: Predicate) -> Selection:
    return Selection(child, predicate)


def project(child: RAExpression, columns: Sequence[str], aliases: Sequence[str] | None = None) -> Projection:
    return Projection(child, tuple(columns), tuple(aliases) if aliases is not None else None)


def rename_prefix(child: RAExpression, prefix: str) -> Rename:
    return Rename(child, prefix=prefix)


def theta_join(left: RAExpression, right: RAExpression, predicate: Predicate | None = None) -> Join:
    return Join(left, right, predicate)


def natural_join(left: RAExpression, right: RAExpression) -> NaturalJoin:
    return NaturalJoin(left, right)


def union(left: RAExpression, right: RAExpression) -> Union:
    return Union(left, right)


def difference(left: RAExpression, right: RAExpression) -> Difference:
    return Difference(left, right)


def intersection(left: RAExpression, right: RAExpression) -> Intersection:
    return Intersection(left, right)


def group_by(
    child: RAExpression,
    group_columns: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> GroupBy:
    return GroupBy(child, tuple(group_columns), tuple(aggregates))


def count(attribute: str | None, alias: str) -> AggregateSpec:
    return AggregateSpec(AggregateFunction.COUNT, attribute, alias)


def agg_sum(attribute: str, alias: str) -> AggregateSpec:
    return AggregateSpec(AggregateFunction.SUM, attribute, alias)


def avg(attribute: str, alias: str) -> AggregateSpec:
    return AggregateSpec(AggregateFunction.AVG, attribute, alias)


def agg_min(attribute: str, alias: str) -> AggregateSpec:
    return AggregateSpec(AggregateFunction.MIN, attribute, alias)


def agg_max(attribute: str, alias: str) -> AggregateSpec:
    return AggregateSpec(AggregateFunction.MAX, attribute, alias)
