"""Query analysis: operator usage, complexity metrics and class detection.

The paper's complexity dichotomy (Table 1) and its algorithm dispatch depend
on which operators a query uses and *where* they appear:

* ``JU*`` — joins and unions only, with every union above all joins;
* ``SPJUD*`` — differences only at the top of the tree (grammar
  ``Q -> q+ | Q - Q`` where ``q+`` is an SPJU query);
* aggregate queries are handled by the separate algorithms of §5.

This module computes these facts for arbitrary expression trees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.catalog.schema import RelationSchema
from repro.ra.predicates import ColumnRef, Comparison, Predicate
from repro.ra.ast import (
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)

_JOIN_NODES = (Join, NaturalJoin, Intersection)


def split_equijoin_conjuncts(
    predicate: Predicate,
    left_schema: RelationSchema,
    right_schema: RelationSchema,
) -> tuple[list[tuple[str, str]], list[Predicate]]:
    """Split a join predicate into hashable equi-join pairs and residual conjuncts.

    Returns ``(pairs, residual)`` where each pair is ``(left_column,
    right_column)`` and the residual predicates must still be evaluated on the
    concatenated tuple.  Pure predicate/schema analysis — shared by the plan
    compiler, the reference interpreters, and the SQL writer.
    """
    pairs: list[tuple[str, str]] = []
    residual: list[Predicate] = []
    for conjunct in predicate.conjuncts():
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            left_name, right_name = conjunct.left.name, conjunct.right.name
            if left_schema.has_attribute(left_name) and right_schema.has_attribute(right_name):
                pairs.append((left_name, right_name))
                continue
            if left_schema.has_attribute(right_name) and right_schema.has_attribute(left_name):
                pairs.append((right_name, left_name))
                continue
        residual.append(conjunct)
    return pairs, residual


class QueryClass(enum.Enum):
    """Syntactic query classes used by the algorithm dispatcher."""

    SJ = "SJ"
    SPU = "SPU"
    PJ = "PJ"
    JU = "JU"
    JU_STAR = "JU*"
    SPJU = "SPJU"
    SPJUD_STAR = "SPJUD*"
    SPJUD = "SPJUD"
    AGGREGATE = "SPJUDA"


@dataclass(frozen=True)
class QueryProfile:
    """Operator usage and complexity metrics of one RA expression."""

    uses_selection: bool
    uses_projection: bool
    uses_join: bool
    uses_union: bool
    uses_difference: bool
    uses_aggregate: bool
    num_operators: int
    num_joins: int
    num_unions: int
    num_differences: int
    num_aggregates: int
    height: int
    num_base_relations: int
    query_class: QueryClass

    @property
    def is_monotone(self) -> bool:
        """Monotone queries (no difference, no aggregation) never lose answers
        when tuples are added to the input."""
        return not self.uses_difference and not self.uses_aggregate

    @property
    def polytime_data_complexity(self) -> bool:
        """Whether SWP is poly-time in data complexity for this class (Table 1)."""
        return self.query_class is not QueryClass.SPJUD

    @property
    def polytime_combined_complexity(self) -> bool:
        """Whether SWP is poly-time in combined complexity for this class (Table 1)."""
        return self.query_class in (QueryClass.SJ, QueryClass.SPU, QueryClass.JU_STAR)


def _predicate_selects(predicate) -> bool:
    """True when a join predicate does more than equate columns of the two sides."""
    from repro.ra.predicates import ColumnRef, Comparison

    for conjunct in predicate.conjuncts():
        if not isinstance(conjunct, Comparison):
            return True
        if conjunct.op != "=":
            return True
        if not (isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, ColumnRef)):
            return True
    return False


def unions_after_joins(expression: RAExpression) -> bool:
    """True when no union occurs below a join (the ``JU*`` restriction)."""
    for node in expression.walk():
        if isinstance(node, _JOIN_NODES):
            for descendant in node.walk():
                if descendant is node:
                    continue
                if isinstance(descendant, Union):
                    return False
    return True


def differences_only_at_top(expression: RAExpression) -> bool:
    """True when every difference sits above all other operators (``SPJUD*``).

    Formally the expression must be derivable from ``Q -> q+ | Q - Q`` with
    ``q+`` an SPJU query: no difference node may appear strictly below a
    non-difference operator node.
    """
    for node in expression.walk():
        if isinstance(node, (Difference, RelationRef, Rename)):
            continue
        for descendant in node.walk():
            if descendant is node:
                continue
            if isinstance(descendant, Difference):
                return False
    return True


def spju_terminals(expression: RAExpression) -> list[RAExpression]:
    """The maximal difference-free subtrees of an SPJUD* expression.

    These are the ``q+`` terminals in the grammar ``Q -> q+ | Q - Q``; the
    SPJUD* poly-time algorithm (Theorem 7) enumerates witnesses per terminal.
    """
    terminals: list[RAExpression] = []

    def visit(node: RAExpression) -> None:
        if isinstance(node, Difference):
            visit(node.left)
            visit(node.right)
        else:
            terminals.append(node)

    visit(expression)
    return terminals


def profile(expression: RAExpression) -> QueryProfile:
    """Compute the :class:`QueryProfile` of an expression."""
    uses_selection = uses_projection = uses_join = False
    uses_union = uses_difference = uses_aggregate = False
    num_joins = num_unions = num_differences = num_aggregates = 0
    for node in expression.walk():
        if isinstance(node, Selection):
            uses_selection = True
        elif isinstance(node, Projection):
            uses_projection = True
        elif isinstance(node, _JOIN_NODES):
            uses_join = True
            num_joins += 1
            # A theta-join whose predicate compares against constants or uses
            # non-equality operators embeds a selection; classify it as S+J.
            if isinstance(node, Join) and node.predicate is not None and _predicate_selects(node.predicate):
                uses_selection = True
        elif isinstance(node, Union):
            uses_union = True
            num_unions += 1
        elif isinstance(node, Difference):
            uses_difference = True
            num_differences += 1
        elif isinstance(node, GroupBy):
            uses_aggregate = True
            num_aggregates += 1

    query_class = _classify(
        expression,
        uses_selection=uses_selection,
        uses_projection=uses_projection,
        uses_join=uses_join,
        uses_union=uses_union,
        uses_difference=uses_difference,
        uses_aggregate=uses_aggregate,
    )
    return QueryProfile(
        uses_selection=uses_selection,
        uses_projection=uses_projection,
        uses_join=uses_join,
        uses_union=uses_union,
        uses_difference=uses_difference,
        uses_aggregate=uses_aggregate,
        num_operators=expression.operator_count(),
        num_joins=num_joins,
        num_unions=num_unions,
        num_differences=num_differences,
        num_aggregates=num_aggregates,
        height=expression.height(),
        num_base_relations=len(expression.base_relations()),
        query_class=query_class,
    )


def _classify(
    expression: RAExpression,
    *,
    uses_selection: bool,
    uses_projection: bool,
    uses_join: bool,
    uses_union: bool,
    uses_difference: bool,
    uses_aggregate: bool,
) -> QueryClass:
    if uses_aggregate:
        return QueryClass.AGGREGATE
    if uses_difference:
        if differences_only_at_top(expression):
            return QueryClass.SPJUD_STAR
        return QueryClass.SPJUD

    # Monotone SPJU fragment: pick the most specific label from Table 1.
    if uses_join and uses_union and not uses_selection and not uses_projection:
        if unions_after_joins(expression):
            return QueryClass.JU_STAR
        return QueryClass.JU
    if uses_join and uses_projection and not uses_union:
        if uses_selection:
            return QueryClass.SPJU
        return QueryClass.PJ
    if uses_join and not uses_projection and not uses_union:
        return QueryClass.SJ
    if not uses_join:
        return QueryClass.SPU
    return QueryClass.SPJU
