"""Set-semantics evaluation of relational algebra expressions.

The evaluator is a straightforward operator-at-a-time interpreter with one
performance-critical refinement: theta joins and natural joins are executed
as hash joins on their equality conjuncts (with any residual predicate applied
afterwards), so that the 1K–100K-tuple experiments of the paper are feasible
without a full query optimizer.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.catalog.instance import DatabaseInstance, ResultSet, Values
from repro.catalog.schema import RelationSchema
from repro.errors import QueryEvaluationError
from repro.ra.ast import (
    AggregateFunction,
    AggregateSpec,
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.ra.predicates import ColumnRef, Comparison, Predicate

ParamValues = Mapping[str, Any]


def evaluate(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
) -> ResultSet:
    """Evaluate ``expression`` over ``instance`` and return its result set."""
    evaluator = Evaluator(instance, params or {})
    schema = expression.output_schema(instance.schema)
    rows = evaluator.rows(expression)
    return ResultSet.of(schema, rows)


def results_differ(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
) -> bool:
    """True when the two queries return different row sets on ``instance``."""
    return not evaluate(q1, instance, params).same_rows(evaluate(q2, instance, params))


def split_equijoin_conjuncts(
    predicate: Predicate,
    left_schema: RelationSchema,
    right_schema: RelationSchema,
) -> tuple[list[tuple[str, str]], list[Predicate]]:
    """Split a join predicate into hashable equi-join pairs and residual conjuncts.

    Returns ``(pairs, residual)`` where each pair is ``(left_column,
    right_column)`` and the residual predicates must still be evaluated on the
    concatenated tuple.
    """
    pairs: list[tuple[str, str]] = []
    residual: list[Predicate] = []
    for conjunct in predicate.conjuncts():
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            left_name, right_name = conjunct.left.name, conjunct.right.name
            if left_schema.has_attribute(left_name) and right_schema.has_attribute(right_name):
                pairs.append((left_name, right_name))
                continue
            if left_schema.has_attribute(right_name) and right_schema.has_attribute(left_name):
                pairs.append((right_name, left_name))
                continue
        residual.append(conjunct)
    return pairs, residual


class Evaluator:
    """Evaluates RA expressions over one database instance.

    Results of shared sub-expressions are memoised by node identity, which
    matters for the difference-heavy student queries where the same subquery
    appears on both sides of a difference.
    """

    def __init__(self, instance: DatabaseInstance, params: ParamValues) -> None:
        self.instance = instance
        self.params = params
        self._cache: dict[int, list[Values]] = {}

    # -- public API ---------------------------------------------------------

    def rows(self, node: RAExpression) -> list[Values]:
        """Deduplicated rows of ``node`` (set semantics)."""
        key = id(node)
        if key not in self._cache:
            self._cache[key] = self._evaluate(node)
        return self._cache[key]

    # -- dispatch ------------------------------------------------------------

    def _evaluate(self, node: RAExpression) -> list[Values]:
        if isinstance(node, RelationRef):
            return self._relation(node)
        if isinstance(node, Selection):
            return self._selection(node)
        if isinstance(node, Projection):
            return self._projection(node)
        if isinstance(node, Rename):
            return self.rows(node.child)
        if isinstance(node, Join):
            return self._theta_join(node)
        if isinstance(node, NaturalJoin):
            return self._natural_join(node)
        if isinstance(node, Union):
            return self._union(node)
        if isinstance(node, Difference):
            return self._difference(node)
        if isinstance(node, Intersection):
            return self._intersection(node)
        if isinstance(node, GroupBy):
            return self._group_by(node)
        raise QueryEvaluationError(f"unsupported RA node type {type(node).__name__}")

    # -- operators -----------------------------------------------------------

    def _relation(self, node: RelationRef) -> list[Values]:
        relation = self.instance.relation(node.name)
        return _dedup(values for _, values in relation.tuples())

    def _selection(self, node: Selection) -> list[Values]:
        schema = node.child.output_schema(self.instance.schema)
        predicate = node.predicate
        return [
            row for row in self.rows(node.child) if predicate.evaluate(schema, row, self.params)
        ]

    def _projection(self, node: Projection) -> list[Values]:
        schema = node.child.output_schema(self.instance.schema)
        indexes = [schema.index_of(c) for c in node.columns]
        return _dedup(tuple(row[i] for i in indexes) for row in self.rows(node.child))

    def _theta_join(self, node: Join) -> list[Values]:
        left_schema = node.left.output_schema(self.instance.schema)
        right_schema = node.right.output_schema(self.instance.schema)
        combined = node.output_schema(self.instance.schema)
        pairs, residual = split_equijoin_conjuncts(
            node.effective_predicate(), left_schema, right_schema
        )
        left_rows = self.rows(node.left)
        right_rows = self.rows(node.right)
        output: list[Values] = []
        if pairs:
            left_idx = [left_schema.index_of(a) for a, _ in pairs]
            right_idx = [right_schema.index_of(b) for _, b in pairs]
            table: dict[tuple, list[Values]] = {}
            for row in right_rows:
                table.setdefault(tuple(row[i] for i in right_idx), []).append(row)
            for left_row in left_rows:
                key = tuple(left_row[i] for i in left_idx)
                for right_row in table.get(key, ()):  # hash-join probe
                    output.append(left_row + right_row)
        else:
            for left_row in left_rows:
                for right_row in right_rows:
                    output.append(left_row + right_row)
        if residual:
            output = [
                row
                for row in output
                if all(p.evaluate(combined, row, self.params) for p in residual)
            ]
        return _dedup(output)

    def _natural_join(self, node: NaturalJoin) -> list[Values]:
        left_schema = node.left.output_schema(self.instance.schema)
        right_schema = node.right.output_schema(self.instance.schema)
        shared = node.shared_attributes(self.instance.schema)
        left_rows = self.rows(node.left)
        right_rows = self.rows(node.right)
        if not shared:
            return _dedup(l + r for l in left_rows for r in right_rows)
        left_idx = [left_schema.index_of(name) for name in shared]
        right_idx = [right_schema.index_of(name) for name in shared]
        keep_right = [
            i for i, attr in enumerate(right_schema.attributes) if attr.name not in set(shared)
        ]
        table: dict[tuple, list[Values]] = {}
        for row in right_rows:
            table.setdefault(tuple(row[i] for i in right_idx), []).append(row)
        output = []
        for left_row in left_rows:
            key = tuple(left_row[i] for i in left_idx)
            for right_row in table.get(key, ()):
                output.append(left_row + tuple(right_row[i] for i in keep_right))
        return _dedup(output)

    def _union(self, node: Union) -> list[Values]:
        return _dedup(self.rows(node.left) + self.rows(node.right))

    def _difference(self, node: Difference) -> list[Values]:
        right = set(self.rows(node.right))
        return [row for row in self.rows(node.left) if row not in right]

    def _intersection(self, node: Intersection) -> list[Values]:
        right = set(self.rows(node.right))
        return [row for row in self.rows(node.left) if row in right]

    def _group_by(self, node: GroupBy) -> list[Values]:
        schema = node.child.output_schema(self.instance.schema)
        group_idx = [schema.index_of(name) for name in node.group_by]
        groups: dict[tuple, list[Values]] = {}
        for row in self.rows(node.child):
            groups.setdefault(tuple(row[i] for i in group_idx), []).append(row)
        output = []
        for key, rows in groups.items():
            aggregates = tuple(
                compute_aggregate(spec, schema, rows) for spec in node.aggregates
            )
            output.append(key + aggregates)
        return _dedup(output)


def compute_aggregate(
    spec: AggregateSpec, schema: RelationSchema, rows: Sequence[Values]
) -> Any:
    """Compute one aggregate over the rows of a group (set semantics)."""
    if spec.func is AggregateFunction.COUNT and spec.attribute is None:
        return len(rows)
    index = schema.index_of(spec.attribute or "")
    values = [row[index] for row in rows if row[index] is not None]
    if spec.func is AggregateFunction.COUNT:
        return len(values)
    if not values:
        return None
    if spec.func is AggregateFunction.SUM:
        return sum(values)
    if spec.func is AggregateFunction.AVG:
        return sum(values) / len(values)
    if spec.func is AggregateFunction.MIN:
        return min(values)
    if spec.func is AggregateFunction.MAX:
        return max(values)
    raise QueryEvaluationError(f"unsupported aggregate function {spec.func}")  # pragma: no cover


def _dedup(rows) -> list[Values]:
    """Deduplicate rows while preserving first-seen order (set semantics)."""
    seen: set[Values] = set()
    output: list[Values] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            output.append(row)
    return output
