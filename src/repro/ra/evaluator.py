"""Set-semantics evaluation of relational algebra expressions.

This module is a thin facade over the annotation-generic execution engine
(:mod:`repro.engine`): queries are compiled to a plan, optimized (selection
pushdown, hash-join build-side choice) and executed under the Boolean
:class:`~repro.engine.domains.SetDomain`, which reproduces classic set
semantics exactly.  Provenance-annotated evaluation
(:mod:`repro.provenance.annotate`) runs the *same* plans under a different
annotation domain, so there is a single implementation of scans, joins,
dedup and aggregation for both.

Engine imports are deferred to call time: the engine's plan layer imports
``repro.ra.ast``, whose package ``__init__`` imports this module, so a
module-level engine import would close an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.catalog.instance import DatabaseInstance, ResultSet, Values
from repro.catalog.schema import RelationSchema
from repro.ra.ast import AggregateSpec, RAExpression
from repro.ra.predicates import Predicate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.session import EngineSession

__all__ = [
    "Evaluator",
    "compute_aggregate",
    "evaluate",
    "results_differ",
    "split_equijoin_conjuncts",
]

ParamValues = Mapping[str, Any]


def _new_session(instance: DatabaseInstance) -> "EngineSession":
    from repro.engine.session import EngineSession

    return EngineSession(instance)


def evaluate(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
) -> ResultSet:
    """Evaluate ``expression`` over ``instance`` and return its result set."""
    return _new_session(instance).evaluate(expression, params)


def results_differ(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
) -> bool:
    """True when the two queries return different row sets on ``instance``."""
    session = _new_session(instance)
    return not session.evaluate(q1, params).same_rows(session.evaluate(q2, params))


def split_equijoin_conjuncts(
    predicate: Predicate,
    left_schema: RelationSchema,
    right_schema: RelationSchema,
) -> tuple[list[tuple[str, str]], list[Predicate]]:
    """Split a join predicate into hashable equi-join pairs and residual conjuncts.

    Re-exported facade over :func:`repro.ra.analysis.split_equijoin_conjuncts`.
    """
    from repro.ra.analysis import split_equijoin_conjuncts as split

    return split(predicate, left_schema, right_schema)


class Evaluator:
    """Evaluates RA expressions over one database instance.

    Results of shared sub-expressions are memoised *structurally* (not by
    ``id``), which matters for the difference-heavy student queries where the
    same subquery appears on both sides of a difference as two distinct but
    equal trees.
    """

    def __init__(self, instance: DatabaseInstance, params: ParamValues) -> None:
        self.instance = instance
        self.params = params
        self.session = _new_session(instance)

    def rows(self, node: RAExpression) -> list[Values]:
        """Deduplicated rows of ``node`` (set semantics)."""
        return self.session.rows(node, self.params)


def compute_aggregate(
    spec: AggregateSpec, schema: RelationSchema, rows: Sequence[Values]
) -> Any:
    """Compute one aggregate over the rows of a group (set semantics).

    Raises :class:`~repro.errors.QueryEvaluationError` naming the aggregate
    and the missing attribute when the attribute cannot be resolved.
    """
    from repro.engine.logical import resolve_aggregate_input
    from repro.engine.physical import apply_aggregate

    index = resolve_aggregate_input(spec, schema)
    if index < 0:  # COUNT(*)
        return len(rows)
    return apply_aggregate(spec.func, [row[index] for row in rows if row[index] is not None])
