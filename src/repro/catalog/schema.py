"""Relation and database schemas.

A :class:`RelationSchema` is an ordered list of typed attributes plus a name.
A :class:`DatabaseSchema` is a collection of relation schemas together with
the integrity constraints declared on them.  Schemas are immutable value
objects: operations such as projection or renaming return new schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, TYPE_CHECKING

from repro.catalog.types import DataType, comparable
from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.catalog.constraints import Constraint


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation."""

    name: str
    dtype: DataType
    nullable: bool = False

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.dtype, self.nullable)

    def __str__(self) -> str:
        suffix = "?" if self.nullable else ""
        return f"{self.name}:{self.dtype.value}{suffix}"


@dataclass(frozen=True)
class RelationSchema:
    """The schema of a single relation: a name and an ordered attribute list."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in relation {self.name!r}: {names}")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} must have at least one attribute")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def of(name: str, columns: Sequence[tuple[str, DataType] | Attribute]) -> "RelationSchema":
        """Build a schema from ``(name, dtype)`` pairs or ready-made attributes."""
        attrs = tuple(
            col if isinstance(col, Attribute) else Attribute(col[0], col[1]) for col in columns
        )
        return RelationSchema(name, attrs)

    # -- lookups -----------------------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise UnknownAttributeError(f"relation {self.name!r} has no attribute {name!r}")

    def index_of(self, name: str) -> int:
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise UnknownAttributeError(f"relation {self.name!r} has no attribute {name!r}")

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    # -- derived schemas ----------------------------------------------------

    def project(self, names: Sequence[str], *, new_name: str | None = None) -> "RelationSchema":
        """Schema obtained by projecting onto ``names`` (in the given order)."""
        attrs = tuple(self.attribute(n) for n in names)
        return RelationSchema(new_name or self.name, attrs)

    def rename_relation(self, new_name: str) -> "RelationSchema":
        """Same attributes under a different relation name."""
        return RelationSchema(new_name, self.attributes)

    def rename_attributes(self, mapping: dict[str, str], *, new_name: str | None = None) -> "RelationSchema":
        """Rename attributes according to ``mapping`` (missing keys are kept)."""
        for old in mapping:
            if not self.has_attribute(old):
                raise UnknownAttributeError(
                    f"cannot rename {old!r}: not an attribute of {self.name!r}"
                )
        attrs = tuple(a.renamed(mapping.get(a.name, a.name)) for a in self.attributes)
        return RelationSchema(new_name or self.name, attrs)

    def concat(self, other: "RelationSchema", *, new_name: str | None = None) -> "RelationSchema":
        """Schema of the cross product / theta join of two relations.

        Attribute names must be disjoint; callers are expected to rename
        before joining when both sides share attribute names (natural join
        handles the shared attributes itself).
        """
        overlap = set(self.attribute_names) & set(other.attribute_names)
        if overlap:
            raise SchemaError(
                f"cannot concatenate schemas {self.name!r} and {other.name!r}: "
                f"shared attributes {sorted(overlap)}"
            )
        return RelationSchema(new_name or f"{self.name}_{other.name}", self.attributes + other.attributes)

    # -- compatibility ------------------------------------------------------

    def union_compatible(self, other: "RelationSchema") -> bool:
        """True when the two schemas have the same arity and comparable types.

        Attribute *names* do not need to match (as in SQL set operations); the
        output takes the left operand's names.
        """
        if self.arity != other.arity:
            return False
        return all(
            comparable(a.dtype, b.dtype) for a, b in zip(self.attributes, other.attributes)
        )

    def __str__(self) -> str:
        cols = ", ".join(str(a) for a in self.attributes)
        return f"{self.name}({cols})"


@dataclass
class DatabaseSchema:
    """A collection of relation schemas plus declared integrity constraints."""

    relations: dict[str, RelationSchema] = field(default_factory=dict)
    constraints: list["Constraint"] = field(default_factory=list)

    @staticmethod
    def of(schemas: Iterable[RelationSchema], constraints: Iterable["Constraint"] = ()) -> "DatabaseSchema":
        db = DatabaseSchema()
        for schema in schemas:
            db.add_relation(schema)
        for constraint in constraints:
            db.add_constraint(constraint)
        return db

    def add_relation(self, schema: RelationSchema) -> None:
        if schema.name in self.relations:
            raise SchemaError(f"relation {schema.name!r} already declared")
        self.relations[schema.name] = schema

    def add_constraint(self, constraint: "Constraint") -> None:
        constraint.validate_against(self)
        self.constraints.append(constraint)

    def relation(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self.relations

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self.relations)

    def foreign_keys(self) -> list["Constraint"]:
        """Return only the foreign-key constraints (used by the solvers)."""
        from repro.catalog.constraints import ForeignKeyConstraint

        return [c for c in self.constraints if isinstance(c, ForeignKeyConstraint)]

    def __str__(self) -> str:
        return "; ".join(str(s) for s in self.relations.values())
