"""Database instances: relations with identified tuples, and query results.

Every tuple stored in a base relation carries a unique *tuple identifier*
(tid) such as ``"Student:3"``.  Tids are how the provenance layer and the
constraint solvers refer to input tuples, exactly like the ``t1, t2, ...``
annotations in the paper's figures.  Query *results* are plain value tuples
under set semantics and carry no identifiers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.catalog.delta import Delta, LogEntry, RelationDelta
from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.catalog.types import coerce
from repro.errors import SchemaError, UnknownRelationError

Values = tuple[Any, ...]

#: How many mutations a relation remembers for delta reconciliation.  A warm
#: session that falls further behind than this gets a clean gap signal
#: (``changes_since`` returns None) and falls back to cold evaluation.
MUTATION_LOG_CAPACITY = 1024


def split_tid(tid: str) -> tuple[str, str]:
    """Split a tid like ``"Student:3"`` into ``("Student", "3")``."""
    relation, _, suffix = tid.partition(":")
    if not suffix:
        raise ValueError(f"malformed tuple identifier {tid!r}")
    return relation, suffix


def tid_sort_key(tid: str) -> tuple[str, int, int | str]:
    """Numeric-aware sort key: ``Student:3`` before ``Student:33``."""
    relation, suffix = split_tid(tid)
    if suffix.isdigit():
        return (relation, 0, int(suffix))
    return (relation, 1, suffix)


class Relation:
    """A base relation instance: a set of identified, typed tuples."""

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._rows: dict[str, Values] = {}
        self._next_id = 1
        self._version = 0
        self._indexes: dict[tuple[int, ...], dict[tuple, list[tuple[str, Values]]]] = {}
        # Distinct-value statistics are kept as multiplicity maps
        # (key value -> number of rows carrying it) so they can be maintained
        # incrementally under delete/update, not just counted once.
        self._distinct_counts: dict[tuple[int, ...], dict[tuple, int]] = {}
        self._log: deque[LogEntry] = deque(maxlen=MUTATION_LOG_CAPACITY)

    # -- mutation ----------------------------------------------------------

    def insert(self, values: Sequence[Any], *, tid: str | None = None) -> str:
        """Insert a tuple, returning its identifier.

        Values are coerced to the declared attribute types.  Duplicate values
        are allowed at the storage layer (they get distinct tids); the query
        evaluator applies set semantics on top.
        """
        if len(values) != self.schema.arity:
            raise SchemaError(
                f"relation {self.schema.name!r} expects {self.schema.arity} values, "
                f"got {len(values)}"
            )
        coerced = tuple(
            coerce(v, attr.dtype, nullable=attr.nullable)
            for v, attr in zip(values, self.schema.attributes)
        )
        if tid is None:
            tid = f"{self.schema.name}:{self._next_id}"
            self._next_id += 1
        elif tid in self._rows:
            raise SchemaError(f"duplicate tuple identifier {tid!r}")
        else:
            # Keep auto-generated identifiers ahead of explicit numeric ones,
            # so inserts after a deserialized/hand-built relation never
            # silently overwrite an existing tuple.
            suffix = tid.partition(":")[2]
            if suffix.isdigit():
                self._next_id = max(self._next_id, int(suffix) + 1)
        self._rows[tid] = coerced
        self._version += 1
        self._log.append((self._version, "+", tid, None, coerced))
        self._index_add(tid, coerced)
        return tid

    def insert_all(self, rows: Iterable[Sequence[Any]]) -> list[str]:
        """Insert many tuples, returning their identifiers in order."""
        return [self.insert(row) for row in rows]

    def delete(self, tid: str) -> Values:
        """Delete a tuple by identifier, returning its values.

        Raises :class:`KeyError` for unknown identifiers.  Cached hash
        indexes and distinct-count statistics are maintained in place rather
        than discarded.
        """
        try:
            values = self._rows.pop(tid)
        except KeyError:
            raise KeyError(
                f"tuple {tid!r} is not in relation {self.schema.name!r}"
            ) from None
        self._version += 1
        self._log.append((self._version, "-", tid, values, None))
        self._index_remove(tid, values)
        return values

    def update(self, tid: str, values: Sequence[Any]) -> tuple[Values, Values]:
        """Replace a tuple's values in place, returning ``(old, new)``.

        The tuple keeps its identifier and its position in insertion order.
        Updating to identical values is a no-op: no version bump, no delta.
        """
        if tid not in self._rows:
            raise KeyError(f"tuple {tid!r} is not in relation {self.schema.name!r}")
        if len(values) != self.schema.arity:
            raise SchemaError(
                f"relation {self.schema.name!r} expects {self.schema.arity} values, "
                f"got {len(values)}"
            )
        coerced = tuple(
            coerce(v, attr.dtype, nullable=attr.nullable)
            for v, attr in zip(values, self.schema.attributes)
        )
        old = self._rows[tid]
        if coerced == old:
            return old, coerced
        self._rows[tid] = coerced
        self._version += 1
        self._log.append((self._version, "~", tid, old, coerced))
        self._index_remove(tid, old)
        self._index_add(tid, coerced)
        return old, coerced

    def changes_since(self, version: int) -> list[LogEntry] | None:
        """Ordered log entries after ``version``, or None on a coverage gap.

        Returns ``[]`` when the caller is already current.  Returns None when
        the log no longer reaches back to ``version`` (evicted entries, a
        derived copy with an empty log, or a ``version`` from the future) —
        callers must then fall back to cold re-evaluation.
        """
        if version == self._version:
            return []
        if version > self._version:
            return None
        entries = [entry for entry in self._log if entry[0] > version]
        if not entries or entries[0][0] != version + 1:
            return None
        return entries

    def delta_since(self, version: int) -> RelationDelta | None:
        """Net :class:`RelationDelta` after ``version``, or None on a gap."""
        entries = self.changes_since(version)
        if entries is None:
            return None
        return RelationDelta.from_log(self.schema.name, entries)

    # -- cache maintenance -------------------------------------------------

    def _index_add(self, tid: str, values: Values) -> None:
        for key_indexes, index in self._indexes.items():
            key = tuple(values[i] for i in key_indexes)
            index.setdefault(key, []).append((tid, values))
        for key_indexes, counter in self._distinct_counts.items():
            key = tuple(values[i] for i in key_indexes)
            counter[key] = counter.get(key, 0) + 1

    def _index_remove(self, tid: str, values: Values) -> None:
        for key_indexes, index in self._indexes.items():
            key = tuple(values[i] for i in key_indexes)
            bucket = index.get(key)
            if bucket is None:
                continue
            bucket[:] = [pair for pair in bucket if pair[0] != tid]
            if not bucket:
                del index[key]
        for key_indexes, counter in self._distinct_counts.items():
            key = tuple(values[i] for i in key_indexes)
            remaining = counter.get(key, 0) - 1
            if remaining > 0:
                counter[key] = remaining
            else:
                counter.pop(key, None)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, tid: str) -> bool:
        return tid in self._rows

    def tids(self) -> tuple[str, ...]:
        return tuple(self._rows)

    def row(self, tid: str) -> Values:
        return self._rows[tid]

    def tuples(self) -> Iterator[tuple[str, Values]]:
        """Iterate over ``(tid, values)`` pairs in insertion order."""
        return iter(self._rows.items())

    def value_set(self) -> frozenset[Values]:
        return frozenset(self._rows.values())

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter (invalidates caches)."""
        return self._version

    def hash_index(self, key_indexes: tuple[int, ...]) -> dict[tuple, list[tuple[str, Values]]]:
        """A lazily built, cached hash index grouping tuples by a column tuple.

        Maps each distinct key (the values at ``key_indexes``) to the
        ``(tid, values)`` pairs carrying it, in insertion order.  The index is
        built on first use, reused by subsequent equi-joins on the same
        columns, and maintained incrementally under insert/delete/update.
        """
        index = self._indexes.get(key_indexes)
        if index is None:
            index = {}
            for tid, values in self._rows.items():
                key = tuple(values[i] for i in key_indexes)
                index.setdefault(key, []).append((tid, values))
            self._indexes[key_indexes] = index
        return index

    def distinct_count(self, key_indexes: tuple[int, ...]) -> int:
        """Number of distinct values at ``key_indexes`` (optimizer statistics).

        Served from the cached hash index when one already exists (equi-joins
        build those anyway); otherwise from a cached multiplicity map —
        cheaper than materialising an index nobody will probe — which is
        maintained incrementally across mutations rather than recounted.
        """
        index = self._indexes.get(key_indexes)
        if index is not None:
            return len(index)
        counter = self._distinct_counts.get(key_indexes)
        if counter is None:
            counter = {}
            for values in self._rows.values():
                key = tuple(values[i] for i in key_indexes)
                counter[key] = counter.get(key, 0) + 1
            self._distinct_counts[key_indexes] = counter
        return len(counter)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as attribute-name dictionaries (handy for display and tests)."""
        names = self.schema.attribute_names
        return [dict(zip(names, values)) for values in self._rows.values()]

    # -- derivation --------------------------------------------------------

    def subset(self, tids: Iterable[str]) -> "Relation":
        """A new relation containing only the given tuples (same tids).

        The derived relation inherits the parent's mutation counter (so a
        copy never re-issues version numbers the original already used, which
        would alias version-keyed caches) but starts with an *empty* mutation
        log: ``changes_since`` on a fresh copy reports a gap for any older
        version, forcing one cold evaluation instead of replaying the
        parent's history against different contents.
        """
        sub = Relation(self.schema)
        for tid in tids:
            if tid not in self._rows:
                raise KeyError(f"tuple {tid!r} is not in relation {self.schema.name!r}")
            sub._rows[tid] = self._rows[tid]
        sub._next_id = self._next_id
        sub._version = self._version
        return sub

    def copy(self) -> "Relation":
        return self.subset(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.name!r}, {len(self)} tuples)"


class DatabaseInstance:
    """A database instance: one :class:`Relation` per schema relation."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self.relations: dict[str, Relation] = {
            name: Relation(rel_schema) for name, rel_schema in schema.relations.items()
        }

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_dict(
        schema: "DatabaseSchema | Mapping[str, Any]",
        data: Mapping[str, Iterable[Sequence[Any]]] | None = None,
    ) -> "DatabaseInstance":
        """Build an instance from ``{relation_name: [row, ...]}``.

        Alternatively, called with a single serialized payload (as produced
        by :meth:`to_dict`), reconstructs the instance — schema, constraints
        and tuple identifiers included.
        """
        if data is None:
            if isinstance(schema, Mapping):
                from repro.api.serialization import instance_from_dict

                return instance_from_dict(schema)
            raise TypeError(
                "from_dict needs row data alongside a schema, or a single "
                "serialized payload dict (as produced by to_dict)"
            )
        instance = DatabaseInstance(schema)
        for name, rows in data.items():
            instance.relation(name).insert_all(rows)
        return instance

    def to_dict(self) -> dict[str, Any]:
        """Serialized payload: schema plus ``[tid, values]`` lists per relation.

        The inverse of the one-argument form of :meth:`from_dict`; the JSON
        shape is defined in :mod:`repro.api.serialization`.
        """
        from repro.api.serialization import instance_to_dict

        return instance_to_dict(self)

    def insert(self, relation_name: str, values: Sequence[Any], *, tid: str | None = None) -> str:
        return self.relation(relation_name).insert(values, tid=tid)

    # -- mutation ----------------------------------------------------------

    def insert_row(
        self, relation_name: str, values: Sequence[Any], *, tid: str | None = None
    ) -> Delta:
        """Insert a tuple and return the resulting typed :class:`Delta`."""
        relation = self.relation(relation_name)
        new_tid = relation.insert(values, tid=tid)
        return Delta(
            (
                RelationDelta(
                    relation_name, inserted=((new_tid, relation.row(new_tid)),)
                ),
            )
        )

    def delete(self, tid: str) -> Delta:
        """Delete the tuple named by ``tid`` and return the typed delta."""
        relation_name, _ = split_tid(tid)
        values = self.relation(relation_name).delete(tid)
        return Delta((RelationDelta(relation_name, deleted=((tid, values),)),))

    def update(self, tid: str, values: Sequence[Any]) -> Delta:
        """Update the tuple named by ``tid`` and return the typed delta.

        An update that leaves the values unchanged yields an empty delta.
        """
        relation_name, _ = split_tid(tid)
        old, new = self.relation(relation_name).update(tid, values)
        if old == new:
            return Delta(())
        return Delta(
            (
                RelationDelta(
                    relation_name,
                    inserted=((tid, new),),
                    deleted=((tid, old),),
                ),
            )
        )

    # -- access ------------------------------------------------------------

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self.relations)

    def total_size(self) -> int:
        """Total number of tuples across all relations (the paper's ``|D|``)."""
        return sum(len(rel) for rel in self.relations.values())

    @property
    def data_version(self) -> int:
        """Sum of relation mutation counters; changes whenever data changes."""
        return sum(rel.version for rel in self.relations.values())

    def all_tids(self) -> set[str]:
        return {tid for rel in self.relations.values() for tid in rel.tids()}

    def lookup(self, tid: str) -> Values:
        """Return the values of the tuple with the given identifier."""
        relation_name, _ = split_tid(tid)
        return self.relation(relation_name).row(tid)

    # -- derivation --------------------------------------------------------

    def subinstance(self, tids: Iterable[str]) -> "DatabaseInstance":
        """The subinstance containing exactly the tuples named by ``tids``.

        Tids keep their values and identifiers, so provenance computed on the
        subinstance is comparable with provenance computed on the original.
        Tuples are stored in sorted tid order, so subinstances built from
        unordered tid sets (counterexamples!) render and serialize
        identically across runs and processes.
        """
        by_relation: dict[str, list[str]] = {name: [] for name in self.relations}
        for tid in sorted(tids, key=tid_sort_key):
            relation_name, _ = split_tid(tid)
            if relation_name not in by_relation:
                raise UnknownRelationError(
                    f"tuple {tid!r} refers to unknown relation {relation_name!r}"
                )
            by_relation[relation_name].append(tid)
        sub = DatabaseInstance.__new__(DatabaseInstance)
        sub.schema = self.schema
        sub.relations = {
            name: self.relations[name].subset(tids_for_rel)
            for name, tids_for_rel in by_relation.items()
        }
        return sub

    def copy(self) -> "DatabaseInstance":
        return self.subinstance(self.all_tids())

    # -- integrity ---------------------------------------------------------

    def constraint_violations(self) -> list[str]:
        """Human-readable descriptions of all violated integrity constraints."""
        violations: list[str] = []
        for constraint in self.schema.constraints:
            violations.extend(constraint.violations(self))
        return violations

    def satisfies_constraints(self) -> bool:
        return not self.constraint_violations()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{name}={len(rel)}" for name, rel in self.relations.items())
        return f"DatabaseInstance({parts})"


@dataclass(frozen=True)
class ResultSet:
    """The result of evaluating a query: a set of value tuples with a schema."""

    schema: RelationSchema
    rows: frozenset[Values]

    @staticmethod
    def of(schema: RelationSchema, rows: Iterable[Values]) -> "ResultSet":
        return ResultSet(schema, frozenset(tuple(row) for row in rows))

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: Values) -> bool:
        return tuple(row) in self.rows

    def __iter__(self) -> Iterator[Values]:
        return iter(self.rows)

    def sorted_rows(self) -> list[Values]:
        """Rows in a deterministic order (for display and golden tests)."""
        return sorted(self.rows, key=lambda row: tuple(str(v) for v in row))

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.attribute_names
        return [dict(zip(names, row)) for row in self.sorted_rows()]

    def same_rows(self, other: "ResultSet") -> bool:
        """Value-level equality, ignoring attribute names (union compatibility)."""
        return self.rows == other.rows

    def minus(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self.schema, self.rows - other.rows)

    def symmetric_difference(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self.schema, self.rows ^ other.rows)
