"""Attribute data types and value coercion.

The engine supports a deliberately small set of scalar types — integers,
floats, strings and booleans — which is all the paper's workloads (course
assignments, beers/bars, TPC-H) require.  ``NULL`` is represented by Python
``None`` and only permitted when the attribute is declared nullable.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Scalar data types supported by the relational engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataType.{self.name}"


_PYTHON_TYPES = {
    DataType.INT: (int,),
    DataType.FLOAT: (float, int),
    DataType.STRING: (str,),
    DataType.BOOL: (bool,),
}


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    Booleans are checked before integers because ``bool`` is a subclass of
    ``int`` in Python.
    """
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    raise TypeMismatchError(f"unsupported value type: {type(value).__name__}")


def coerce(value: Any, dtype: DataType, *, nullable: bool = False) -> Any:
    """Coerce ``value`` to ``dtype`` or raise :class:`TypeMismatchError`.

    ``None`` is accepted only when ``nullable`` is true.  Integers are widened
    to floats for FLOAT attributes; no other implicit conversion is performed,
    so a string "42" does *not* silently become an integer.
    """
    if value is None:
        if nullable:
            return None
        raise TypeMismatchError("NULL value for a non-nullable attribute")
    if dtype is DataType.BOOL:
        if isinstance(value, bool):
            return value
        raise TypeMismatchError(f"expected BOOL, got {value!r}")
    if dtype is DataType.INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"expected INT, got {value!r}")
        return value
    if dtype is DataType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"expected FLOAT, got {value!r}")
        return float(value)
    if dtype is DataType.STRING:
        if not isinstance(value, str):
            raise TypeMismatchError(f"expected STRING, got {value!r}")
        return value
    raise TypeMismatchError(f"unknown data type {dtype!r}")  # pragma: no cover


def is_numeric(dtype: DataType) -> bool:
    """Return ``True`` for types usable in arithmetic and aggregates."""
    return dtype in (DataType.INT, DataType.FLOAT)


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """Return the widened numeric type of two numeric operands."""
    if not (is_numeric(left) and is_numeric(right)):
        raise TypeMismatchError(
            f"arithmetic requires numeric operands, got {left.value} and {right.value}"
        )
    if DataType.FLOAT in (left, right):
        return DataType.FLOAT
    return DataType.INT


def comparable(left: DataType, right: DataType) -> bool:
    """Return ``True`` when values of the two types may be compared."""
    if left == right:
        return True
    return is_numeric(left) and is_numeric(right)
