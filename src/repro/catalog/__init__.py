"""Schemas, typed instances with tuple identifiers, and integrity constraints."""

from repro.catalog.constraints import (
    Constraint,
    ForeignKeyConstraint,
    FunctionalDependency,
    KeyConstraint,
    NotNullConstraint,
    close_under_foreign_keys,
)
from repro.catalog.delta import Delta, RelationDelta
from repro.catalog.instance import DatabaseInstance, Relation, ResultSet, split_tid
from repro.catalog.schema import Attribute, DatabaseSchema, RelationSchema
from repro.catalog.types import DataType, coerce, infer_type

__all__ = [
    "Attribute",
    "Constraint",
    "DataType",
    "DatabaseInstance",
    "DatabaseSchema",
    "Delta",
    "ForeignKeyConstraint",
    "FunctionalDependency",
    "KeyConstraint",
    "NotNullConstraint",
    "Relation",
    "RelationDelta",
    "RelationSchema",
    "ResultSet",
    "close_under_foreign_keys",
    "coerce",
    "infer_type",
    "split_tid",
]
