"""Integrity constraints: keys, NOT NULL, functional dependencies, foreign keys.

The paper (§2.1, §4.3) distinguishes constraints that are *closed under
subinstances* (keys, functional dependencies, NOT NULL — any subset of a valid
instance still satisfies them) from referential constraints (foreign keys),
which must be enforced explicitly when building a counterexample.  The
:class:`ForeignKeyConstraint` therefore exposes two extra operations used by
the algorithms:

* :meth:`ForeignKeyConstraint.implications` — per child tuple, the set of
  parent tuples one of which must be kept (the ``child ⇒ parent`` clauses the
  paper adds to the SAT/SMT encoding), and
* :func:`close_under_foreign_keys` — closure of a tid set so that ad-hoc
  subinstances (e.g. from the poly-time algorithms) remain valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.instance import DatabaseInstance
    from repro.catalog.schema import DatabaseSchema


class Constraint:
    """Base class for integrity constraints."""

    #: True when every subinstance of a satisfying instance also satisfies
    #: the constraint (keys, FDs, NOT NULL).  Foreign keys set this to False.
    closed_under_subinstances: bool = True

    def validate_against(self, schema: "DatabaseSchema") -> None:
        """Check that the constraint refers only to existing relations/attributes."""
        raise NotImplementedError

    def violations(self, instance: "DatabaseInstance") -> list[str]:
        """Return human-readable violation messages (empty when satisfied)."""
        raise NotImplementedError

    def holds(self, instance: "DatabaseInstance") -> bool:
        return not self.violations(instance)


def _check_attributes(schema: "DatabaseSchema", relation: str, attributes: Sequence[str]) -> None:
    rel_schema = schema.relation(relation)
    for attr in attributes:
        rel_schema.attribute(attr)
    if not attributes:
        raise SchemaError("constraint must name at least one attribute")


@dataclass(frozen=True)
class KeyConstraint(Constraint):
    """``attributes`` form a key of ``relation`` (no two tuples agree on them)."""

    relation: str
    attributes: tuple[str, ...]

    def validate_against(self, schema: "DatabaseSchema") -> None:
        _check_attributes(schema, self.relation, self.attributes)

    def violations(self, instance: "DatabaseInstance") -> list[str]:
        rel = instance.relation(self.relation)
        indexes = [rel.schema.index_of(a) for a in self.attributes]
        seen: dict[tuple, str] = {}
        messages = []
        for tid, values in rel.tuples():
            key = tuple(values[i] for i in indexes)
            if key in seen:
                messages.append(
                    f"key violation on {self.relation}({', '.join(self.attributes)}): "
                    f"tuples {seen[key]} and {tid} share key {key}"
                )
            else:
                seen[key] = tid
        return messages

    def __str__(self) -> str:
        return f"KEY {self.relation}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class NotNullConstraint(Constraint):
    """``attribute`` of ``relation`` must never be NULL."""

    relation: str
    attribute: str

    def validate_against(self, schema: "DatabaseSchema") -> None:
        _check_attributes(schema, self.relation, (self.attribute,))

    def violations(self, instance: "DatabaseInstance") -> list[str]:
        rel = instance.relation(self.relation)
        index = rel.schema.index_of(self.attribute)
        return [
            f"NOT NULL violation: {self.relation}.{self.attribute} is NULL in tuple {tid}"
            for tid, values in rel.tuples()
            if values[index] is None
        ]

    def __str__(self) -> str:
        return f"NOT NULL {self.relation}.{self.attribute}"


@dataclass(frozen=True)
class FunctionalDependency(Constraint):
    """``lhs -> rhs`` functional dependency within ``relation``."""

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def validate_against(self, schema: "DatabaseSchema") -> None:
        _check_attributes(schema, self.relation, self.lhs)
        _check_attributes(schema, self.relation, self.rhs)

    def violations(self, instance: "DatabaseInstance") -> list[str]:
        rel = instance.relation(self.relation)
        lhs_idx = [rel.schema.index_of(a) for a in self.lhs]
        rhs_idx = [rel.schema.index_of(a) for a in self.rhs]
        seen: dict[tuple, tuple] = {}
        witness: dict[tuple, str] = {}
        messages = []
        for tid, values in rel.tuples():
            left = tuple(values[i] for i in lhs_idx)
            right = tuple(values[i] for i in rhs_idx)
            if left in seen and seen[left] != right:
                messages.append(
                    f"FD violation {self.relation}: {','.join(self.lhs)} -> {','.join(self.rhs)} "
                    f"broken by tuples {witness[left]} and {tid}"
                )
            else:
                seen[left] = right
                witness[left] = tid
        return messages

    def __str__(self) -> str:
        return f"FD {self.relation}: {','.join(self.lhs)} -> {','.join(self.rhs)}"


@dataclass(frozen=True)
class ForeignKeyConstraint(Constraint):
    """``child(child_attributes)`` references ``parent(parent_attributes)``."""

    child: str
    child_attributes: tuple[str, ...]
    parent: str
    parent_attributes: tuple[str, ...]
    closed_under_subinstances = False

    def __post_init__(self) -> None:
        if len(self.child_attributes) != len(self.parent_attributes):
            raise SchemaError("foreign key must reference the same number of attributes")

    def validate_against(self, schema: "DatabaseSchema") -> None:
        _check_attributes(schema, self.child, self.child_attributes)
        _check_attributes(schema, self.parent, self.parent_attributes)

    def violations(self, instance: "DatabaseInstance") -> list[str]:
        messages = []
        for child_tid, parents in self.implications(instance).items():
            if not parents:
                messages.append(
                    f"foreign key violation: {self.child} tuple {child_tid} has no matching "
                    f"{self.parent} tuple on ({', '.join(self.parent_attributes)})"
                )
        return messages

    def implications(self, instance: "DatabaseInstance") -> dict[str, list[str]]:
        """For each child tid, the parent tids that can satisfy the reference.

        A subinstance keeping the child tuple must keep at least one of the
        listed parent tuples; this is exactly the implication clause added to
        the solver encoding in §4.3.  Child tuples whose referencing values
        are all NULL impose no requirement and are omitted.
        """
        child_rel = instance.relation(self.child)
        parent_rel = instance.relation(self.parent)
        child_idx = [child_rel.schema.index_of(a) for a in self.child_attributes]
        parent_idx = [parent_rel.schema.index_of(a) for a in self.parent_attributes]

        parent_index: dict[tuple, list[str]] = {}
        for tid, values in parent_rel.tuples():
            key = tuple(values[i] for i in parent_idx)
            parent_index.setdefault(key, []).append(tid)

        implications: dict[str, list[str]] = {}
        for tid, values in child_rel.tuples():
            key = tuple(values[i] for i in child_idx)
            if all(v is None for v in key):
                continue
            implications[tid] = list(parent_index.get(key, []))
        return implications

    def __str__(self) -> str:
        return (
            f"FK {self.child}({', '.join(self.child_attributes)}) -> "
            f"{self.parent}({', '.join(self.parent_attributes)})"
        )


def close_under_foreign_keys(
    instance: "DatabaseInstance",
    tids: Iterable[str],
    constraints: Sequence[Constraint] | None = None,
) -> set[str]:
    """Return the smallest superset of ``tids`` closed under foreign keys.

    For every kept child tuple whose reference is dangling in the subinstance,
    one satisfying parent tuple is added — preferring parents that are not
    themselves dangling children of another foreign key (an unsupportable
    parent can never appear in a referentially valid witness, so greedily
    picking one would poison the closure when a clean alternative exists),
    breaking ties by insertion order for determinism.  The process repeats
    until a fixpoint because parents may themselves be children of other
    foreign keys.
    """
    if constraints is None:
        constraints = instance.schema.constraints
    foreign_keys = [c for c in constraints if isinstance(c, ForeignKeyConstraint)]
    # Tuples whose own (non-NULL) reference has no matching parent anywhere.
    unsupportable: set[str] = set()
    for fk in foreign_keys:
        for child_tid, parents in fk.implications(instance).items():
            if not parents:
                unsupportable.add(child_tid)
    closed = set(tids)
    changed = True
    while changed:
        changed = False
        for fk in foreign_keys:
            implications = fk.implications(instance)
            for child_tid, parents in implications.items():
                if child_tid not in closed:
                    continue
                if not parents:
                    # The full instance itself is dangling; nothing we can add.
                    continue
                if not any(parent in closed for parent in parents):
                    supportable = [p for p in parents if p not in unsupportable]
                    closed.add(supportable[0] if supportable else parents[0])
                    changed = True
    return closed
