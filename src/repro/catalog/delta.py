"""Typed deltas: what changed in an instance between two versions.

A :class:`RelationDelta` is the *net* effect of a run of mutations on one
relation — the tuples present before but not after (``deleted``) and the
tuples present after but not before (``inserted``), each carried as
``(tid, values)`` pairs so downstream consumers (the differential engine,
provenance bookkeeping) never have to re-derive row contents.  An update
appears as a delete of the old row plus an insert of the new one under the
same tid; a tuple inserted and then deleted inside the window nets out to
nothing.

Deltas are emitted by the mutation API on :class:`~repro.catalog.instance.
DatabaseInstance` and reconstructed from per-relation mutation logs by
``Relation.changes_since`` when a warm session reconciles lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

Values = tuple[Any, ...]

#: One mutation-log entry: ``(version, op, tid, old_values, new_values)``.
#: ``op`` is ``"+"`` (insert: old is None), ``"-"`` (delete: new is None) or
#: ``"~"`` (update: both set).  Exactly one entry is appended per version
#: bump, which is what makes gap detection in ``changes_since`` exact.
LogEntry = tuple[int, str, str, "Values | None", "Values | None"]


@dataclass(frozen=True)
class RelationDelta:
    """Net change to a single relation: deleted pre-rows, inserted post-rows."""

    relation: str
    inserted: tuple[tuple[str, Values], ...] = ()
    deleted: tuple[tuple[str, Values], ...] = ()

    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    @property
    def size(self) -> int:
        return len(self.inserted) + len(self.deleted)

    @staticmethod
    def from_log(relation: str, entries: Iterable[LogEntry]) -> "RelationDelta":
        """Collapse ordered log entries into the net pre→post delta."""
        inserted: dict[str, Values] = {}
        deleted: dict[str, Values] = {}
        for _version, op, tid, old, new in entries:
            if op == "+":
                assert new is not None
                inserted[tid] = new
            elif op == "-":
                if tid in inserted:
                    # Inserted and deleted inside the window: net nothing.
                    del inserted[tid]
                else:
                    assert old is not None
                    deleted[tid] = old
            elif op == "~":
                assert old is not None and new is not None
                if tid not in inserted:
                    deleted.setdefault(tid, old)
                inserted[tid] = new
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown mutation op {op!r}")
        # A tuple updated back to its original values nets out to nothing.
        for tid in [t for t, v in inserted.items() if deleted.get(t) == v]:
            del inserted[tid]
            del deleted[tid]
        return RelationDelta(
            relation,
            inserted=tuple(inserted.items()),
            deleted=tuple(deleted.items()),
        )


@dataclass(frozen=True)
class Delta:
    """Net change to an instance: one :class:`RelationDelta` per touched relation."""

    changes: tuple[RelationDelta, ...] = field(default=())

    def is_empty(self) -> bool:
        return all(change.is_empty() for change in self.changes)

    @property
    def relations(self) -> frozenset[str]:
        """Names of relations with a non-empty net change."""
        return frozenset(c.relation for c in self.changes if not c.is_empty())

    def by_relation(self) -> Mapping[str, RelationDelta]:
        return {c.relation: c for c in self.changes if not c.is_empty()}

    @property
    def size(self) -> int:
        return sum(change.size for change in self.changes)

    @staticmethod
    def merge(deltas: Sequence["Delta"]) -> "Delta":
        """Concatenate per-relation changes from several deltas in order.

        Changes to the same relation are collapsed by replaying them as a
        synthetic log, so the result is again a *net* delta.
        """
        ordered: dict[str, list[LogEntry]] = {}
        version = 0
        for delta in deltas:
            for change in delta.changes:
                log = ordered.setdefault(change.relation, [])
                for tid, values in change.deleted:
                    version += 1
                    log.append((version, "-", tid, values, None))
                for tid, values in change.inserted:
                    version += 1
                    log.append((version, "+", tid, None, values))
        return Delta(
            tuple(
                RelationDelta.from_log(name, entries)
                for name, entries in ordered.items()
            )
        )


__all__ = ["Delta", "RelationDelta", "LogEntry"]
