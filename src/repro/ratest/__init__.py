"""The end-to-end RATest system: facade, auto-grader, and text reports."""

from repro.ratest.grader import AutoGrader, GradeEntry, GradeReport, Question
from repro.ratest.report import (
    RATestReport,
    format_instance,
    format_relation,
    format_result,
    format_table,
)
from repro.ratest.system import RATest, SubmissionOutcome

__all__ = [
    "AutoGrader",
    "GradeEntry",
    "GradeReport",
    "Question",
    "RATest",
    "RATestReport",
    "SubmissionOutcome",
    "format_instance",
    "format_relation",
    "format_result",
    "format_table",
]
