"""The end-to-end RATest system facade (§6).

:class:`RATest` binds a (hidden) test database instance and answers the
question students and developers actually ask: *"is my query equivalent to the
reference query on the test data — and if not, show me a small counterexample
I can read."*  Queries may be passed as relational algebra expression objects
or as text in the RA DSL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.catalog.instance import DatabaseInstance
from repro.core.finder import find_smallest_counterexample
from repro.engine.session import EngineSession
from repro.errors import CounterexampleError
from repro.parser.ra_parser import parse_query
from repro.ra.ast import RAExpression
from repro.ratest.report import RATestReport

QueryLike = RAExpression | str


@dataclass
class SubmissionOutcome:
    """Outcome of one submission: either 'correct' or a counterexample report."""

    correct: bool
    report: RATestReport | None = None
    error: str | None = None

    def render(self) -> str:
        if self.correct:
            return "Your query matches the reference query on the test database."
        if self.report is not None:
            return self.report.render()
        return f"Your query could not be checked: {self.error}"


class RATest:
    """Check test queries against a reference query over a bound instance.

    All evaluation runs through one :class:`EngineSession`: the reference
    query is planned and evaluated once per instance, not once per
    submission, and the counterexample algorithms reuse the same caches.
    """

    def __init__(self, instance: DatabaseInstance) -> None:
        self.instance = instance
        self.session = EngineSession(instance)

    # -- parsing -------------------------------------------------------------

    def parse(self, query: QueryLike) -> RAExpression:
        if isinstance(query, RAExpression):
            return query
        return parse_query(query)

    # -- checking ------------------------------------------------------------

    def queries_agree(
        self, q1: QueryLike, q2: QueryLike, params: Mapping[str, Any] | None = None
    ) -> bool:
        """True when the two queries return the same rows on the bound instance."""
        expr1, expr2 = self.parse(q1), self.parse(q2)
        return self.session.evaluate(expr1, params).same_rows(
            self.session.evaluate(expr2, params)
        )

    def explain(
        self,
        correct_query: QueryLike,
        test_query: QueryLike,
        *,
        algorithm: str = "auto",
        params: Mapping[str, Any] | None = None,
        **options: Any,
    ) -> RATestReport:
        """Smallest-counterexample explanation of why the two queries differ.

        Raises :class:`CounterexampleError` when the queries agree on the
        instance (use :meth:`check` for the full submission workflow).
        """
        expr1, expr2 = self.parse(correct_query), self.parse(test_query)
        result = find_smallest_counterexample(
            expr1,
            expr2,
            self.instance,
            algorithm=algorithm,
            params=params,
            session=self.session,
            **options,
        )
        return RATestReport(
            correct_query_text=str(correct_query),
            test_query_text=str(test_query),
            result=result,
        )

    def check(
        self,
        correct_query: QueryLike,
        test_query: QueryLike,
        *,
        algorithm: str = "auto",
        params: Mapping[str, Any] | None = None,
        **options: Any,
    ) -> SubmissionOutcome:
        """The full submission workflow: agree → correct, differ → explanation."""
        try:
            expr1, expr2 = self.parse(correct_query), self.parse(test_query)
        except Exception as exc:  # parse/schema errors are user errors, not bugs
            return SubmissionOutcome(correct=False, error=str(exc))
        try:
            if self.session.evaluate(expr1, params).same_rows(
                self.session.evaluate(expr2, params)
            ):
                return SubmissionOutcome(correct=True)
            report = self.explain(
                expr1, expr2, algorithm=algorithm, params=params, **options
            )
            return SubmissionOutcome(correct=False, report=report)
        except CounterexampleError as exc:
            return SubmissionOutcome(correct=False, error=str(exc))
        except Exception as exc:
            return SubmissionOutcome(correct=False, error=f"internal error: {exc}")
