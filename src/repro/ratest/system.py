"""The end-to-end RATest system facade (§6).

:class:`RATest` binds a (hidden) test database instance and answers the
question students and developers actually ask: *"is my query equivalent to the
reference query on the test data — and if not, show me a small counterexample
I can read."*  Queries may be passed as relational algebra expression objects
or as text in the RA DSL.

Since the :mod:`repro.api` redesign this facade is a thin adapter: the
grading workflow itself lives in :func:`repro.api.service.grade_queries`,
shared with the batch-first :class:`~repro.api.service.GradingService`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.catalog.instance import DatabaseInstance
from repro.engine.session import EngineSession
from repro.parser.ra_parser import parse_query
from repro.ra.ast import RAExpression
from repro.ratest.report import RATestReport

QueryLike = RAExpression | str


@dataclass
class SubmissionOutcome:
    """Outcome of one submission: either 'correct' or a counterexample report.

    A wrong submission carries a :class:`RATestReport` when a counterexample
    was computed, or nothing when it was graded in screening mode
    (``explain=False``).  Failures carry a human-readable ``error`` plus a
    machine-readable ``error_kind`` (``parse_error``, ``schema_error``,
    ``evaluation_error``, ``no_counterexample``, ``not_applicable``,
    ``solver_error``, ``invalid_request``, ``internal_error``).
    """

    correct: bool
    report: RATestReport | None = None
    error: str | None = None
    error_kind: str | None = None

    def render(self) -> str:
        if self.correct:
            return "Your query matches the reference query on the test database."
        if self.report is not None:
            return self.report.render()
        if self.error is None:
            return "Your query returns a different result from the reference query."
        return f"Your query could not be checked: {self.error}"

    def to_dict(self, *, include_timings: bool = True) -> dict[str, Any]:
        """Versioned JSON-compatible payload (see :mod:`repro.api.serialization`)."""
        from repro.api.serialization import outcome_to_dict

        return outcome_to_dict(self, include_timings=include_timings)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SubmissionOutcome":
        from repro.api.serialization import outcome_from_dict

        return outcome_from_dict(payload)


class RATest:
    """Check test queries against a reference query over a bound instance.

    All evaluation runs through one :class:`EngineSession`: the reference
    query is planned and evaluated once per instance, not once per
    submission, and the counterexample algorithms reuse the same caches.
    """

    def __init__(self, instance: DatabaseInstance, *, backend: str = "python") -> None:
        self.instance = instance
        self.session = EngineSession(instance, backend=backend)

    # -- parsing -------------------------------------------------------------

    def parse(self, query: QueryLike) -> RAExpression:
        if isinstance(query, RAExpression):
            return query
        return parse_query(query)

    # -- checking ------------------------------------------------------------

    def queries_agree(
        self, q1: QueryLike, q2: QueryLike, params: Mapping[str, Any] | None = None
    ) -> bool:
        """True when the two queries return the same rows on the bound instance."""
        expr1, expr2 = self.parse(q1), self.parse(q2)
        return self.session.evaluate(expr1, params).same_rows(
            self.session.evaluate(expr2, params)
        )

    def explain(
        self,
        correct_query: QueryLike,
        test_query: QueryLike,
        *,
        algorithm: str = "auto",
        params: Mapping[str, Any] | None = None,
        **options: Any,
    ) -> RATestReport:
        """Smallest-counterexample explanation of why the two queries differ.

        Raises :class:`CounterexampleError` when the queries agree on the
        instance (use :meth:`check` for the full submission workflow).
        """
        from repro.api.service import explain_queries

        return explain_queries(
            self.session,
            correct_query,
            test_query,
            algorithm=algorithm,
            params=params,
            **options,
        )

    def check(
        self,
        correct_query: QueryLike,
        test_query: QueryLike,
        *,
        algorithm: str = "auto",
        params: Mapping[str, Any] | None = None,
        **options: Any,
    ) -> SubmissionOutcome:
        """The full submission workflow: agree → correct, differ → explanation.

        The submitted query texts are preserved verbatim in the report
        (``correct_query_text``/``test_query_text``), and failures are
        classified through the outcome's ``error_kind``.
        """
        from repro.api.service import grade_queries

        return grade_queries(
            self.session,
            correct_query,
            test_query,
            algorithm=algorithm,
            params=params,
            **options,
        )
