"""Auto-grader: test submissions against hidden instances (§7.1, Table 3).

The course workflow the paper describes is: every submission is evaluated on a
hidden test instance; submissions whose result differs from the reference
query "fail the auto-grader" and the student is shown limited feedback (with
RATest, a small counterexample).  The grader here reproduces that pipeline and
is what the Table 3 experiment ("|D| vs number of wrong queries discovered")
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.catalog.instance import DatabaseInstance
from repro.ra.ast import RAExpression
from repro.ratest.system import RATest


@dataclass(frozen=True)
class Question:
    """A homework question: an identifier, a prompt and the reference query."""

    key: str
    prompt: str
    correct_query: RAExpression
    difficulty: int = 1  # 1 (easy) .. 5 (very hard)


@dataclass
class GradeEntry:
    """Grading outcome of one (student, question) submission."""

    question: str
    passed: bool
    error: str | None = None
    counterexample_size: int | None = None


@dataclass
class GradeReport:
    """Grading outcomes for one submission set."""

    entries: list[GradeEntry] = field(default_factory=list)

    @property
    def num_passed(self) -> int:
        return sum(1 for entry in self.entries if entry.passed)

    @property
    def num_failed(self) -> int:
        return len(self.entries) - self.num_passed


class AutoGrader:
    """Grade query submissions against reference queries on a hidden instance."""

    def __init__(self, instance: DatabaseInstance, questions: Mapping[str, Question]) -> None:
        self.instance = instance
        self.questions = dict(questions)
        self._ratest = RATest(instance)
        self._reference_results = {
            key: self._ratest.session.evaluate(question.correct_query)
            for key, question in self.questions.items()
        }

    def grade_one(
        self,
        question_key: str,
        submission: RAExpression,
        *,
        explain: bool = False,
    ) -> GradeEntry:
        """Grade a single submission; optionally attach a counterexample size."""
        question = self.questions[question_key]
        try:
            submitted = self._ratest.session.evaluate(submission)
        except Exception as exc:
            return GradeEntry(question=question_key, passed=False, error=str(exc))
        if submitted.same_rows(self._reference_results[question_key]):
            return GradeEntry(question=question_key, passed=True)
        entry = GradeEntry(question=question_key, passed=False)
        if explain:
            outcome = self._ratest.check(question.correct_query, submission)
            if outcome.report is not None:
                entry.counterexample_size = outcome.report.counterexample_size
        return entry

    def grade(self, submissions: Mapping[str, RAExpression], *, explain: bool = False) -> GradeReport:
        """Grade a mapping of question key to submitted query."""
        report = GradeReport()
        for question_key, submission in submissions.items():
            if question_key not in self.questions:
                report.entries.append(
                    GradeEntry(question=question_key, passed=False, error="unknown question")
                )
                continue
            report.entries.append(self.grade_one(question_key, submission, explain=explain))
        return report

    def count_discovered_wrong_queries(self, wrong_queries: Mapping[str, list[RAExpression]]) -> int:
        """How many of the supplied wrong queries the hidden instance catches.

        This is the measurement reported in Table 3: a wrong query is
        *discovered* when its result differs from the reference query's result
        on the test instance (a small instance may miss corner cases).
        """
        discovered = 0
        for question_key, queries in wrong_queries.items():
            reference = self._reference_results[question_key]
            for query in queries:
                try:
                    if not self._ratest.session.evaluate(query).same_rows(reference):
                        discovered += 1
                except Exception:
                    discovered += 1  # queries that crash are certainly wrong
        return discovered
