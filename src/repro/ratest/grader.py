"""Auto-grader: test submissions against hidden instances (§7.1, Table 3).

The course workflow the paper describes is: every submission is evaluated on a
hidden test instance; submissions whose result differs from the reference
query "fail the auto-grader" and the student is shown limited feedback (with
RATest, a small counterexample).  The grader here reproduces that pipeline and
is what the Table 3 experiment ("|D| vs number of wrong queries discovered")
runs.

Since the :mod:`repro.api` redesign the grader is a thin adapter over a
:class:`~repro.api.service.GradingService` bound to the hidden instance:
grading goes through ``submit``/``submit_batch`` (so it shares the warm
session, error classification and JSON-serializable outcomes), with
``explain=False`` screening for the pass/fail decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.catalog.instance import DatabaseInstance
from repro.ra.ast import RAExpression

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports ratest)
    from repro.api.service import SubmissionRequest


@dataclass(frozen=True)
class Question:
    """A homework question: an identifier, a prompt and the reference query."""

    key: str
    prompt: str
    correct_query: RAExpression
    difficulty: int = 1  # 1 (easy) .. 5 (very hard)


@dataclass
class GradeEntry:
    """Grading outcome of one (student, question) submission."""

    question: str
    passed: bool
    error: str | None = None
    counterexample_size: int | None = None


@dataclass
class GradeReport:
    """Grading outcomes for one submission set."""

    entries: list[GradeEntry] = field(default_factory=list)

    @property
    def num_passed(self) -> int:
        return sum(1 for entry in self.entries if entry.passed)

    @property
    def num_failed(self) -> int:
        return len(self.entries) - self.num_passed


class AutoGrader:
    """Grade query submissions against reference queries on a hidden instance."""

    def __init__(self, instance: DatabaseInstance, questions: Mapping[str, Question]) -> None:
        from repro.api.service import GradingService

        self.instance = instance
        self.questions = dict(questions)
        self.service = GradingService.for_instance(instance, name="hidden")
        # Resolve each reference expression once (Question.correct_query may
        # re-parse per access) and warm the shared session with it.
        self._correct_queries = {
            key: question.correct_query for key, question in self.questions.items()
        }
        session = self.service.session_for()
        for expression in self._correct_queries.values():
            session.evaluate(expression)

    def _request(
        self, question_key: str, submission: RAExpression, *, explain: bool
    ) -> "SubmissionRequest":
        from repro.api.service import SubmissionRequest

        return SubmissionRequest(
            correct_query=self._correct_queries[question_key],
            test_query=submission,
            id=question_key,
            explain=explain,
        )

    @staticmethod
    def _entry(question_key: str, graded) -> GradeEntry:
        outcome = graded.outcome
        entry = GradeEntry(
            question=question_key, passed=outcome.correct, error=outcome.error
        )
        if outcome.report is not None:
            entry.counterexample_size = outcome.report.counterexample_size
        return entry

    def grade_one(
        self,
        question_key: str,
        submission: RAExpression,
        *,
        explain: bool = False,
    ) -> GradeEntry:
        """Grade a single submission; optionally attach a counterexample size."""
        graded = self.service.submit(self._request(question_key, submission, explain=explain))
        return self._entry(question_key, graded)

    def grade(
        self,
        submissions: Mapping[str, RAExpression],
        *,
        explain: bool = False,
        workers: int = 1,
    ) -> GradeReport:
        """Grade a mapping of question key to submitted query.

        ``workers > 1`` grades the batch over the service's thread pool.
        """
        report = GradeReport()
        known = [
            (key, submission)
            for key, submission in submissions.items()
            if key in self.questions
        ]
        graded = self.service.submit_batch(
            [self._request(key, submission, explain=explain) for key, submission in known],
            workers=workers,
        )
        entries = {key: self._entry(key, result) for (key, _), result in zip(known, graded)}
        for question_key in submissions:
            if question_key in entries:
                report.entries.append(entries[question_key])
            else:
                report.entries.append(
                    GradeEntry(question=question_key, passed=False, error="unknown question")
                )
        return report

    def count_discovered_wrong_queries(
        self, wrong_queries: Mapping[str, list[RAExpression]], *, workers: int = 1
    ) -> int:
        """How many of the supplied wrong queries the hidden instance catches.

        This is the measurement reported in Table 3: a wrong query is
        *discovered* when its result differs from the reference query's result
        on the test instance (a small instance may miss corner cases).
        Queries that crash are certainly wrong, and errors make the outcome
        incorrect, so a simple "not correct" count matches the old semantics.
        """
        requests = [
            self._request(question_key, query, explain=False)
            for question_key, queries in wrong_queries.items()
            for query in queries
        ]
        graded = self.service.submit_batch(requests, workers=workers)
        return sum(1 for result in graded if not result.outcome.correct)
