"""Human-readable reports: the stand-in for RATest's web UI.

The original system shows the student a small counterexample instance together
with the results of both queries over it.  :class:`RATestReport` renders the
same information as plain text tables so it can be printed from scripts,
examples and the auto-grader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.catalog.instance import DatabaseInstance, Relation, ResultSet
from repro.core.results import CounterexampleResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an ASCII table with column-width alignment."""
    header_cells = [str(h) for h in headers]
    body = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [line, "| " + " | ".join(h.ljust(w) for h, w in zip(header_cells, widths)) + " |", line]
    for row in body:
        out.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    out.append(line)
    if not body:
        out.insert(len(out) - 1, "| " + "(empty)".ljust(sum(widths) + 3 * (len(widths) - 1)) + " |")
    return "\n".join(out)


def format_relation(relation: Relation) -> str:
    headers = ("tuple id",) + relation.schema.attribute_names
    rows = [(tid,) + values for tid, values in relation.tuples()]
    return format_table(headers, rows)


def format_result(result: ResultSet) -> str:
    return format_table(result.schema.attribute_names, result.sorted_rows())


def format_instance(instance: DatabaseInstance, *, skip_empty: bool = True) -> str:
    sections = []
    for name, relation in instance.relations.items():
        if skip_empty and len(relation) == 0:
            continue
        sections.append(f"{name}:\n{format_relation(relation)}")
    return "\n\n".join(sections) if sections else "(empty instance)"


@dataclass
class RATestReport:
    """Everything RATest shows a user whose query is wrong."""

    correct_query_text: str
    test_query_text: str
    result: CounterexampleResult

    @property
    def counterexample_size(self) -> int:
        return self.result.size

    def render(self) -> str:
        """The full text report: counterexample instance plus both results."""
        parts = [
            "Your query returns a different result from the reference query.",
            f"Here is a small counterexample with {self.result.size} tuple(s) "
            f"(found by the {self.result.algorithm} algorithm):",
            "",
            format_instance(self.result.counterexample),
            "",
            "Reference query result on this counterexample:",
            format_result(self.result.q1_rows),
            "",
            "Your query's result on this counterexample:",
            format_result(self.result.q2_rows),
        ]
        if self.result.parameter_values:
            rendered = ", ".join(
                f"@{name} = {value}" for name, value in sorted(self.result.parameter_values.items())
            )
            parts.append("")
            parts.append(f"Parameter setting used for this counterexample: {rendered}")
        if self.result.distinguishing_row is not None:
            parts.append("")
            parts.append(
                "The row that distinguishes the two queries is: "
                f"{self.result.distinguishing_row}"
            )
        return "\n".join(parts)

    def summary(self) -> str:
        """One-line summary used in logs and the grader."""
        return (
            f"counterexample of {self.result.size} tuples "
            f"({self.result.algorithm}, {'optimal' if self.result.optimal else 'best-effort'}, "
            f"{self.result.total_time():.3f}s)"
        )

    def to_dict(self, *, include_timings: bool = True) -> dict:
        """JSON-compatible payload (see :mod:`repro.api.serialization`)."""
        from repro.api.serialization import report_to_dict

        return report_to_dict(self, include_timings=include_timings)

    @staticmethod
    def from_dict(payload: dict) -> "RATestReport":
        from repro.api.serialization import report_from_dict

        return report_from_dict(payload)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
