"""A ``selectors``-based event loop and non-blocking HTTP/1.1 frontend.

PR 4's daemon served HTTP with ``ThreadingHTTPServer``: one OS thread per
connection, blocking reads and writes.  Under the closed-loop load benchmark
that design *lost* throughput going from 16 to 64 keep-alive clients — with
every connection owning a thread, the scheduler (not grading) becomes the
bottleneck, and each idle keep-alive client still costs a blocked thread.

:class:`EventLoopHTTPServer` replaces it with the classic single-reactor
shape, stdlib only:

* one event-loop thread owns every socket: it accepts, reads, parses and
  writes, all non-blocking, multiplexed through :mod:`selectors`;
* each connection is a small state machine (:class:`_Connection`): bytes
  accumulate in ``inbuf`` until one full HTTP/1.1 request (request line,
  headers, ``Content-Length`` body) is available, responses accumulate in
  ``outbuf`` until the kernel accepts them;
* complete requests are dispatched to a *bounded* handler pool (application
  handlers block on worker-pool futures and the result store, so they cannot
  run on the loop thread); finished responses travel back over a self-pipe
  (``socketpair``) that wakes the loop from ``select``.

Hundreds of keep-alive connections therefore cost a few file descriptors and
buffers each — not a thread each — and the number of runnable threads stays
``handler_threads`` no matter how many clients connect.

The HTTP surface is intentionally the slice the grading protocol uses:
``GET``/``POST``, ``Content-Length`` bodies (no chunked requests), keep-alive
with in-order responses per connection (at most one request per connection
is in flight at a time, so pipelined requests queue in ``inbuf`` and are
answered strictly in order).
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
from collections import deque
from http.client import responses as _REASON_PHRASES
from time import monotonic
from typing import Callable, Mapping

#: Refuse pathological requests instead of buffering them forever.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024  # grade_batch bodies can be large
_RECV_SIZE = 64 * 1024


class HTTPRequest:
    """One parsed request: method, target, lower-cased headers, raw body."""

    __slots__ = ("method", "target", "headers", "body")

    def __init__(self, method: str, target: str, headers: Mapping[str, str], body: bytes) -> None:
        self.method = method
        self.target = target
        self.headers = headers
        self.body = body

    @property
    def path(self) -> str:
        return self.target.split("?", 1)[0]

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)


class HTTPResponse:
    """What a dispatch callable returns; rendered to bytes by the loop."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(
        self,
        status: int,
        body: bytes = b"",
        *,
        content_type: str = "application/json",
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers


Dispatch = Callable[[HTTPRequest], HTTPResponse]


class _BadRequest(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Connection:
    __slots__ = ("sock", "inbuf", "outbuf", "busy", "close_after_flush", "defunct")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = b""
        self.outbuf = b""
        #: One request is being handled; responses stay in order because the
        #: next request is not parsed until this one's response is queued.
        self.busy = False
        self.close_after_flush = False
        self.defunct = False


class EventLoopHTTPServer:
    """Non-blocking HTTP frontend: one reactor thread + a bounded handler pool."""

    def __init__(
        self,
        address: tuple[str, int],
        dispatch: Dispatch,
        *,
        handler_threads: int = 32,
        backlog: int = 512,
        server_name: str = "repro-serve",
    ) -> None:
        # Import here keeps this module dependency-free for the loop itself.
        from concurrent.futures import ThreadPoolExecutor

        self._dispatch = dispatch
        self._server_name = server_name
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(address)
        self._listener.listen(backlog)
        self._listener.setblocking(False)
        self.server_address: tuple[str, int] = self._listener.getsockname()[:2]
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "listener")
        self._selector.register(self._waker_r, selectors.EVENT_READ, "waker")
        self._executor = ThreadPoolExecutor(
            max_workers=handler_threads, thread_name_prefix="repro-http"
        )
        self._completions: deque[tuple[_Connection, bytes, bool]] = deque()
        self._connections: dict[socket.socket, _Connection] = {}
        self._stop = threading.Event()
        self._abort = False
        self._done = threading.Event()
        self._started = threading.Event()
        self._teardown_lock = threading.Lock()
        self._torn_down = False
        self.drain_timeout = 10.0

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the reactor until :meth:`shutdown` (graceful) or :meth:`close_now`."""
        if self._torn_down:
            self._done.set()
            return
        self._started.set()
        accepting = True
        drain_deadline: float | None = None
        try:
            while True:
                if self._abort:
                    break
                if self._stop.is_set():
                    if accepting:
                        # Stop taking new connections; existing ones drain.
                        self._selector.unregister(self._listener)
                        accepting = False
                        drain_deadline = monotonic() + self.drain_timeout
                    busy = any(
                        conn.busy or conn.outbuf for conn in self._connections.values()
                    )
                    if not busy or monotonic() >= drain_deadline:
                        break
                for key, _mask in self._selector.select(timeout=0.2):
                    if key.data == "listener":
                        self._accept()
                    elif key.data == "waker":
                        self._drain_waker()
                    else:
                        conn = key.data
                        if _mask & selectors.EVENT_READ:
                            self._on_read(conn)
                        if _mask & selectors.EVENT_WRITE and not conn.defunct:
                            self._on_write(conn)
                self._drain_completions()
        finally:
            self._teardown()
            self._done.set()

    def shutdown(self) -> None:
        """Graceful stop: no new connections, in-flight responses flushed."""
        self._stop.set()
        self._wake()
        if self._started.is_set():
            self._done.wait(timeout=self.drain_timeout + 5.0)
        else:
            self._teardown()

    def close_now(self) -> None:
        """Abrupt stop (≈ SIGKILL for drills): drop everything immediately."""
        self._abort = True
        self._stop.set()
        self._wake()
        if self._started.is_set():
            self._done.wait(timeout=2.0)
        else:
            self._teardown()

    def server_close(self) -> None:
        """Idempotent final cleanup (mirrors the socketserver API)."""
        self._teardown()

    def _teardown(self) -> None:
        with self._teardown_lock:
            if self._torn_down:
                return
            self._torn_down = True
        for conn in list(self._connections.values()):
            conn.defunct = True
            try:
                conn.sock.close()
            except OSError:
                pass
        self._connections.clear()
        for sock in (self._listener, self._waker_r, self._waker_w):
            try:
                sock.close()
            except OSError:
                pass
        try:
            self._selector.close()
        except (OSError, RuntimeError):
            pass
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- reactor steps -------------------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            # Small request/response pairs are latency-bound: without
            # TCP_NODELAY, Nagle + delayed ACK costs ~40ms per round trip.
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock)
            self._connections[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _on_read(self, conn: _Connection) -> None:
        if conn.defunct:
            return
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(conn)
            return
        if not data:  # peer closed; any in-flight response is undeliverable
            self._drop(conn)
            return
        conn.inbuf += data
        self._maybe_dispatch(conn)

    def _maybe_dispatch(self, conn: _Connection) -> None:
        if conn.busy or conn.close_after_flush or conn.defunct:
            return
        if self._stop.is_set():
            return  # draining: finish in-flight work, take nothing new
        header_end = conn.inbuf.find(b"\r\n\r\n")
        if header_end < 0:
            if len(conn.inbuf) > MAX_HEADER_BYTES:
                self._queue_error(conn, 431, "request headers too large")
            return
        try:
            request, consumed = self._parse(conn.inbuf, header_end)
        except _BadRequest as exc:
            self._queue_error(conn, exc.status, str(exc))
            return
        if request is None:
            return  # body not complete yet
        conn.inbuf = conn.inbuf[consumed:]
        keep_alive = request.header("connection", "").lower() != "close"
        conn.busy = True
        self._executor.submit(self._run_handler, conn, request, keep_alive)

    @staticmethod
    def _parse(inbuf: bytes, header_end: int) -> tuple[HTTPRequest | None, int]:
        head = inbuf[:header_end].decode("latin-1")
        lines = head.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            content_length = int(raw_length)
        except ValueError:
            raise _BadRequest(400, f"invalid Content-Length: {raw_length!r}") from None
        if content_length < 0 or content_length > MAX_BODY_BYTES:
            raise _BadRequest(413, f"request body of {content_length} bytes refused")
        total = header_end + 4 + content_length
        if len(inbuf) < total:
            return None, 0
        body = inbuf[header_end + 4 : total]
        return HTTPRequest(method, target, headers, body), total

    def _run_handler(self, conn: _Connection, request: HTTPRequest, keep_alive: bool) -> None:
        """Executor side: run the application dispatch, ship the response back."""
        try:
            response = self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 — the frontend must answer
            body = json.dumps(
                {"error": f"internal error: {exc}", "error_kind": "internal_error"}
            ).encode("utf-8")
            response = HTTPResponse(500, body)
        raw = self._render(response, keep_alive)
        self._completions.append((conn, raw, not keep_alive))
        self._wake()

    def _render(self, response: HTTPResponse, keep_alive: bool) -> bytes:
        reason = _REASON_PHRASES.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Server: {self._server_name}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in response.headers)
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + response.body

    def _wake(self) -> None:
        try:
            self._waker_w.send(b"x")
        except OSError:
            pass  # torn down; the completion will be discarded

    def _drain_waker(self) -> None:
        try:
            while self._waker_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _drain_completions(self) -> None:
        while self._completions:
            conn, raw, close = self._completions.popleft()
            if conn.defunct:
                continue
            conn.outbuf += raw
            conn.busy = False
            conn.close_after_flush = conn.close_after_flush or close
            self._on_write(conn)  # opportunistic: usually flushes in one call

    def _on_write(self, conn: _Connection) -> None:
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop(conn)
                return
            conn.outbuf = conn.outbuf[sent:]
        if conn.outbuf:
            self._set_interest(conn, selectors.EVENT_READ | selectors.EVENT_WRITE)
            return
        if conn.close_after_flush:
            self._drop(conn)
            return
        self._set_interest(conn, selectors.EVENT_READ)
        self._maybe_dispatch(conn)  # pipelined request already buffered?

    def _queue_error(self, conn: _Connection, status: int, message: str) -> None:
        body = json.dumps({"error": message, "error_kind": "invalid_request"}).encode("utf-8")
        conn.outbuf += self._render(HTTPResponse(status, body), keep_alive=False)
        conn.close_after_flush = True
        self._on_write(conn)

    def _set_interest(self, conn: _Connection, events: int) -> None:
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass

    def _drop(self, conn: _Connection) -> None:
        conn.defunct = True
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        self._connections.pop(conn.sock, None)
        try:
            conn.sock.close()
        except OSError:
            pass


__all__ = [
    "EventLoopHTTPServer",
    "HTTPRequest",
    "HTTPResponse",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
]
