"""Request forwarding and the cross-shard store tier.

A daemon that receives a grading request it does not own proxies it to the
owner over the existing :class:`~repro.server.client.GradingClient` wire
protocol — the owner's warm engine sessions, persistent store slice and
in-flight coalescing map then do their job exactly as for a direct request.
Forwarded requests carry the ``X-Repro-Forwarded`` header so the owner never
re-forwards (no routing loops, even while two peers briefly disagree about
ring membership).

Cluster-wide single-flight falls out of composition rather than a new
mechanism: identical concurrent requests at one non-owner coalesce in that
daemon's in-flight map *before* forwarding (one wire call), and identical
requests arriving via different peers all land on the owner, whose in-flight
map coalesces them onto one grade.  Net effect: an identical submission in
flight anywhere in the cluster grades exactly once.

Failure handling is correctness-first: a forward that cannot reach the owner
reports the failure to membership (accelerating suspect/down detection) and
returns ``None``, telling the caller to grade *locally* — locality is lost,
the grade is not.  Before grading locally and cold, the **store tier** probes
the key's static preference peers for an already-persisted grade
(``POST /v1/store/lookup``): one loopback round trip against re-running a
counterexample search is an easy trade, and it heals both outage directions
(a fallback grader finds the owner's old rows; a recovered owner finds rows
graded by its successors while it was down).
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.cluster.membership import ClusterMembership
from repro.errors import ReproError
from repro.server.client import GradingClient, ServerError
from repro.server.store import StoreKey

FORWARDED_HEADER = "X-Repro-Forwarded"


class ForwardError(ReproError):
    """The owner could not be reached (or failed mid-request); grade locally."""

    def __init__(self, message: str, *, peer: str) -> None:
        super().__init__(message)
        self.peer = peer


class Forwarder:
    """Proxies grades and store lookups to peers over pooled keep-alive clients."""

    def __init__(
        self,
        membership: ClusterMembership,
        *,
        timeout: float = 300.0,
        retries: int = 2,
        store_probe_timeout: float = 2.0,
        store_probes: int = 2,
    ) -> None:
        self.membership = membership
        self.timeout = timeout
        self.retries = retries
        self.store_probe_timeout = store_probe_timeout
        self.store_probes = store_probes
        # GradingClient instances are not thread-safe; keep a checkout pool
        # so concurrent handler threads never share a socket.  Pool entries
        # are keyed by (url, timeout, retries) — grade forwards and store
        # probes use very different timeouts and must never swap clients.
        self._pool: dict[tuple[str, float, int], list[GradingClient]] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- client pool ---------------------------------------------------------

    def _checkout(self, url: str, *, timeout: float, retries: int) -> GradingClient:
        pool_key = (url, timeout, retries)
        with self._lock:
            clients = self._pool.get(pool_key)
            if clients:
                return clients.pop()
        return GradingClient(url, timeout=timeout, retries=retries)

    def _checkin(self, url: str, client: GradingClient) -> None:
        pool_key = (url, client.timeout, client.retries)
        with self._lock:
            if not self._closed:
                self._pool.setdefault(pool_key, []).append(client)
                return
        client.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            clients = [c for pool in self._pool.values() for c in pool]
            self._pool.clear()
        for client in clients:
            client.close()

    # -- forwarding ----------------------------------------------------------

    def forward_grade(
        self, peer: str, payload: Mapping[str, Any], *, trace: bool = False
    ) -> tuple[int, dict[str, Any]]:
        """Grade ``payload`` on ``peer``; returns ``(status, envelope)``.

        A 429 from the owner (its queue is full) is a *protocol* answer and is
        propagated — the end client owns the retry/backoff decision.  Anything
        transport-shaped (unreachable, reset, 5xx) raises :class:`ForwardError`
        after feeding the failure into membership, so the caller falls back to
        grading locally.

        ``trace=True`` requests the owner's span block in the envelope; the
        ambient trace context travels in the ``traceparent`` header the client
        injects automatically, so the owner's spans join the caller's trace.
        """
        url = self.membership.url(peer)
        client = self._checkout(url, timeout=self.timeout, retries=self.retries)
        try:
            envelope = client.grade(payload, headers={FORWARDED_HEADER: "1"}, trace=trace)
        except ServerError as exc:
            self._checkin(url, client)
            if exc.status == 429:
                body = exc.payload if isinstance(exc.payload, dict) else {
                    "error": str(exc),
                    "error_kind": "overloaded",
                }
                return 429, body
            self.membership.report_failure(peer)
            raise ForwardError(
                f"forward to {peer} ({url}) failed: {exc}", peer=peer
            ) from exc
        except BaseException:
            # Unknown failure mid-request: the connection state is suspect,
            # drop the client rather than pooling it.
            client.close()
            self.membership.report_failure(peer)
            raise ForwardError(f"forward to {peer} ({url}) failed", peer=peer)
        self._checkin(url, client)
        self.membership.report_alive(peer)
        return 200, envelope

    # -- the store tier ------------------------------------------------------

    def remote_store_lookup(self, key: StoreKey) -> dict[str, Any] | None:
        """Ask the key's static preference peers for an already-stored grade."""
        candidates = self.membership.store_probe_candidates(
            key.dataset, key.seed, self.store_probes
        )
        payload = key.to_dict()
        for peer in candidates:
            url = self.membership.url(peer)
            client = self._checkout(
                url, timeout=self.store_probe_timeout, retries=0
            )
            try:
                reply = client.store_lookup(payload)
            except ServerError:
                self._checkin(url, client)
                self.membership.report_failure(peer)
                continue
            except BaseException:
                client.close()
                self.membership.report_failure(peer)
                continue
            self._checkin(url, client)
            self.membership.report_alive(peer)
            if isinstance(reply, Mapping) and reply.get("found"):
                envelope = reply.get("envelope")
                if isinstance(envelope, dict):
                    return envelope
        return None


__all__ = ["FORWARDED_HEADER", "ForwardError", "Forwarder"]
