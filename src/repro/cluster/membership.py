"""Peer liveness for the grading cluster: heartbeats, states, the live ring.

This is the :mod:`repro.server.workers` watchdog pattern promoted to cluster
level.  Inside one daemon, a watchdog thread polls worker processes and
respawns the dead; across daemons, :class:`ClusterMembership` polls peers
over HTTP (``GET /v1/cluster/health``) and routes around the dead.

Membership is deliberately static-plus-liveness, not gossip: the peer *set*
is configuration (every daemon is booted with the same ``name=url`` list),
and only each peer's *state* is dynamic:

``alive``  → probes answer; the peer owns its ring slice.
``suspect``→ ``suspect_after`` consecutive probe (or forward) failures; the
             peer keeps its slice — requests still try it first — but one
             more failure cascade will take it out.
``down``   → ``down_after`` consecutive failures; the peer is removed from
             the *live ring*, so every key it owned immediately regains a
             live owner (its ring successor) without moving anybody else's
             keys.  A single successful probe brings it straight back.

Two rings are maintained: the **static ring** over the configured peer set
(stable placement, used by the store tier to know where a key's rows
*should* live) and the **live ring** over non-down peers (used for request
routing).  Forward failures feed back into the same failure counters as
heartbeat probes, so a dead peer is usually suspected by the first request
that trips over it, well before the next heartbeat tick.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from time import monotonic
from typing import Any, Callable, Mapping

from repro.cluster.ring import HashRing, placement_key
from repro.errors import ReproError

log = logging.getLogger(__name__)

ALIVE = "alive"
SUSPECT = "suspect"
DOWN = "down"

#: Numeric codes for the ``repro_cluster_peer_state`` gauge.
STATE_CODES = {ALIVE: 0, SUSPECT: 1, DOWN: 2}


def parse_peer_specs(specs: tuple[str, ...] | list[str]) -> dict[str, str]:
    """Parse ``name=http://host:port`` peer specs into a name→URL map."""
    peers: dict[str, str] = {}
    for spec in specs:
        name, sep, url = spec.partition("=")
        name = name.strip()
        url = url.strip()
        if not sep or not name or not url:
            raise ReproError(
                f"peer spec {spec!r} must look like 'shard-0=http://127.0.0.1:9000'"
            )
        if name in peers:
            raise ReproError(f"duplicate peer name {name!r}")
        peers[name] = url
    return peers


@dataclass
class _Peer:
    name: str
    url: str
    state: str = ALIVE
    failures: int = 0
    last_ok: float | None = None


class ClusterMembership:
    """Tracks peer states and exposes the static and live hash rings."""

    def __init__(
        self,
        self_name: str,
        peers: Mapping[str, str],
        *,
        virtual_nodes: int = 64,
        heartbeat_interval: float = 0.5,
        suspect_after: int = 1,
        down_after: int = 3,
        probe_timeout: float = 1.0,
        probe: Callable[[str], Any] | None = None,
    ) -> None:
        if self_name not in peers:
            raise ReproError(
                f"this daemon's name {self_name!r} is not in the peer map "
                f"{sorted(peers)!r}"
            )
        if suspect_after < 1 or down_after < suspect_after:
            raise ReproError("need 1 <= suspect_after <= down_after")
        self.self_name = self_name
        self.virtual_nodes = virtual_nodes
        self.heartbeat_interval = heartbeat_interval
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.probe_timeout = probe_timeout
        self._probe = probe if probe is not None else self._http_probe
        self._lock = threading.Lock()
        self._peers = {name: _Peer(name, url) for name, url in peers.items()}
        self._peers[self_name].last_ok = monotonic()
        self.static_ring = HashRing(peers, virtual_nodes=virtual_nodes)
        self._live_ring = HashRing(peers, virtual_nodes=virtual_nodes)
        self._probe_clients: dict[str, Any] = {}  # heartbeat thread only
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ClusterMembership":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._heartbeat_loop, name="repro-heartbeat", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.probe_timeout + 2.0)
        for client in self._probe_clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 — best-effort cleanup
                pass

    def _heartbeat_loop(self) -> None:
        # Same contract as the worker watchdog: the sweep must survive any
        # single failure, or liveness detection silently stops.
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001
                log.exception("cluster heartbeat sweep failed; continuing")

    def _http_probe(self, url: str) -> None:
        from repro.server.client import GradingClient

        client = self._probe_clients.get(url)
        if client is None:
            client = self._probe_clients[url] = GradingClient(
                url, timeout=self.probe_timeout, retries=0
            )
        client.cluster_health()  # raises ServerError when unreachable

    def probe_once(self) -> None:
        """One heartbeat sweep over every remote peer."""
        for name, url in self.peer_urls().items():
            if name == self.self_name or self._stop.is_set():
                continue
            try:
                self._probe(url)
            except Exception:  # noqa: BLE001 — any probe failure counts
                self.report_failure(name)
            else:
                self.report_alive(name)

    # -- state transitions ---------------------------------------------------

    def report_alive(self, name: str) -> None:
        with self._lock:
            peer = self._peers.get(name)
            if peer is None:
                return
            was_down = peer.state == DOWN
            peer.state = ALIVE
            peer.failures = 0
            peer.last_ok = monotonic()
            if was_down:
                self._live_ring.add(name)
                log.info("cluster peer %s recovered", name)

    def report_failure(self, name: str) -> None:
        """A probe or forward to ``name`` failed; advance its state machine."""
        if name == self.self_name:
            return
        with self._lock:
            peer = self._peers.get(name)
            if peer is None:
                return
            peer.failures += 1
            if peer.failures >= self.down_after:
                if peer.state != DOWN:
                    peer.state = DOWN
                    self._live_ring.remove(name)
                    log.warning(
                        "cluster peer %s marked down after %d failures; "
                        "its keys fail over to ring successors",
                        name,
                        peer.failures,
                    )
            elif peer.failures >= self.suspect_after:
                peer.state = SUSPECT

    # -- views ---------------------------------------------------------------

    def peer_urls(self) -> dict[str, str]:
        with self._lock:
            return {name: peer.url for name, peer in self._peers.items()}

    def url(self, name: str) -> str:
        with self._lock:
            peer = self._peers.get(name)
        if peer is None:
            raise ReproError(f"unknown cluster peer {name!r}")
        return peer.url

    def states(self) -> dict[str, str]:
        with self._lock:
            return {name: peer.state for name, peer in self._peers.items()}

    def is_self(self, name: str) -> bool:
        return name == self.self_name

    def is_down(self, name: str) -> bool:
        with self._lock:
            peer = self._peers.get(name)
            return peer is None or peer.state == DOWN

    def live_peers(self) -> list[str]:
        with self._lock:
            return sorted(self._live_ring.peers)

    # -- placement -----------------------------------------------------------

    def owner(self, dataset: str, seed: int) -> str:
        """The live-ring owner of a key (always defined: self never leaves)."""
        with self._lock:
            owner = self._live_ring.owner_for(dataset, seed)
        return owner if owner is not None else self.self_name

    def static_owner(self, dataset: str, seed: int) -> str:
        owner = self.static_ring.owner_for(dataset, seed)
        assert owner is not None  # the static ring is never empty
        return owner

    def store_probe_candidates(self, dataset: str, seed: int, count: int) -> list[str]:
        """Peers worth asking for a stored grade of this key, best first.

        The static preference list covers both directions of an outage: the
        static owner has the rows when *we* are grading as a fallback, and
        the owner's successors have the rows graded while the owner was down.
        Down peers are skipped — probing them wastes a connect timeout.
        """
        candidates = self.static_ring.preference(placement_key(dataset, seed))
        with self._lock:
            return [
                name
                for name in candidates
                if name != self.self_name and self._peers[name].state != DOWN
            ][:count]

    # -- wire form -----------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """The ``/v1/cluster/health`` payload body (minus server-level fields)."""
        now = monotonic()
        with self._lock:
            peers = {
                name: {
                    "url": peer.url,
                    "state": peer.state,
                    "failures": peer.failures,
                    "seconds_since_ok": (
                        None if peer.last_ok is None else now - peer.last_ok
                    ),
                    "self": name == self.self_name,
                }
                for name, peer in self._peers.items()
            }
            live = sorted(self._live_ring.peers)
        return {
            "name": self.self_name,
            "virtual_nodes": self.virtual_nodes,
            "peers": peers,
            "live": live,
        }


__all__ = [
    "ALIVE",
    "DOWN",
    "STATE_CODES",
    "SUSPECT",
    "ClusterMembership",
    "parse_peer_specs",
]
