"""A topology-aware grading client: route to the owner, fail over on death.

:class:`ClusterClient` is the "smart client" of the cluster: it fetches the
peer map and ring parameters from any live daemon (``/v1/cluster/health``),
rebuilds the same consistent-hash ring locally (placement is SHA-256-derived
and therefore identical in every process), and sends each request straight
to the peer owning its ``(dataset, seed)`` key — zero forwarding hops on the
hot path, which is what makes cluster throughput scale with shard count.

Any peer still answers correctly for any key (daemons forward or fall back
internally), so client-side routing is an optimisation, never a correctness
requirement: a stale ring just costs one extra hop.  On a transport error
the client walks the key's ring preference order (then every remaining
peer), refreshing its topology along the way, so killing a shard costs the
requests in flight to it at most a retry, never a failure.

Like :class:`~repro.server.client.GradingClient`, one instance is not
thread-safe; closed-loop load generators give each thread its own.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.cluster.ring import HashRing, placement_key
from repro.errors import ReproError
from repro.server.client import GradingClient, ServerError


class ClusterClient:
    """Owner-routed client for a ``repro cluster`` of grading daemons."""

    def __init__(
        self,
        seed_urls: Iterable[str],
        *,
        default_dataset: str = "toy-university",
        default_seed: int = 0,
        timeout: float = 300.0,
        retries: int = 8,
        backoff: float = 0.05,
    ) -> None:
        self.seed_urls = [url for url in seed_urls]
        if not self.seed_urls:
            raise ReproError("ClusterClient needs at least one seed URL")
        self.default_dataset = default_dataset
        self.default_seed = default_seed
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._clients: dict[str, GradingClient] = {}
        self._topology: dict[str, str] = {}  # peer name -> URL
        self._ring = HashRing()
        self.refresh()

    # -- topology ------------------------------------------------------------

    def refresh(self) -> dict[str, str]:
        """Re-fetch the peer map and live ring from any reachable daemon."""
        last_error: Exception | None = None
        for url in (*self._topology.values(), *self.seed_urls):
            try:
                health = self._client(url).cluster_health()
            except ServerError as exc:
                last_error = exc
                continue
            peers = health.get("peers", {})
            live = health.get("live", list(peers))
            self._topology = {name: info["url"] for name, info in peers.items()}
            self._ring = HashRing(
                live, virtual_nodes=int(health.get("virtual_nodes", 64))
            )
            return dict(self._topology)
        raise ServerError(
            f"no cluster peer reachable via {self.seed_urls}: {last_error}"
        )

    def _client(self, url: str) -> GradingClient:
        client = self._clients.get(url)
        if client is None:
            client = self._clients[url] = GradingClient(
                url, timeout=self.timeout, retries=self.retries, backoff=self.backoff
            )
        return client

    def _route(self, dataset: str, seed: int) -> list[str]:
        """Candidate URLs for a key: owner first, then failover order."""
        preference = self._ring.preference(placement_key(dataset, seed))
        urls = [self._topology[name] for name in preference if name in self._topology]
        for url in self._topology.values():  # peers outside the live ring, last
            if url not in urls:
                urls.append(url)
        return urls if urls else list(self.seed_urls)

    # -- requests ------------------------------------------------------------

    def grade(self, request: Mapping[str, Any] | Any) -> dict[str, Any]:
        """Grade one submission on the shard owning its (dataset, seed) key."""
        payload = dict(request.to_dict() if hasattr(request, "to_dict") else request)
        dataset = payload.get("dataset") or self.default_dataset
        seed = payload.get("seed")
        seed = self.default_seed if seed is None else int(seed)
        last_error: ServerError | None = None
        refreshed = False
        for url in self._route(dataset, seed):
            try:
                return self._client(url).grade(payload)
            except ServerError as exc:
                if exc.status is not None:
                    raise  # a real HTTP answer (4xx/5xx) — not a dead peer
                last_error = exc
                if not refreshed:  # drop the dead peer from our ring once
                    refreshed = True
                    try:
                        self.refresh()
                    except ServerError:
                        pass
        raise last_error if last_error is not None else ServerError(
            "no cluster peer available"
        )

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


__all__ = ["ClusterClient"]
