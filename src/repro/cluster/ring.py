"""Consistent-hash placement of ``(dataset, seed)`` grading keys.

The cluster's only coordination mechanism is *where a key lives*: every
grading request hashes its ``(dataset spec, seed)`` pair onto a ring shared
by all peers, and the peer owning the next point clockwise is responsible
for grading it (and for the hot rows of its result-store slice).  Because
grading is deterministic (PR 4's result store makes every grade replayable
bit-identically), any peer *can* grade any key — ownership is purely a
cache-locality and dedup optimisation — so the ring needs no consensus, no
leases and no handoff protocol.

Two properties matter and are tested:

* **Stability** — adding or removing one peer from an N-peer ring moves only
  ≈ K/N of K keys (the removed peer's slice); every other key keeps its
  owner, so a membership change never invalidates the whole cluster's warm
  state.  ``virtual_nodes`` points per peer keep the slices balanced.
* **Determinism** — placement is derived from SHA-256 over the peer name and
  key text, never from Python's per-process ``hash()``, so every peer (and
  every client) computes the identical ring regardless of process, platform
  or ``PYTHONHASHSEED``.

Peers are identified by *logical names* (``shard-0``, ``shard-1``, …), not
addresses: placement survives a peer restarting on a new port, and a bench
or test can predict ownership before any process is booted.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator


def _point(text: str) -> int:
    """A deterministic 64-bit ring position for ``text``."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


def placement_key(dataset: str, seed: int) -> str:
    """The routing key of one grading shard: the dataset spec and seed."""
    return f"{dataset}#{seed}"


class HashRing:
    """A consistent-hash ring over logical peer names with virtual nodes."""

    def __init__(self, peers: Iterable[str] = (), *, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._peers: set[str] = set()
        #: Sorted ``(point, peer)`` pairs; the pair ordering (not insertion
        #: order) breaks the astronomically-unlikely point collision, keeping
        #: placement independent of the order peers were added in.
        self._ring: list[tuple[int, str]] = []
        for peer in peers:
            self.add(peer)

    # -- membership ----------------------------------------------------------

    def add(self, peer: str) -> None:
        if not peer:
            raise ValueError("peer name must be non-empty")
        if peer in self._peers:
            return
        self._peers.add(peer)
        for vnode in range(self.virtual_nodes):
            entry = (_point(f"{peer}\x00{vnode}"), peer)
            bisect.insort(self._ring, entry)

    def remove(self, peer: str) -> None:
        if peer not in self._peers:
            return
        self._peers.discard(peer)
        self._ring = [entry for entry in self._ring if entry[1] != peer]

    @property
    def peers(self) -> frozenset[str]:
        return frozenset(self._peers)

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, peer: str) -> bool:
        return peer in self._peers

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._peers))

    # -- placement -----------------------------------------------------------

    def owner(self, key: str) -> str | None:
        """The peer owning ``key``: the first ring point at or after its hash."""
        if not self._ring:
            return None
        index = bisect.bisect_left(self._ring, (_point(key), ""))
        return self._ring[index % len(self._ring)][1]

    def owner_for(self, dataset: str, seed: int) -> str | None:
        return self.owner(placement_key(dataset, seed))

    def preference(self, key: str, count: int | None = None) -> list[str]:
        """Distinct peers in ring order from ``key``'s position.

        The first entry is the owner; the rest are its natural successors —
        the peers that take over (and that fallback grades land on) when
        peers ahead of them in the list are down.  This is the probe order of
        the cluster store tier.
        """
        if not self._ring:
            return []
        limit = len(self._peers) if count is None else min(count, len(self._peers))
        start = bisect.bisect_left(self._ring, (_point(key), ""))
        found: list[str] = []
        for offset in range(len(self._ring)):
            peer = self._ring[(start + offset) % len(self._ring)][1]
            if peer not in found:
                found.append(peer)
                if len(found) >= limit:
                    break
        return found


__all__ = ["HashRing", "placement_key"]
