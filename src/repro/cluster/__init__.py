"""Shared-nothing horizontal scale-out of the grading daemon.

The cluster subsystem turns N independent ``repro serve`` daemons into one
logical grading service:

* :mod:`repro.cluster.ring` — deterministic consistent-hash placement of
  ``(dataset, seed)`` keys onto logical peer names.
* :mod:`repro.cluster.eventloop` — the ``selectors``-based single-reactor
  HTTP server that replaced the thread-per-connection accept loop.
* :mod:`repro.cluster.membership` — static peer map + heartbeat liveness
  (alive / suspect / down) and the live ring that routes around dead peers.
* :mod:`repro.cluster.forward` — owner forwarding, cross-shard single-flight
  by composition, and the remote store tier.
* :mod:`repro.cluster.client` — the owner-routing, failover-capable client.
* :mod:`repro.cluster.supervisor` — boots and supervises N shards on one
  host; also the SIGKILL harness for failure drills.

See the "Cluster" section of the README for topology, failure modes and the
metrics reference.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.eventloop import EventLoopHTTPServer, HTTPRequest, HTTPResponse
from repro.cluster.forward import FORWARDED_HEADER, ForwardError, Forwarder
from repro.cluster.membership import (
    ALIVE,
    DOWN,
    STATE_CODES,
    SUSPECT,
    ClusterMembership,
    parse_peer_specs,
)
from repro.cluster.ring import HashRing, placement_key
from repro.cluster.supervisor import ClusterSupervisor, ShardSpec, free_port

__all__ = [
    "ALIVE",
    "DOWN",
    "FORWARDED_HEADER",
    "STATE_CODES",
    "SUSPECT",
    "ClusterClient",
    "ClusterMembership",
    "ClusterSupervisor",
    "EventLoopHTTPServer",
    "ForwardError",
    "Forwarder",
    "HTTPRequest",
    "HTTPResponse",
    "HashRing",
    "ShardSpec",
    "parse_peer_specs",
    "placement_key",
    "free_port",
]
