"""Boot and supervise an N-shard grading cluster on one host.

``repro cluster`` uses :class:`ClusterSupervisor` to spawn one ``repro serve``
subprocess per shard, all sharing the same ``name=url`` peer map, and then
watches them the way the in-daemon watchdog watches worker processes: a shard
that dies is logged and (optionally) respawned on the same name and port, so
placement is untouched by the restart.

The supervisor is also the harness for failure drills: :meth:`kill_shard`
SIGKILLs one daemon mid-run — no drain, no goodbye — which is exactly the
failure the membership layer's suspect/down machinery and the forwarders'
local fallback exist for.  Benchmarks and the CI cluster-smoke job both
drive drills through this class rather than shelling out ad hoc.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ReproError

log = logging.getLogger(__name__)


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the kernel for a free TCP port (raceable, fine for tests/benches)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class ShardSpec:
    """One shard of the cluster: a logical name bound to a host:port."""

    name: str
    host: str
    port: int

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def peer_spec(self) -> str:
        return f"{self.name}={self.url}"


@dataclass
class _Shard:
    spec: ShardSpec
    process: subprocess.Popen | None = None
    restarts: int = 0
    killed: bool = field(default=False)  # deliberately killed; don't respawn


class ClusterSupervisor:
    """Spawns, monitors and tears down a set of grading-daemon subprocesses."""

    def __init__(
        self,
        shards: int = 3,
        *,
        host: str = "127.0.0.1",
        ports: Sequence[int] | None = None,
        workers: int = 2,
        backend: str = "python",
        store_dir: str | Path | None = None,
        warm_datasets: Sequence[str] = (),
        max_queue: int = 64,
        restart: bool = True,
        extra_args: Sequence[str] = (),
        verbose: bool = False,
    ) -> None:
        if shards < 1:
            raise ReproError("a cluster needs at least one shard")
        if ports is not None and len(ports) != shards:
            raise ReproError(f"need exactly {shards} ports, got {len(ports)}")
        port_list = list(ports) if ports is not None else [
            free_port(host) for _ in range(shards)
        ]
        self.specs = [
            ShardSpec(name=f"shard-{index}", host=host, port=port)
            for index, port in enumerate(port_list)
        ]
        self.workers = workers
        self.backend = backend
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.warm_datasets = list(warm_datasets)
        self.max_queue = max_queue
        self.restart = restart
        self.extra_args = list(extra_args)
        self.verbose = verbose
        self._shards = {spec.name: _Shard(spec) for spec in self.specs}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._watch_thread: threading.Thread | None = None

    # -- composition ---------------------------------------------------------

    @property
    def urls(self) -> list[str]:
        return [spec.url for spec in self.specs]

    @property
    def peer_specs(self) -> list[str]:
        return [spec.peer_spec for spec in self.specs]

    def _command(self, spec: ShardSpec) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            spec.host,
            "--port",
            str(spec.port),
            "--workers",
            str(self.workers),
            "--backend",
            self.backend,
            "--max-queue",
            str(self.max_queue),
            "--cluster-self",
            spec.name,
        ]
        for peer in self.peer_specs:
            argv += ["--peer", peer]
        if self.store_dir is not None:
            argv += ["--store", str(self.store_dir / f"{spec.name}.sqlite3")]
        else:
            argv += ["--store", ":memory:"]  # shards must never share one file
        for dataset in self.warm_datasets:
            argv += ["--warm", dataset]
        if self.verbose:
            argv.append("--verbose")
        argv += self.extra_args
        return argv

    def _spawn(self, shard: _Shard) -> None:
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        if self.store_dir is not None:
            self.store_dir.mkdir(parents=True, exist_ok=True)
        shard.process = subprocess.Popen(
            self._command(shard.spec),
            env=env,
            stdout=None if self.verbose else subprocess.DEVNULL,
            stderr=None if self.verbose else subprocess.DEVNULL,
        )
        log.info(
            "spawned %s (pid %d) on %s",
            shard.spec.name,
            shard.process.pid,
            shard.spec.url,
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self, *, wait_healthy: bool = True, timeout: float = 60.0) -> "ClusterSupervisor":
        for shard in self._shards.values():
            self._spawn(shard)
        if wait_healthy:
            self.wait_healthy(timeout=timeout)
        if self.restart:
            self._watch_thread = threading.Thread(
                target=self._watch, name="repro-cluster-watch", daemon=True
            )
            self._watch_thread.start()
        return self

    def wait_healthy(self, *, timeout: float = 60.0) -> None:
        """Block until every shard answers ``/healthz`` (or raise)."""
        from repro.server.client import GradingClient, ServerError

        deadline = time.monotonic() + timeout
        for spec in self.specs:
            client = GradingClient(spec.url, timeout=5.0, retries=0)
            try:
                while True:
                    shard = self._shards[spec.name]
                    if shard.process is not None and shard.process.poll() is not None:
                        raise ReproError(
                            f"shard {spec.name} exited with code "
                            f"{shard.process.returncode} during startup"
                        )
                    try:
                        client.health()
                        break
                    except ServerError:
                        if time.monotonic() > deadline:
                            raise ReproError(
                                f"shard {spec.name} ({spec.url}) not healthy "
                                f"after {timeout:.0f}s"
                            ) from None
                        time.sleep(0.1)
            finally:
                client.close()

    def _watch(self) -> None:
        while not self._stop.wait(0.5):
            try:
                with self._lock:
                    dead = [
                        shard
                        for shard in self._shards.values()
                        if not shard.killed
                        and shard.process is not None
                        and shard.process.poll() is not None
                    ]
                for shard in dead:
                    log.warning(
                        "shard %s exited with code %s; respawning",
                        shard.spec.name,
                        shard.process.returncode if shard.process else None,
                    )
                    shard.restarts += 1
                    self._spawn(shard)
            except Exception:  # noqa: BLE001 — the watchdog must survive
                log.exception("cluster watchdog sweep failed; continuing")

    def kill_shard(self, name: str, *, respawn: bool = False) -> int:
        """SIGKILL one shard (failure drill).  Returns the killed pid."""
        with self._lock:
            shard = self._shards.get(name)
            if shard is None or shard.process is None:
                raise ReproError(f"unknown or unstarted shard {name!r}")
            shard.killed = not respawn
            pid = shard.process.pid
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        shard.process.wait(timeout=10.0)
        log.info("killed shard %s (pid %d)", name, pid)
        return pid

    def poll(self) -> dict[str, Any]:
        """Liveness snapshot of every shard process."""
        with self._lock:
            return {
                name: {
                    "pid": shard.process.pid if shard.process else None,
                    "running": (
                        shard.process is not None and shard.process.poll() is None
                    ),
                    "restarts": shard.restarts,
                    "url": shard.spec.url,
                }
                for name, shard in self._shards.items()
            }

    def stop(self, *, timeout: float = 15.0) -> None:
        """SIGTERM every shard and wait; SIGKILL stragglers."""
        self._stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=2.0)
        with self._lock:
            processes = [
                shard.process
                for shard in self._shards.values()
                if shard.process is not None and shard.process.poll() is None
            ]
        for process in processes:
            try:
                process.terminate()
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + timeout
        for process in processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


__all__ = ["ClusterSupervisor", "ShardSpec", "free_port"]
