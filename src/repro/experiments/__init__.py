"""Experiment drivers: one module per paper table/figure.

``run_all_experiments("quick")`` reproduces every table and figure at laptop
scale and returns the results keyed by experiment id; ``generate_report``
renders them as the markdown used in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.dichotomy import dichotomy_experiment
from repro.experiments.figure3 import complexity_experiment
from repro.experiments.figure4 import scaling_experiment
from repro.experiments.figure5 import solver_strategy_experiment
from repro.experiments.figure6 import tpch_experiment
from repro.experiments.figure7 import parameterization_experiment
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, run_experiment
from repro.experiments.pairs import QueryPair, course_pairs, differing_pairs
from repro.experiments.table3 import discovery_experiment
from repro.experiments.table4 import scp_vs_swp_experiment
from repro.experiments.userstudy import user_study_experiments

__all__ = [
    "ExperimentResult",
    "QueryPair",
    "Row",
    "ScaleProfile",
    "complexity_experiment",
    "course_pairs",
    "dichotomy_experiment",
    "differing_pairs",
    "discovery_experiment",
    "generate_report",
    "parameterization_experiment",
    "run_all_experiments",
    "run_experiment",
    "scaling_experiment",
    "scp_vs_swp_experiment",
    "solver_strategy_experiment",
    "tpch_experiment",
    "user_study_experiments",
]


def run_all_experiments(profile: str | ScaleProfile = "quick") -> dict[str, ExperimentResult]:
    """Run every experiment driver at the given scale profile."""
    results: dict[str, ExperimentResult] = {
        "table1": dichotomy_experiment(profile),
        "table3": discovery_experiment(profile),
        "table4": scp_vs_swp_experiment(profile),
        "figure3": complexity_experiment(profile),
        "figure4": scaling_experiment(profile),
        "figure5": solver_strategy_experiment(profile),
        "figure6": tpch_experiment(profile),
        "figure7": parameterization_experiment(profile),
    }
    results.update(user_study_experiments(profile))
    return results


def generate_report(results: dict[str, ExperimentResult]) -> str:
    """Markdown report with one section per experiment."""
    order = [
        "table1",
        "table3",
        "table4",
        "figure3",
        "figure4",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "table5",
        "figure9",
        "figure10",
    ]
    sections = [results[key].to_markdown() for key in order if key in results]
    extras = [results[key].to_markdown() for key in results if key not in order]
    return "\n".join(sections + extras)
