"""Figure 4: database size vs running time of each pipeline component.

The six series of the paper's figure are reproduced directly from the
lower-level building blocks rather than through the end-to-end algorithms, so
that each component is timed in isolation:

* ``raw``            — evaluating ``Q1 − Q2``;
* ``prov_all``       — provenance-annotated evaluation of ``Q1 − Q2`` (all tuples);
* ``prov_sp``        — provenance of a single output tuple after selection pushdown;
* ``solver_naive_M`` — Naive-M model enumeration on that tuple's provenance;
* ``solver_opt``     — the optimizing min-ones solve on that tuple;
* ``solver_opt_all`` — optimizing solves for every differing output tuple.
"""

from __future__ import annotations

import time

from repro.core.basic import smallest_witness_for_expression
from repro.core.common import symmetric_difference_rows
from repro.datagen.university import university_instance_with_size
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, mean, run_experiment
from repro.experiments.pairs import differing_pairs
from repro.provenance.annotate import annotate
from repro.ra.ast import Difference
from repro.ra.evaluator import evaluate
from repro.ra.rewrite import add_tuple_selection, push_selections_down


def scaling_experiment(
    profile: ScaleProfile | str = "quick", *, seed: int = 7
) -> ExperimentResult:
    """Reproduce Figure 4 at the given scale profile."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    naive_budget = max(profile.naive_budgets)

    def rows() -> list[Row]:
        out: list[Row] = []
        for size in profile.database_sizes:
            instance = university_instance_with_size(size, seed=seed)
            pairs = differing_pairs(instance, limit=profile.pairs_per_size, seed=seed)
            timings: dict[str, list[float]] = {
                "raw": [],
                "prov_all": [],
                "prov_sp": [],
                f"solver_naive_{naive_budget}": [],
                "solver_opt": [],
                "solver_opt_all": [],
            }
            for pair in pairs:
                started = time.perf_counter()
                only_in_q1, only_in_q2 = symmetric_difference_rows(pair.correct, pair.wrong, instance)
                timings["raw"].append(time.perf_counter() - started)
                if only_in_q1:
                    row, winning, losing = only_in_q1[0], pair.correct, pair.wrong
                else:
                    row, winning, losing = only_in_q2[0], pair.wrong, pair.correct
                diff = Difference(winning, losing)

                started = time.perf_counter()
                annotated_all = annotate(diff, instance)
                timings["prov_all"].append(time.perf_counter() - started)

                started = time.perf_counter()
                pushed = push_selections_down(
                    add_tuple_selection(diff, instance.schema, row), instance.schema
                )
                annotated_sp = annotate(pushed, instance)
                timings["prov_sp"].append(time.perf_counter() - started)
                expression = annotated_sp.expression_for(row)

                started = time.perf_counter()
                smallest_witness_for_expression(
                    expression, instance, row, mode="enumerate", max_trials=naive_budget
                )
                timings[f"solver_naive_{naive_budget}"].append(time.perf_counter() - started)

                started = time.perf_counter()
                smallest_witness_for_expression(expression, instance, row, mode="optimal")
                timings["solver_opt"].append(time.perf_counter() - started)

                started = time.perf_counter()
                targets = only_in_q1 if only_in_q1 else only_in_q2
                for target in targets:
                    target_expression = annotated_all.expression_for(target)
                    smallest_witness_for_expression(
                        target_expression, instance, target, mode="optimal"
                    )
                timings["solver_opt_all"].append(time.perf_counter() - started)
            row_out: Row = {"num_tuples": instance.total_size(), "pairs": len(pairs)}
            for component, values in timings.items():
                row_out[f"{component}_s"] = round(mean(values), 4)
            out.append(row_out)
        return out

    return run_experiment(
        "Figure 4 — database size vs component running time",
        "Mean per-component running time over course query pairs at each instance size.",
        rows,
        profile=profile.name,
        seed=seed,
    )
