"""Shared infrastructure for the experiment drivers.

Every experiment driver returns an :class:`ExperimentResult`: a named list of
row dictionaries that can be printed as a markdown table (the same rows the
paper's tables/figures report).  Drivers accept a ``scale`` knob so the same
code can run laptop-sized (the default used by the benchmark suite) or closer
to the paper's sizes (``paper`` profile, used to produce EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

Row = dict[str, Any]


@dataclass
class ExperimentResult:
    """Rows produced by one experiment driver plus bookkeeping metadata."""

    name: str
    description: str
    rows: list[Row] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def to_markdown(self) -> str:
        """Render the rows as a GitHub-flavoured markdown table."""
        if not self.rows:
            return f"### {self.name}\n\n(no rows)\n"
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        header = "| " + " | ".join(columns) + " |"
        separator = "| " + " | ".join("---" for _ in columns) + " |"
        body = [
            "| " + " | ".join(_format_cell(row.get(column, "")) for column in columns) + " |"
            for row in self.rows
        ]
        title = f"### {self.name}\n\n{self.description}\n"
        return "\n".join([title, header, separator, *body]) + "\n"

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def run_experiment(
    name: str,
    description: str,
    row_producer: Callable[[], Iterable[Row]],
    **metadata: Any,
) -> ExperimentResult:
    """Time a row-producing callable and wrap its output."""
    started = time.perf_counter()
    rows = list(row_producer())
    elapsed = time.perf_counter() - started
    return ExperimentResult(
        name=name, description=description, rows=rows, metadata=metadata, elapsed_seconds=elapsed
    )


@dataclass(frozen=True)
class ScaleProfile:
    """How big the experiment inputs are.

    The ``quick`` profile keeps every driver under a few seconds so the whole
    benchmark suite runs in minutes; ``paper`` stretches the database sizes
    towards the paper's 1K–100K sweep (still scaled to what a pure-Python
    engine handles interactively).
    """

    name: str
    database_sizes: tuple[int, ...]
    pairs_per_size: int
    tpch_scale: float
    naive_budgets: tuple[int, ...]
    cohort_size: int

    @staticmethod
    def quick() -> "ScaleProfile":
        return ScaleProfile(
            name="quick",
            database_sizes=(200, 500, 1000),
            pairs_per_size=6,
            tpch_scale=0.05,
            naive_budgets=(1, 8, 32),
            cohort_size=80,
        )

    @staticmethod
    def paper() -> "ScaleProfile":
        return ScaleProfile(
            name="paper",
            database_sizes=(1000, 4000, 10000, 40000, 100000),
            pairs_per_size=10,
            tpch_scale=0.3,
            naive_budgets=(1, 8, 32, 128),
            cohort_size=169,
        )

    @staticmethod
    def by_name(name: str) -> "ScaleProfile":
        if name == "quick":
            return ScaleProfile.quick()
        if name == "paper":
            return ScaleProfile.paper()
        raise ValueError(f"unknown scale profile {name!r} (expected 'quick' or 'paper')")


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
