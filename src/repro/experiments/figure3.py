"""Figure 3: query complexity vs running time of the Optσ components.

For every (correct, wrong) pair, the driver records the wrong query's
complexity metrics (number of operators, number of difference operators,
height of the operator tree) alongside the per-phase running time of Optσ
(raw query evaluation, provenance computation with selection pushdown, solver
time and total).  The paper's observation is that time grows with complexity
and that the raw CTE evaluation usually dominates.
"""

from __future__ import annotations

from repro.core.optsigma import smallest_witness_optsigma
from repro.datagen.university import university_instance_with_size
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, run_experiment
from repro.experiments.pairs import differing_pairs
from repro.ra.analysis import profile as query_profile
from repro.ra.ast import Difference


def complexity_experiment(
    profile: ScaleProfile | str = "quick", *, seed: int = 7
) -> ExperimentResult:
    """Reproduce Figure 3 at the given scale profile."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    size = profile.database_sizes[-1]
    instance = university_instance_with_size(size, seed=seed)
    pairs = differing_pairs(instance, limit=2 * profile.pairs_per_size, seed=seed)

    def rows() -> list[Row]:
        out: list[Row] = []
        for pair in pairs:
            combined = query_profile(Difference(pair.correct, pair.wrong))
            result = smallest_witness_optsigma(pair.correct, pair.wrong, instance)
            out.append(
                {
                    "question": pair.question,
                    "num_operators": combined.num_operators,
                    "num_differences": combined.num_differences,
                    "height": combined.height,
                    "raw_eval_s": round(result.timings.get("raw_eval", 0.0), 4),
                    "provenance_s": round(result.timings.get("provenance", 0.0), 4),
                    "solver_s": round(result.timings.get("solver", 0.0), 4),
                    "total_s": round(result.total_time(), 4),
                    "witness_size": result.size,
                }
            )
        out.sort(key=lambda row: (row["num_operators"], row["num_differences"], row["height"]))
        return out

    return run_experiment(
        "Figure 3 — query complexity vs Optσ component time",
        "Per-pair Optσ phase timings against the complexity metrics of Q1 − Q2.",
        rows,
        profile=profile.name,
        seed=seed,
    )
