"""Figure 6: TPC-H aggregate queries — Agg-Basic vs Agg-Opt time breakdown.

For every benchmark query (Q4, Q16, Q18, Q21, Q21-S) and each of its wrong
variants, both aggregate algorithms are run and their phase timings recorded.
The paper's shape: the heuristic (Agg-Opt) stays interactive on every query,
while the full aggregate-provenance approach (Agg-Basic) degrades — up to a
timeout — on the queries with large groups (Q4, Q21, Q21-S).
"""

from __future__ import annotations

from repro.core.aggregates import (
    smallest_counterexample_agg_basic,
    smallest_counterexample_agg_opt,
)
from repro.datagen.tpch import tpch_instance
from repro.errors import ReproError
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, mean, run_experiment
from repro.ra.evaluator import evaluate
from repro.solver.theory import AggregateSolverConfig
from repro.workload.tpch_queries import tpch_queries


def tpch_experiment(
    profile: ScaleProfile | str = "quick",
    *,
    seed: int = 1,
    solver_time_budget: float = 15.0,
    solver_node_budget: int = 60_000,
) -> ExperimentResult:
    """Reproduce Figure 6 at the given scale profile."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    instance = tpch_instance(profile.tpch_scale, seed=seed)
    config = AggregateSolverConfig(max_nodes=solver_node_budget, time_budget=solver_time_budget)

    def run_algorithm(name, correct, wrong) -> dict[str, float | str | int]:
        try:
            if name == "Agg-Basic":
                result = smallest_counterexample_agg_basic(
                    correct, wrong, instance, solver_config=config
                )
            else:
                result = smallest_counterexample_agg_opt(correct, wrong, instance)
        except ReproError as exc:
            return {"status": f"failed ({type(exc).__name__})"}
        status = "ok" if result.optimal else "budget exhausted"
        return {
            "status": status,
            "raw_eval_s": result.timings.get("raw_eval", 0.0),
            "prov_eval_s": result.timings.get("provenance", 0.0),
            "solver_s": result.timings.get("solver", 0.0),
            "total_s": result.total_time(),
            "counterexample_size": result.size,
        }

    def rows() -> list[Row]:
        out: list[Row] = []
        for query in tpch_queries():
            correct = query.correct_query
            reference_rows = evaluate(correct, instance).rows
            variants = [
                wrong
                for wrong in query.wrong_queries
                if evaluate(wrong, instance).rows != reference_rows
            ]
            for algorithm in ("Agg-Basic", "Agg-Opt"):
                per_variant = [run_algorithm(algorithm, correct, wrong) for wrong in variants]
                usable = [v for v in per_variant if "total_s" in v]
                statuses = {v["status"] for v in per_variant}
                row: Row = {
                    "query": query.key,
                    "algorithm": algorithm,
                    "wrong_variants": len(variants),
                    "status": "; ".join(sorted(statuses)) if statuses else "no differing variant",
                }
                for field in ("raw_eval_s", "prov_eval_s", "solver_s", "total_s"):
                    row[field] = round(mean([v[field] for v in usable]), 4) if usable else None
                row["mean_counterexample_size"] = (
                    round(mean([v["counterexample_size"] for v in usable]), 2) if usable else None
                )
                out.append(row)
        return out

    return run_experiment(
        "Figure 6 — TPC-H aggregate queries: Agg-Basic vs Agg-Opt",
        "Phase timings (raw query evaluation, provenance, solver) per query and algorithm, "
        f"TPC-H-lite scale={profile.tpch_scale}.",
        rows,
        profile=profile.name,
        seed=seed,
        solver_time_budget=solver_time_budget,
    )
