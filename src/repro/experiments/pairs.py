"""Helpers for building (reference query, wrong query) evaluation pairs."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.instance import DatabaseInstance
from repro.ra.analysis import QueryProfile, profile
from repro.ra.ast import RAExpression
from repro.ra.evaluator import evaluate
from repro.workload.course import course_questions, course_submission_pool


@dataclass(frozen=True)
class QueryPair:
    """A reference/wrong query pair known to differ on some instance."""

    question: str
    correct: RAExpression
    wrong: RAExpression
    description: str

    def wrong_profile(self) -> QueryProfile:
        return profile(self.wrong)


def course_pairs(*, seed: int = 0, mutants_per_question: int = 12) -> list[QueryPair]:
    """All course (correct, wrong) pairs, without filtering by any instance."""
    pool = course_submission_pool(seed=seed, mutants_per_question=mutants_per_question)
    pairs: list[QueryPair] = []
    for question in course_questions():
        for wrong, description in zip(
            pool.wrong_queries[question.key], pool.descriptions[question.key]
        ):
            pairs.append(QueryPair(question.key, question.correct_query, wrong, description))
    return pairs


def differing_pairs(
    instance: DatabaseInstance,
    *,
    limit: int | None = None,
    seed: int = 0,
    mutants_per_question: int = 12,
    spread_questions: bool = True,
) -> list[QueryPair]:
    """Pairs whose queries actually disagree on ``instance``.

    When ``spread_questions`` is set, pairs are interleaved across questions so
    that a small ``limit`` still covers the full range of query complexities
    (which matters for the Figure 3 experiment).
    """
    pairs = course_pairs(seed=seed, mutants_per_question=mutants_per_question)
    rng = random.Random(seed)
    rng.shuffle(pairs)
    by_question: dict[str, list[QueryPair]] = {}
    for pair in pairs:
        try:
            differs = not evaluate(pair.correct, instance).same_rows(
                evaluate(pair.wrong, instance)
            )
        except Exception:
            continue
        if differs:
            by_question.setdefault(pair.question, []).append(pair)

    if not spread_questions:
        flattened = [pair for group in by_question.values() for pair in group]
        return flattened[:limit] if limit is not None else flattened

    # Round-robin across questions.
    result: list[QueryPair] = []
    queues = {key: list(group) for key, group in sorted(by_question.items())}
    while queues and (limit is None or len(result) < limit):
        for key in sorted(queues):
            if limit is not None and len(result) >= limit:
                break
            group = queues[key]
            if group:
                result.append(group.pop(0))
            if not group:
                del queues[key]
    return result
