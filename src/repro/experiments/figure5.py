"""Figure 5: witness size (and runtime) per constraint-solving strategy.

Compares the Naive-M strategies (enumerate up to M models of the provenance
formula with a plain SAT solver and keep the smallest) against Opt (the
cardinality-minimising solver).  The paper's finding: Opt's witnesses are
never larger and its runtime overhead over even Naive-1 is negligible.
"""

from __future__ import annotations

import time

from repro.core.basic import smallest_witness_for_expression
from repro.core.common import pick_witness_target
from repro.datagen.university import university_instance_with_size
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, mean, run_experiment
from repro.experiments.pairs import differing_pairs
from repro.provenance.annotate import annotate
from repro.ra.ast import Difference
from repro.ra.rewrite import add_tuple_selection, push_selections_down


def solver_strategy_experiment(
    profile: ScaleProfile | str = "quick", *, seed: int = 7
) -> ExperimentResult:
    """Reproduce Figure 5 at the given scale profile."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    size = profile.database_sizes[-1]
    instance = university_instance_with_size(size, seed=seed)
    pairs = differing_pairs(instance, limit=profile.pairs_per_size, seed=seed)

    # Pre-compute the provenance expression of one differing tuple per pair so
    # that only the solving strategy varies between the series.
    prepared = []
    for pair in pairs:
        row, winning, losing = pick_witness_target(pair.correct, pair.wrong, instance)
        diff = Difference(winning, losing)
        pushed = push_selections_down(
            add_tuple_selection(diff, instance.schema, row), instance.schema
        )
        expression = annotate(pushed, instance).expression_for(row)
        prepared.append((pair, row, expression))

    def rows() -> list[Row]:
        out: list[Row] = []
        strategies: list[tuple[str, str, int]] = [
            (f"Naive-{budget}", "enumerate", budget) for budget in profile.naive_budgets
        ]
        strategies.append(("Opt", "optimal", 0))
        for label, mode, budget in strategies:
            sizes, runtimes = [], []
            for _pair, row, expression in prepared:
                started = time.perf_counter()
                witness = smallest_witness_for_expression(
                    expression, instance, row, mode=mode, max_trials=max(budget, 1)
                )
                runtimes.append(time.perf_counter() - started)
                sizes.append(witness.size)
            out.append(
                {
                    "strategy": label,
                    "mean_witness_size": round(mean(sizes), 3),
                    "max_witness_size": max(sizes) if sizes else 0,
                    "mean_solver_runtime_s": round(mean(runtimes), 4),
                    "pairs": len(prepared),
                }
            )
        return out

    return run_experiment(
        "Figure 5 — witness size vs solver strategy",
        "Naive-M model enumeration vs the optimizing solver on the same provenance formulas.",
        rows,
        profile=profile.name,
        seed=seed,
    )
