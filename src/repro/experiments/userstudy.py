"""User-study experiment drivers: Figure 8, Table 5, Figure 9, Figure 10."""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, ScaleProfile, run_experiment
from repro.userstudy.analysis import (
    score_comparison,
    survey_summary,
    transfer_analysis,
    usage_statistics,
)
from repro.userstudy.simulation import simulate_cohort


def user_study_experiments(
    profile: ScaleProfile | str = "quick", *, seed: int = 2018
) -> dict[str, ExperimentResult]:
    """Simulate the cohort once and derive all four user-study artifacts."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    cohort = simulate_cohort(profile.cohort_size, seed=seed)
    return {
        "figure8": run_experiment(
            "Figure 8 — RATest usage statistics (simulated cohort)",
            "Per-problem usage of RATest by the simulated students.",
            lambda: usage_statistics(cohort),
            profile=profile.name,
            seed=seed,
        ),
        "table5": run_experiment(
            "Table 5 — scores of RATest users vs non-users (simulated cohort)",
            "Mean normalised scores per problem for students who did / did not use RATest.",
            lambda: score_comparison(cohort),
            profile=profile.name,
            seed=seed,
        ),
        "figure9": run_experiment(
            "Figure 9 — transfer to similar problems and procrastination breakdown "
            "(simulated cohort)",
            "Scores on (i), the similar (h) and the dissimilar (j), split by RATest usage on (i) "
            "and by when students started.",
            lambda: transfer_analysis(cohort),
            profile=profile.name,
            seed=seed,
        ),
        "figure10": run_experiment(
            "Figure 10 — questionnaire responses (simulated cohort)",
            "Distribution of survey answers among simulated RATest users.",
            lambda: survey_summary(cohort),
            profile=profile.name,
            seed=seed,
        ),
    }
