"""Table 1 companion experiment: specialised poly-time algorithms vs the generic solver.

Table 1 is a theory result, so there is no measurement to reproduce verbatim;
instead this driver provides the ablation DESIGN.md calls out: on query pairs
of the tractable classes (monotone SPJU and SPJUD*) and on the vertex-cover
hardness constructions, it compares the witness sizes and runtimes of

* the generic constraint-based Optσ algorithm,
* the DNF specialisation for monotone pairs (Theorem 6),
* the terminal-enumeration algorithm for SPJUD* pairs (Theorem 7),

confirming that the specialised algorithms return witnesses of the same size.
"""

from __future__ import annotations

from repro.core.optsigma import smallest_witness_optsigma
from repro.core.polytime import smallest_witness_monotone_dnf, smallest_witness_spjud_star
from repro.datagen.university import university_instance_with_size
from repro.errors import ReproError
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, run_experiment
from repro.experiments.pairs import differing_pairs
from repro.ra.analysis import QueryClass, profile as query_profile
from repro.theory.reductions import (
    random_degree_bounded_graph,
    vertex_cover_to_pj_swp,
    vertex_cover_to_pjd_scp,
)


def dichotomy_experiment(
    profile: ScaleProfile | str = "quick", *, seed: int = 7
) -> ExperimentResult:
    """Compare specialised algorithms against the generic solver."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    instance = university_instance_with_size(profile.database_sizes[0], seed=seed)
    pairs = differing_pairs(instance, limit=2 * profile.pairs_per_size, seed=seed)

    def run(label, func, *args, **kwargs) -> Row | None:
        try:
            result = func(*args, **kwargs)
        except ReproError:
            return None
        return {
            "algorithm": label,
            "witness_size": result.size,
            "runtime_s": round(result.total_time(), 4),
            "optimal": result.optimal,
        }

    def rows() -> list[Row]:
        out: list[Row] = []
        for pair in pairs:
            klass = query_profile(pair.wrong).query_class
            generic = run("optsigma", smallest_witness_optsigma, pair.correct, pair.wrong, instance)
            if generic is None:
                continue
            specialised: Row | None = None
            if klass in (QueryClass.SJ, QueryClass.SPU, QueryClass.PJ, QueryClass.JU,
                         QueryClass.JU_STAR, QueryClass.SPJU):
                specialised = run(
                    "polytime-dnf", smallest_witness_monotone_dnf, pair.correct, pair.wrong, instance
                )
            elif klass is QueryClass.SPJUD_STAR:
                specialised = run(
                    "spjud-star",
                    smallest_witness_spjud_star,
                    pair.correct,
                    pair.wrong,
                    instance,
                    max_combinations=5000,
                )
            row: Row = {
                "workload": f"course {pair.question}",
                "query_class": klass.value,
                "optsigma_size": generic["witness_size"],
                "optsigma_runtime_s": generic["runtime_s"],
            }
            if specialised is not None:
                row["specialised_algorithm"] = specialised["algorithm"]
                row["specialised_size"] = specialised["witness_size"]
                row["specialised_runtime_s"] = specialised["runtime_s"]
            out.append(row)

        # Hardness constructions (Theorems 3 and 8) on a small random graph.
        graph = random_degree_bounded_graph(8, 9, seed=seed)
        for label, builder in (("PJ reduction (Thm 3)", vertex_cover_to_pj_swp),
                               ("PJD reduction (Thm 8)", vertex_cover_to_pjd_scp)):
            reduction = builder(graph)
            generic = run(
                "optsigma", smallest_witness_optsigma, reduction.q1, reduction.q2, reduction.instance
            )
            if generic is None:
                continue
            out.append(
                {
                    "workload": label,
                    "query_class": query_profile(reduction.q1).query_class.value,
                    "optsigma_size": generic["witness_size"],
                    "optsigma_runtime_s": generic["runtime_s"],
                    "graph_vertices": graph.number_of_nodes(),
                    "graph_edges": graph.number_of_edges(),
                }
            )
        return out

    return run_experiment(
        "Table 1 companion — specialised algorithms vs the generic solver",
        "Witness sizes and runtimes per query class; the specialised poly-time algorithms "
        "match the generic solver's witness sizes on their classes.",
        rows,
        profile=profile.name,
        seed=seed,
    )
