"""Table 3: database size vs number of wrong queries discovered.

For each test-database size, every wrong query in the submission pool is run
through the auto-grader; a wrong query is *discovered* when its result differs
from the reference query's result on that instance.  Larger instances exercise
more corner cases and therefore catch more wrong queries — the monotone trend
the paper reports.
"""

from __future__ import annotations

import random

from repro.api import GradingService, SubmissionRequest
from repro.datagen.university import university_instance_with_size
from repro.errors import ReproError
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, run_experiment
from repro.workload.course import course_questions, course_submission_pool


def discovery_experiment(
    profile: ScaleProfile | str = "quick",
    *,
    seed: int = 7,
    mutants_per_question: int = 25,
    num_students: int = 141,
) -> ExperimentResult:
    """Reproduce Table 3 at the given scale profile."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    pool = course_submission_pool(seed=seed, mutants_per_question=mutants_per_question)
    questions = {question.key: question for question in course_questions()}

    # Assign every wrong query to a synthetic student so that the paper's
    # "# of students with incorrect queries" column can be reported as well.
    rng = random.Random(seed)
    student_of: dict[tuple[str, int], int] = {}
    for key, wrong_queries in pool.wrong_queries.items():
        for index in range(len(wrong_queries)):
            student_of[(key, index)] = rng.randrange(num_students)

    def rows() -> list[Row]:
        out: list[Row] = []
        for size in profile.database_sizes:
            instance = university_instance_with_size(size, seed=seed)
            # Screen the whole pool through the grading service in one batch:
            # reference queries are evaluated once on the shared warm session,
            # and crashing submissions are counted wrong, as the grader does.
            service = GradingService.for_instance(instance, name="hidden")
            correct_queries = {key: question.correct_query for key, question in questions.items()}
            keyed = [
                (key, index)
                for key, wrong_queries in pool.wrong_queries.items()
                for index in range(len(wrong_queries))
            ]
            graded = service.submit_batch(
                [
                    SubmissionRequest(
                        correct_queries[key],
                        pool.wrong_queries[key][index],
                        id=f"{key}/{index}",
                        explain=False,
                    )
                    for key, index in keyed
                ]
            )
            discovered = 0
            students_caught: set[int] = set()
            for (key, index), result in zip(keyed, graded):
                if result.outcome.error_kind in ("invalid_request", "internal_error"):
                    # A broken *reference* query (or an engine bug) must fail
                    # the experiment loudly, not count as a discovery.
                    raise ReproError(
                        f"table3: grading {key} failed: {result.outcome.error}"
                    )
                if not result.correct:
                    discovered += 1
                    students_caught.add(student_of[(key, index)])
            out.append(
                {
                    "num_tuples": instance.total_size(),
                    "wrong_queries_discovered": discovered,
                    "students_with_incorrect_queries": len(students_caught),
                    "total_wrong_queries_in_pool": pool.total_wrong(),
                }
            )
        return out

    return run_experiment(
        "Table 3 — |D| vs number of wrong queries discovered",
        "Wrong queries from the (mutation-generated) submission pool caught by the "
        "auto-grader at each test-database size.",
        rows,
        profile=profile.name,
        seed=seed,
    )
