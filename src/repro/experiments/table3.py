"""Table 3: database size vs number of wrong queries discovered.

For each test-database size, every wrong query in the submission pool is run
through the auto-grader; a wrong query is *discovered* when its result differs
from the reference query's result on that instance.  Larger instances exercise
more corner cases and therefore catch more wrong queries — the monotone trend
the paper reports.
"""

from __future__ import annotations

import random

from repro.datagen.university import university_instance_with_size
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, run_experiment
from repro.ra.evaluator import evaluate
from repro.workload.course import course_questions, course_submission_pool


def discovery_experiment(
    profile: ScaleProfile | str = "quick",
    *,
    seed: int = 7,
    mutants_per_question: int = 25,
    num_students: int = 141,
) -> ExperimentResult:
    """Reproduce Table 3 at the given scale profile."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    pool = course_submission_pool(seed=seed, mutants_per_question=mutants_per_question)
    questions = {question.key: question for question in course_questions()}

    # Assign every wrong query to a synthetic student so that the paper's
    # "# of students with incorrect queries" column can be reported as well.
    rng = random.Random(seed)
    student_of: dict[tuple[str, int], int] = {}
    for key, wrong_queries in pool.wrong_queries.items():
        for index in range(len(wrong_queries)):
            student_of[(key, index)] = rng.randrange(num_students)

    def rows() -> list[Row]:
        out: list[Row] = []
        for size in profile.database_sizes:
            instance = university_instance_with_size(size, seed=seed)
            reference = {
                key: evaluate(question.correct_query, instance)
                for key, question in questions.items()
            }
            discovered = 0
            students_caught: set[int] = set()
            for key, wrong_queries in pool.wrong_queries.items():
                for index, wrong in enumerate(wrong_queries):
                    try:
                        differs = not evaluate(wrong, instance).same_rows(reference[key])
                    except Exception:
                        differs = True
                    if differs:
                        discovered += 1
                        students_caught.add(student_of[(key, index)])
            out.append(
                {
                    "num_tuples": instance.total_size(),
                    "wrong_queries_discovered": discovered,
                    "students_with_incorrect_queries": len(students_caught),
                    "total_wrong_queries_in_pool": pool.total_wrong(),
                }
            )
        return out

    return run_experiment(
        "Table 3 — |D| vs number of wrong queries discovered",
        "Wrong queries from the (mutation-generated) submission pool caught by the "
        "auto-grader at each test-database size.",
        rows,
        profile=profile.name,
        seed=seed,
    )
