"""Figure 7: effectiveness of query parameterization on TPC-H Q18.

Q18 has a HAVING predicate comparing an aggregate against a constant, so the
counterexample must contain enough lineitems to clear the threshold.  The
parameterized variant (Agg-Param, the SPCP of Definition 3) lets the solver
pick a different threshold, shrinking the counterexample substantially at a
small extra solver cost — the trade-off Figure 7 reports.
"""

from __future__ import annotations

from repro.core.aggregates import smallest_counterexample_agg_basic
from repro.datagen.tpch import tpch_instance
from repro.errors import ReproError
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, mean, run_experiment
from repro.ra.evaluator import evaluate
from repro.solver.theory import AggregateSolverConfig
from repro.workload.tpch_queries import tpch_query


def parameterization_experiment(
    profile: ScaleProfile | str = "quick",
    *,
    seed: int = 1,
    query_key: str = "Q18",
    solver_time_budget: float = 15.0,
) -> ExperimentResult:
    """Reproduce Figure 7 at the given scale profile."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    instance = tpch_instance(profile.tpch_scale, seed=seed)
    config = AggregateSolverConfig(time_budget=solver_time_budget)
    query = tpch_query(query_key)
    reference_rows = evaluate(query.correct_query, instance).rows
    variants = [
        wrong
        for wrong in query.wrong_queries
        if evaluate(wrong, instance).rows != reference_rows
    ]

    def rows() -> list[Row]:
        out: list[Row] = []
        for label, parameterize in (("Agg-Basic", False), ("Agg-Param", True)):
            solver_times, sizes, statuses = [], [], set()
            for wrong in variants:
                try:
                    result = smallest_counterexample_agg_basic(
                        query.correct_query,
                        wrong,
                        instance,
                        parameterize=parameterize,
                        solver_config=config,
                    )
                except ReproError as exc:
                    statuses.add(f"failed ({type(exc).__name__})")
                    continue
                statuses.add("ok" if result.optimal else "budget exhausted")
                solver_times.append(result.timings.get("solver", 0.0))
                sizes.append(result.size)
            out.append(
                {
                    "algorithm": label,
                    "query": query.key,
                    "mean_solver_runtime_s": round(mean(solver_times), 4) if solver_times else None,
                    "mean_counterexample_size": round(mean(sizes), 2) if sizes else None,
                    "wrong_variants": len(variants),
                    "status": "; ".join(sorted(statuses)),
                }
            )
        return out

    return run_experiment(
        "Figure 7 — parameterization on TPC-H Q18",
        "Solver runtime and counterexample size with and without parameterizing the "
        "HAVING constant.",
        rows,
        profile=profile.name,
        seed=seed,
    )
