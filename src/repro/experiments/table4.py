"""Table 4: SCP (Basic over all differing tuples) vs SWP (Optσ on one tuple).

The paper's headline result for SPJUD queries: the Optσ algorithm is several
times faster than Basic while returning counterexamples of the same size.
"""

from __future__ import annotations

from repro.core.basic import smallest_counterexample_basic
from repro.core.optsigma import smallest_witness_optsigma
from repro.datagen.university import university_instance_with_size
from repro.experiments.harness import ExperimentResult, Row, ScaleProfile, mean, run_experiment
from repro.experiments.pairs import differing_pairs


def scp_vs_swp_experiment(
    profile: ScaleProfile | str = "quick", *, seed: int = 7
) -> ExperimentResult:
    """Reproduce Table 4 at the given scale profile."""
    if isinstance(profile, str):
        profile = ScaleProfile.by_name(profile)
    size = profile.database_sizes[-1]
    instance = university_instance_with_size(size, seed=seed)
    pairs = differing_pairs(instance, limit=profile.pairs_per_size, seed=seed)

    def rows() -> list[Row]:
        basic_times, basic_sizes = [], []
        opt_times, opt_sizes = [], []
        for pair in pairs:
            basic = smallest_counterexample_basic(pair.correct, pair.wrong, instance)
            basic_times.append(basic.total_time())
            basic_sizes.append(basic.size)
            opt = smallest_witness_optsigma(pair.correct, pair.wrong, instance)
            opt_times.append(opt.total_time())
            opt_sizes.append(opt.size)
        return [
            {
                "algorithm": "SCP — Basic (all differing tuples)",
                "mean_runtime_s": round(mean(basic_times), 4),
                "mean_counterexample_size": round(mean(basic_sizes), 2),
                "pairs": len(pairs),
                "num_tuples": instance.total_size(),
            },
            {
                "algorithm": "SWP — Optσ (one tuple, selection pushdown)",
                "mean_runtime_s": round(mean(opt_times), 4),
                "mean_counterexample_size": round(mean(opt_sizes), 2),
                "pairs": len(pairs),
                "num_tuples": instance.total_size(),
            },
        ]

    return run_experiment(
        "Table 4 — SCP (Basic) vs SWP (Optσ)",
        "Mean runtime and counterexample size over course query pairs on the largest "
        "instance of the profile.",
        rows,
        profile=profile.name,
        seed=seed,
    )
