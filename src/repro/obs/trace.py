"""Spans, tracers and trace propagation (stdlib only).

The tracing model is deliberately small — three concepts cover the whole
stack:

* A :class:`Span` is one timed operation: a name, a pair of ids, a wall-clock
  start and a *monotonic* duration (``perf_counter`` start-to-finish, immune
  to clock steps), plus free-form attributes and accumulated numeric metrics
  (the SAT solver adds its conflict/decision counters to whatever span is
  current).
* A :class:`Tracer` creates spans and owns what happens when they finish:
  append to a bounded :class:`TraceStore`, feed a metrics callback, remember
  slow roots.  ``tracer.span(...)`` is a context manager that also publishes
  the span as the *ambient current span* through a :class:`~contextvars.ContextVar`,
  so nested code (and code that has never heard of the tracer) can attach
  children and metrics without plumbing arguments.
* A :class:`SpanContext` is the wire form — a W3C-``traceparent``-style
  ``00-<32 hex trace id>-<16 hex span id>-01`` header — so one trace survives
  client → entry daemon → forwarded shard → worker process hops.  Spans
  created in other processes travel back as plain dicts (:meth:`Span.to_dict`)
  and are merged by trace id.

Everything ambient degrades to a no-op: :func:`span` returns a shared null
context manager when no tracer is active, and :func:`add_span_metrics`
returns immediately when no span is current, so instrumented hot paths cost
one ``ContextVar.get`` when tracing is off.
"""

from __future__ import annotations

import logging
import os
import random
import re
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, Mapping, NamedTuple

log = logging.getLogger(__name__)

#: The HTTP header carrying trace context (the W3C Trace Context name).
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

_CURRENT_SPAN: "ContextVar[Span | None]" = ContextVar("repro_current_span", default=None)
_ACTIVE_TRACER: "ContextVar[Tracer | None]" = ContextVar("repro_active_tracer", default=None)
_OPERATOR_TRACE: "ContextVar[bool]" = ContextVar("repro_operator_trace", default=False)


#: Span-id generation state: ``(pid, Random)``.  A PRNG seeded once from
#: ``os.urandom`` is ~5x cheaper per id than calling ``os.urandom`` for every
#: span (ids need uniqueness, not cryptographic strength), which matters when
#: a traced grading request emits a span per plan operator.  The pid guard
#: reseeds after ``fork`` so two processes cannot share an id stream.
_ID_STATE: "tuple[int, random.Random] | None" = None


def _new_id(nbytes: int) -> str:
    global _ID_STATE
    pid = os.getpid()
    state = _ID_STATE
    if state is None or state[0] != pid:
        state = _ID_STATE = (pid, random.Random(os.urandom(16)))
    return f"{state[1].getrandbits(nbytes * 8):0{nbytes * 2}x}"


class SpanContext(NamedTuple):
    """The propagatable identity of a span: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        """The W3C-style header value (version 00, sampled flag set)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @staticmethod
    def parse(header: str | None) -> "SpanContext | None":
        """Parse a ``traceparent`` header; junk (or absence) yields ``None``.

        Malformed context must never fail a request — a trace that cannot be
        continued is simply restarted.
        """
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        trace_id, span_id, _flags = match.groups()
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            return None  # all-zero ids are invalid per the W3C spec
        return SpanContext(trace_id=trace_id, span_id=span_id)


class Span:
    """One timed operation within a trace.

    ``start`` is wall-clock (``time.time()``) — the only timestamp comparable
    across the processes a trace crosses — while ``duration`` is measured on
    ``perf_counter`` so a clock step mid-request cannot produce negative or
    wildly wrong latencies.
    """

    __slots__ = (
        "name",
        "service",
        "context",
        "parent_id",
        "start",
        "duration",
        "status",
        "attributes",
        "metrics",
        "_perf_start",
    )

    def __init__(
        self,
        name: str,
        *,
        service: str = "",
        context: SpanContext,
        parent_id: str | None = None,
        attributes: Mapping[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.service = service
        self.context = context
        self.parent_id = parent_id
        self.start = time.time()
        self.duration: float | None = None
        self.status = "ok"
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.metrics: dict[str, float] = {}
        self._perf_start = time.perf_counter()

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    def add_metric(self, name: str, value: float) -> None:
        """Accumulate a numeric counter onto this span (sums across calls)."""
        self.metrics[name] = self.metrics.get(name, 0.0) + float(value)

    def finish(self) -> "Span":
        if self.duration is None:
            self.duration = time.perf_counter() - self._perf_start
        return self

    def to_dict(self) -> dict[str, Any]:
        """The JSON/pickle-safe wire form (crosses the worker queue as-is)."""
        out: dict[str, Any] = {
            "name": self.name,
            "service": self.service,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration if self.duration is not None else 0.0,
            "status": self.status,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        return out


class TraceStore:
    """A bounded, thread-safe, in-memory map of trace id → finished spans.

    Traces are evicted least-recently-*updated* once ``max_traces`` is
    exceeded; within one trace, spans beyond ``max_spans_per_trace`` are
    counted but dropped.  Both bounds exist so the debug endpoint can never
    become a memory leak on a busy daemon.
    """

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 512) -> None:
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[dict[str, Any]]]" = OrderedDict()
        self._dropped: dict[str, int] = {}

    def add(self, span: Mapping[str, Any]) -> None:
        trace_id = span.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = self._traces[trace_id] = []
            else:
                self._traces.move_to_end(trace_id)
            if len(spans) >= self.max_spans_per_trace:
                self._dropped[trace_id] = self._dropped.get(trace_id, 0) + 1
            else:
                spans.append(dict(span))
            while len(self._traces) > self.max_traces:
                evicted, _ = self._traces.popitem(last=False)
                self._dropped.pop(evicted, None)

    def get(self, trace_id: str) -> list[dict[str, Any]] | None:
        with self._lock:
            spans = self._traces.get(trace_id)
            return None if spans is None else list(spans)

    def snapshot(self, limit: int = 20) -> list[dict[str, Any]]:
        """The most recently updated traces, newest first."""
        with self._lock:
            items = list(self._traces.items())[-max(0, limit):]
        return [
            {
                "trace_id": trace_id,
                "spans": list(spans),
                "dropped_spans": self._dropped.get(trace_id, 0),
            }
            for trace_id, spans in reversed(items)
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


#: Sentinel distinguishing "no parent argument" (→ use the ambient current
#: span) from an explicit ``parent=None`` (→ start a new root trace).
_AMBIENT = object()


class _ActiveSpan:
    """``with``-block wrapper around a running span (see :meth:`Tracer.span`).

    Entering publishes the span (and its tracer) as the ambient context;
    exiting restores the previous context, marks the span ``error`` when the
    block raised, and finishes it through the tracer's routing.
    """

    __slots__ = ("_tracer", "_span", "_span_token", "_tracer_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span_token = _CURRENT_SPAN.set(self._span)
        self._tracer_token = _ACTIVE_TRACER.set(self._tracer)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _ACTIVE_TRACER.reset(self._tracer_token)
        _CURRENT_SPAN.reset(self._span_token)
        if exc_type is not None:
            self._span.status = "error"
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer.finish_span(self._span)
        return False


class Tracer:
    """Creates spans for one service and routes them as they finish."""

    def __init__(
        self,
        service: str,
        *,
        store: TraceStore | None = None,
        slow_threshold: float | None = None,
        slow_capacity: int = 64,
        on_span: "Callable[[Span], None] | None" = None,
    ) -> None:
        self.service = service
        self.store = store
        self.slow_threshold = slow_threshold
        self.on_span = on_span
        #: Recent slow *root* spans (duration ≥ ``slow_threshold``), newest
        #: last — the in-memory slow-request log behind ``/v1/debug/traces``.
        self.slow_spans: "deque[dict[str, Any]]" = deque(maxlen=slow_capacity)
        self._captures: list[list[dict[str, Any]]] = []
        self._capture_lock = threading.Lock()

    # -- span lifecycle ------------------------------------------------------

    def _resolve_parent(self, parent: Any) -> "Span | SpanContext | None":
        if parent is _AMBIENT:
            return _CURRENT_SPAN.get()
        return parent

    def start_span(
        self,
        name: str,
        *,
        parent: Any = _AMBIENT,
        attributes: Mapping[str, Any] | None = None,
    ) -> Span:
        """Create a running span without touching the ambient context.

        Callers that cannot use a ``with`` block (a span handed across
        callbacks) pair this with :meth:`finish_span`.
        """
        resolved = self._resolve_parent(parent)
        if resolved is None:
            context = SpanContext(trace_id=_new_id(16), span_id=_new_id(8))
            parent_id = None
        else:
            parent_ctx = resolved.context if isinstance(resolved, Span) else resolved
            context = SpanContext(trace_id=parent_ctx.trace_id, span_id=_new_id(8))
            parent_id = parent_ctx.span_id
        return Span(
            name,
            service=self.service,
            context=context,
            parent_id=parent_id,
            attributes=attributes,
        )

    def finish_span(self, span: Span, *, status: str | None = None) -> Span:
        if status is not None:
            span.status = status
        span.finish()
        self._record(span)
        return span

    def span(
        self,
        name: str,
        *,
        parent: Any = _AMBIENT,
        attributes: Mapping[str, Any] | None = None,
    ) -> "_ActiveSpan":
        """A span that is also the ambient current span inside the block.

        Returns a lightweight slotted context manager rather than a
        ``@contextmanager`` generator — this sits on the traced hot path
        (one per grading phase plus one per engine operator), where the
        generator machinery is measurable.
        """
        return _ActiveSpan(self, self.start_span(name, parent=parent, attributes=attributes))

    def emit(
        self,
        name: str,
        *,
        parent: "Span | SpanContext | None",
        start: float,
        duration: float,
        attributes: Mapping[str, Any] | None = None,
        status: str = "ok",
    ) -> Span:
        """Record an already-measured span (post-hoc operator instrumentation).

        The engine's plan analyzer times operators itself and converts its
        records to spans after the fact; ``start``/``duration`` are taken
        verbatim instead of being measured here.
        """
        span = self.start_span(name, parent=parent, attributes=attributes)
        span.start = start
        span.duration = max(0.0, float(duration))
        span.status = status
        self._record(span)
        return span

    # -- capture (per-request span collection in worker processes) -----------

    @contextmanager
    def capture(self) -> Iterator[list[dict[str, Any]]]:
        """Collect every span finished on this tracer while the block runs.

        The worker process wraps one traced grade in a capture and ships the
        collected dicts back over the result queue alongside the envelope.
        """
        collected: list[dict[str, Any]] = []
        with self._capture_lock:
            self._captures.append(collected)
        try:
            yield collected
        finally:
            with self._capture_lock:
                self._captures.remove(collected)

    # -- routing -------------------------------------------------------------

    def _record(self, span: Span) -> None:
        payload = span.to_dict()
        if self.store is not None:
            self.store.add(payload)
        with self._capture_lock:
            for collected in self._captures:
                collected.append(payload)
        if (
            self.slow_threshold is not None
            and span.parent_id is None
            and span.duration is not None
            and span.duration >= self.slow_threshold
        ):
            self.slow_spans.append(payload)
            log.warning(
                "slow request: %s took %.3fs (trace %s)",
                span.name,
                span.duration,
                span.trace_id,
                extra={"trace_id": span.trace_id, "span_id": span.span_id},
            )
        if self.on_span is not None:
            try:
                self.on_span(span)
            except Exception:  # pragma: no cover - observability must not throw
                log.debug("span callback failed for %s", span.name, exc_info=True)


# ---------------------------------------------------------------------------
# Ambient helpers (safe no-ops when nothing is being traced)
# ---------------------------------------------------------------------------


def current_span() -> Span | None:
    """The span currently ambient on this thread/task, if any."""
    return _CURRENT_SPAN.get()


def active_tracer() -> Tracer | None:
    """The tracer that opened the current ambient span, if any."""
    return _ACTIVE_TRACER.get()


def current_traceparent() -> str | None:
    """The ``traceparent`` header value for the ambient span, if any."""
    span = _CURRENT_SPAN.get()
    return None if span is None else span.context.to_traceparent()


def add_span_metrics(**metrics: float) -> None:
    """Accumulate numeric counters onto the ambient span (no-op without one).

    This is the hook deep subsystems use without depending on any tracer:
    the SAT solver reports per-solve conflict/decision/propagation deltas
    here, and they land on whatever span wraps the counterexample search.
    """
    span = _CURRENT_SPAN.get()
    if span is None:
        return
    for name, value in metrics.items():
        span.add_metric(name, value)


class _NullSpan:
    """Shared no-op context manager for :func:`span` without an active tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attributes: Any):
    """A child span on the active tracer, or a free no-op when there is none.

    The cost when tracing is off is one ``ContextVar.get`` and a shared
    object — cheap enough for per-grade (not per-row) instrumentation points.
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, attributes=attributes or None)


@contextmanager
def operator_trace(enabled: bool = True) -> Iterator[None]:
    """Request per-operator engine spans for work done inside the block.

    Separate from span ambience on purpose: operator instrumentation runs
    the analyzer on every plan execution, which is cheap but not free, so it
    is opt-in per request (``?trace=1``) rather than implied by any span.
    """
    token = _OPERATOR_TRACE.set(bool(enabled))
    try:
        yield
    finally:
        _OPERATOR_TRACE.reset(token)


def operator_trace_enabled() -> bool:
    return _OPERATOR_TRACE.get()


__all__ = [
    "TRACEPARENT_HEADER",
    "Span",
    "SpanContext",
    "TraceStore",
    "Tracer",
    "active_tracer",
    "add_span_metrics",
    "current_span",
    "current_traceparent",
    "operator_trace",
    "operator_trace_enabled",
    "span",
]
