"""A minimal parser/validator for the Prometheus text exposition format.

Covers the slice :mod:`repro.server.metrics` renders (``version=0.0.4``):
``# HELP``/``# TYPE`` headers, labelled samples with escaped label values
(``\\\\``, ``\\"``, ``\\n``), and histogram families (``_bucket``/``_sum``/
``_count`` with an ``le="+Inf"`` terminal bucket).

Used two ways: the exposition-edge-case tests round-trip rendered text
through it, and the CI ``obs-smoke`` job validates a live ``/metrics``
scrape with it.  :func:`parse_exposition` raises :class:`ValueError` on any
malformed line, unknown family, or inconsistent histogram, so "the scrape
parses" is a real assertion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


@dataclass
class Sample:
    """One sample line: ``name{labels} value``."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """One declared metric family with its samples in document order."""

    name: str
    kind: str
    help: str
    samples: list[Sample] = field(default_factory=list)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _parse_labels(body: str) -> dict[str, str]:
    """Parse the inside of a ``{...}`` label block, honouring escapes."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            raise ValueError(f"label without '=' in {body!r}")
        name = body[i:eq]
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"invalid label name {name!r}")
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ValueError(f"label value for {name!r} is not quoted")
        i = eq + 2
        chars: list[str] = []
        while True:
            if i >= len(body):
                raise ValueError(f"unterminated label value for {name!r}")
            ch = body[i]
            if ch == "\\":
                if i + 1 >= len(body):
                    raise ValueError(f"dangling escape in label {name!r}")
                nxt = body[i + 1]
                if nxt not in _ESCAPES:
                    raise ValueError(f"unknown escape \\{nxt} in label {name!r}")
                chars.append(_ESCAPES[nxt])
                i += 2
            elif ch == '"':
                i += 1
                break
            elif ch == "\n":
                raise ValueError(f"raw newline in label {name!r}")
            else:
                chars.append(ch)
                i += 1
        labels[name] = "".join(chars)
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"expected ',' between labels in {body!r}")
            i += 1
    return labels


def _family_for(name: str, families: dict[str, MetricFamily]) -> MetricFamily:
    family = families.get(name)
    if family is not None:
        return family
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = families.get(name[: -len(suffix)])
            if base is not None and base.kind == "histogram":
                return base
    raise ValueError(f"sample {name!r} has no declared family")


def parse_exposition(text: str) -> dict[str, MetricFamily]:
    """Parse (and validate) one exposition document into its families."""
    families: dict[str, MetricFamily] = {}
    declared_type: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        try:
            if line.startswith("# HELP "):
                _, _, rest = line.partition("# HELP ")
                name, _, help_text = rest.partition(" ")
                if name in families:
                    raise ValueError(f"family {name!r} declared twice")
                families[name] = MetricFamily(name=name, kind="untyped", help=help_text)
            elif line.startswith("# TYPE "):
                _, _, rest = line.partition("# TYPE ")
                name, _, kind = rest.partition(" ")
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"unknown metric type {kind!r}")
                if name not in families:
                    families[name] = MetricFamily(name=name, kind=kind, help="")
                families[name].kind = kind
                declared_type.add(name)
            elif line.startswith("#"):
                continue  # comment
            else:
                if line != line.strip():
                    raise ValueError("sample line has leading/trailing whitespace")
                if "{" in line:
                    name, _, rest = line.partition("{")
                    body, closer, value_text = rest.rpartition("} ")
                    if closer != "} ":
                        raise ValueError("malformed label block")
                    labels = _parse_labels(body)
                else:
                    name, _, value_text = line.rpartition(" ")
                    labels = {}
                if not name:
                    raise ValueError("sample without a metric name")
                value = _parse_value(value_text)
                _family_for(name, families).samples.append(Sample(name, labels, value))
        except ValueError as exc:
            raise ValueError(f"line {number}: {exc} [{line!r}]") from None
    _validate_histograms(families)
    return families


def _validate_histograms(families: dict[str, MetricFamily]) -> None:
    for family in families.values():
        if family.kind != "histogram":
            continue
        by_series: dict[tuple, dict[str, list[Sample] | Sample]] = {}
        for sample in family.samples:
            labels = {k: v for k, v in sample.labels.items() if k != "le"}
            key = tuple(sorted(labels.items()))
            entry = by_series.setdefault(key, {"buckets": []})
            if sample.name.endswith("_bucket"):
                if "le" not in sample.labels:
                    raise ValueError(f"{sample.name} bucket without le label")
                entry["buckets"].append(sample)  # type: ignore[union-attr]
            elif sample.name.endswith("_count"):
                entry["count"] = sample
            elif sample.name.endswith("_sum"):
                entry["sum"] = sample
        for key, entry in by_series.items():
            buckets: list[Sample] = entry["buckets"]  # type: ignore[assignment]
            if not buckets:
                raise ValueError(f"histogram {family.name}{dict(key)} has no buckets")
            bounds = [_parse_value(b.labels["le"]) for b in buckets]
            if bounds != sorted(bounds):
                raise ValueError(f"histogram {family.name} buckets out of order")
            if bounds[-1] != math.inf:
                raise ValueError(f"histogram {family.name} missing le=\"+Inf\" bucket")
            counts = [b.value for b in buckets]
            if counts != sorted(counts):
                raise ValueError(f"histogram {family.name} buckets not cumulative")
            count = entry.get("count")
            if not isinstance(count, Sample):
                raise ValueError(f"histogram {family.name} missing _count")
            if count.value != counts[-1]:
                raise ValueError(
                    f"histogram {family.name}: _count {count.value} != "
                    f"+Inf bucket {counts[-1]}"
                )
            if not isinstance(entry.get("sum"), Sample):
                raise ValueError(f"histogram {family.name} missing _sum")


__all__ = ["MetricFamily", "Sample", "parse_exposition"]
