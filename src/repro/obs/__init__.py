"""Observability: tracing, EXPLAIN ANALYZE, JSON logging, exposition parsing.

Stdlib-only.  :mod:`repro.obs.trace` is import-light (no repro imports) so
any layer — engine, solver, server — can depend on it without cycles.
"""

from repro.obs.analyze import (
    ExplainAnalysis,
    OperatorRecord,
    PlanAnalyzer,
    emit_operator_spans,
    q_error,
)
from repro.obs.logging import JsonLogFormatter, configure_json_logging
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    Span,
    SpanContext,
    TraceStore,
    Tracer,
    active_tracer,
    add_span_metrics,
    current_span,
    current_traceparent,
    operator_trace,
    operator_trace_enabled,
    span,
)

__all__ = [
    "TRACEPARENT_HEADER",
    "Span",
    "SpanContext",
    "TraceStore",
    "Tracer",
    "active_tracer",
    "add_span_metrics",
    "current_span",
    "current_traceparent",
    "operator_trace",
    "operator_trace_enabled",
    "span",
    "JsonLogFormatter",
    "configure_json_logging",
    "ExplainAnalysis",
    "OperatorRecord",
    "PlanAnalyzer",
    "emit_operator_spans",
    "q_error",
]
