"""EXPLAIN ANALYZE: per-operator runtime instrumentation for the plan engine.

A :class:`PlanAnalyzer` shadows :meth:`PlanExecutor.run_cached` — the single
choke point every operator (python-dict and columnar alike) funnels through —
and records, per plan node execution: wall time, actual output rows, whether
the result came from the session memo (cache attribution), whether the
columnar pipeline produced it, and whether a hash-index fast path served a
build side.  The records form a tree mirroring the executed plan.

:class:`ExplainAnalysis` then joins those actuals against
:class:`~repro.engine.optimizer.CardinalityEstimator` predictions to compute
per-operator **q-error** — ``max(est/actual, actual/est)``, the standard
scale-free measure of estimation quality (1.0 = perfect).  This is the
feedback loop the optimizer work needs: the estimator's numbers checked
against what actually ran, on every operator of every analyzed query.

:func:`emit_operator_spans` converts the same records into trace spans so a
``?trace=1`` grading request carries engine operators in its trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.trace import Span, SpanContext, Tracer, active_tracer, current_span


def q_error(estimated: float | None, actual: float) -> float | None:
    """The q-error of a cardinality estimate: ``max(est/act, act/est)`` ≥ 1.

    Both sides are clamped to 1 row first, the usual convention so empty
    results do not divide by zero and sub-row fractional estimates do not
    produce spurious error.  ``None`` estimate → ``None`` (nothing to grade).
    """
    if estimated is None:
        return None
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


def _describe(plan: Any) -> str:
    """A short human label for a plan node (defensive: missing attrs → '')."""
    relation = getattr(plan, "relation", None)
    if relation is not None:
        return str(relation)
    left_key = getattr(plan, "left_key", None)
    right_key = getattr(plan, "right_key", None)
    if left_key is not None and right_key is not None:
        return f"key {tuple(left_key)}={tuple(right_key)}"
    predicate = getattr(plan, "predicate", None)
    if predicate is not None:
        text = repr(predicate)
        return text if len(text) <= 60 else text[:57] + "..."
    indexes = getattr(plan, "indexes", None)
    if indexes is not None:
        return f"cols {tuple(indexes)}"
    group = getattr(plan, "group_indexes", None)
    if group is not None:
        return f"group by {tuple(group)}"
    return ""


@dataclass(slots=True)
class OperatorRecord:
    """One executed plan-node occurrence, with its children."""

    plan: Any
    op: str
    detail: str
    start: float = 0.0
    seconds: float = 0.0
    actual_rows: int = 0
    cached: bool = False
    columnar: bool = False
    status: str = "ok"
    est_rows: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    children: list["OperatorRecord"] = field(default_factory=list)

    @property
    def q_error(self) -> float | None:
        return q_error(self.est_rows, self.actual_rows)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "op": self.op,
            "detail": self.detail,
            "seconds": self.seconds,
            "actual_rows": self.actual_rows,
            "cached": self.cached,
            "columnar": self.columnar,
            "status": self.status,
        }
        if self.est_rows is not None:
            out["est_rows"] = self.est_rows
            out["q_error"] = self.q_error
        if self.extra:
            out.update(self.extra)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class PlanAnalyzer:
    """Collects an operator tree while a :class:`PlanExecutor` runs a plan.

    The executor delegates ``run_cached`` here when an analyzer is attached;
    :meth:`run` replicates the memo protocol exactly (same key function, same
    get-or-compute) so analyzed execution returns bit-identical results —
    the only difference is the timing/row bookkeeping around ``_execute``.
    """

    def __init__(
        self, meta_cache: "dict[int, tuple[Any, str, str]] | None" = None
    ) -> None:
        self.roots: list[OperatorRecord] = []
        self._stack: list[OperatorRecord] = []
        #: Optional identity-keyed ``{id(plan): (plan, op, detail)}`` cache.
        #: Describing a node (``repr`` of predicates, mostly) is plan-static,
        #: so sessions that cache physical plans share one long-lived dict
        #: across analyzed executions; entries pin the node to keep ids valid.
        self._meta = meta_cache

    def run(self, executor: Any, plan: Any):
        from repro.engine.physical import plan_memo_key

        meta = None if self._meta is None else self._meta.get(id(plan))
        if meta is not None and meta[0] is plan:
            op, detail = meta[1], meta[2]
        else:
            op = type(plan).__name__.removesuffix("Op")
            detail = _describe(plan)
            if self._meta is not None:
                self._meta[id(plan)] = (plan, op, detail)
        record = OperatorRecord(plan=plan, op=op, detail=detail)
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)
        self._stack.append(record)
        record.start = time.time()
        begin = time.perf_counter()
        try:
            key = plan_memo_key(plan, executor.params, executor.param_refs)
            if key is None:
                result = executor._execute(plan)
            else:
                cached = executor.memo.get(key)
                if cached is None:
                    result = executor._execute(plan)
                    executor.memo[key] = result
                else:
                    record.cached = True
                    result = cached
        except BaseException:
            record.status = "error"
            raise
        finally:
            record.seconds = time.perf_counter() - begin
            self._stack.pop()
        record.actual_rows = len(result)
        record.columnar = not isinstance(result, dict)  # ColumnBatch result
        return result

    def note(self, **attrs: Any) -> None:
        """Attach extra attributes to the operator currently executing.

        The hash-index fast paths in ``physical.py``/``columnar.py`` call
        this with ``from_index=True`` when a join build side was served from
        a prebuilt relation index instead of being materialized.
        """
        if self._stack:
            self._stack[-1].extra.update(attrs)


@dataclass
class ExplainAnalysis:
    """The finished EXPLAIN ANALYZE result for one executed expression."""

    roots: list[OperatorRecord]
    output_rows: int
    total_seconds: float

    @staticmethod
    def build(
        analyzer: PlanAnalyzer,
        estimator: Any | None,
        *,
        output_rows: int,
        total_seconds: float,
    ) -> "ExplainAnalysis":
        """Attach estimator predictions to the analyzer's operator tree."""
        if estimator is not None:

            def annotate(record: OperatorRecord) -> None:
                try:
                    record.est_rows = float(estimator.plan_stats(record.plan).rows)
                except Exception:
                    record.est_rows = None  # estimator cannot cost this node
                for child in record.children:
                    annotate(child)

            for root in analyzer.roots:
                annotate(root)
        return ExplainAnalysis(
            roots=analyzer.roots,
            output_rows=output_rows,
            total_seconds=total_seconds,
        )

    def max_q_error(self) -> float | None:
        worst: float | None = None

        def visit(record: OperatorRecord) -> None:
            nonlocal worst
            qe = record.q_error
            if qe is not None and (worst is None or qe > worst):
                worst = qe
            for child in record.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return worst

    def render(self) -> str:
        """An ASCII operator tree: actual vs estimated rows with q-error."""
        lines = [
            f"EXPLAIN ANALYZE  ({self.output_rows} rows, "
            f"{self.total_seconds * 1000:.2f} ms)"
        ]

        def visit(record: OperatorRecord, depth: int) -> None:
            parts = [f"actual={record.actual_rows}"]
            if record.est_rows is not None:
                parts.append(f"est={record.est_rows:.0f}")
                qe = record.q_error
                if qe is not None:
                    parts.append(f"q-err={qe:.2f}")
            parts.append(f"time={record.seconds * 1000:.2f}ms")
            if record.cached:
                parts.append("cached")
            if record.columnar:
                parts.append("columnar")
            if record.extra.get("from_index"):
                parts.append("index")
            if record.status != "ok":
                parts.append(record.status)
            label = record.op if not record.detail else f"{record.op}({record.detail})"
            lines.append("  " * depth + f"-> {label}  [{', '.join(parts)}]")
            for child in record.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 1)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "output_rows": self.output_rows,
            "total_seconds": self.total_seconds,
            "max_q_error": self.max_q_error(),
            "operators": [root.to_dict() for root in self.roots],
        }


def emit_operator_spans(
    analyzer: PlanAnalyzer,
    estimator: Any | None = None,
    *,
    tracer: Tracer | None = None,
    parent: "Span | SpanContext | None" = None,
    est_cache: "dict[int, tuple[Any, float | None]] | None" = None,
) -> int:
    """Record the analyzer's operator tree as spans on the (ambient) tracer.

    Defaults to the active tracer and current span, so the engine can emit
    operator spans under whatever request span happens to be open without
    knowing who opened it.  Returns the number of spans emitted.

    ``est_cache`` memoizes estimates per plan-node *identity* across calls
    (the entry pins the node so its id cannot be recycled).  Plan nodes hash
    structurally — an O(subtree) cost per ``plan_stats`` lookup that the hot
    traced-grading path cannot afford on every request — so callers that
    cache physical plans (the engine session) pass a long-lived dict here.
    """
    tracer = tracer if tracer is not None else active_tracer()
    if tracer is None:
        return 0
    parent = parent if parent is not None else current_span()
    if estimator is not None:

        def annotate(record: OperatorRecord) -> None:
            if record.est_rows is None:
                hit = None if est_cache is None else est_cache.get(id(record.plan))
                if hit is not None and hit[0] is record.plan:
                    record.est_rows = hit[1]
                else:
                    try:
                        record.est_rows = float(
                            estimator.plan_stats(record.plan).rows
                        )
                    except Exception:
                        record.est_rows = None
                    if est_cache is not None:
                        est_cache[id(record.plan)] = (record.plan, record.est_rows)
            for child in record.children:
                annotate(child)

        for root in analyzer.roots:
            annotate(root)
    emitted = 0

    def visit(record: OperatorRecord, span_parent: Any) -> None:
        nonlocal emitted
        attributes: dict[str, Any] = {
            "rows": record.actual_rows,
            "cached": record.cached,
            "columnar": record.columnar,
        }
        if record.detail:
            attributes["detail"] = record.detail
        if record.est_rows is not None:
            attributes["est_rows"] = record.est_rows
            qe = record.q_error
            if qe is not None:
                attributes["q_error"] = qe
        attributes.update(record.extra)
        span = tracer.emit(
            f"op.{record.op}",
            parent=span_parent,
            start=record.start,
            duration=record.seconds,
            attributes=attributes,
            status=record.status,
        )
        emitted += 1
        for child in record.children:
            visit(child, span)

    for root in analyzer.roots:
        visit(root, parent)
    return emitted


__all__ = [
    "ExplainAnalysis",
    "OperatorRecord",
    "PlanAnalyzer",
    "emit_operator_spans",
    "q_error",
]
