"""Structured JSON logging with trace/span ids injected (stdlib only).

One formatter, one convenience installer.  Every record becomes a single
JSON object per line with the ambient trace context attached, so a log line
written anywhere inside a traced request can be joined back to its trace —
``grep <trace_id>`` across daemon logs reconstructs a request's story.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

from repro.obs.trace import current_span

#: Attributes every LogRecord carries; anything else was passed via
#: ``extra=`` and is worth serializing.
_STANDARD_RECORD_KEYS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """Format records as one JSON object per line, with trace context."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        # Explicit extra= fields win; otherwise fall back to the ambient span.
        for key, value in record.__dict__.items():
            if key in _STANDARD_RECORD_KEYS:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if "trace_id" not in payload:
            span = current_span()
            if span is not None:
                payload["trace_id"] = span.trace_id
                payload["span_id"] = span.span_id
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def configure_json_logging(
    level: int = logging.INFO, stream: TextIO | None = None
) -> logging.Handler:
    """Install a JSON handler on the root logger (idempotent per stream).

    Returns the handler so embedding callers (tests) can remove it again.
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    root = logging.getLogger()
    root.addHandler(handler)
    if root.level == logging.NOTSET or root.level > level:
        root.setLevel(level)
    return handler


__all__ = ["JsonLogFormatter", "configure_json_logging"]
