"""Provenance for aggregate queries (§5 of the paper).

Following Amsterdamer et al., tuples contribute *symbolically* to aggregate
values: an aggregate such as ``AVG(grade)`` over a group becomes a symbolic
expression ``t4⊗100 +_AVG t5⊗75`` whose value depends on which contributing
tuples are kept in the counterexample.  HAVING predicates over aggregates
become symbolic comparisons, and constants in those comparisons may be
replaced by integer *parameters* for the Smallest Parameterized
Counterexample Problem (Definition 3).

The module supports the "aggregate-at-top" query form the paper's Agg-Basic
algorithm targets::

    [Projection] [Selection over aggregates/group keys]* GroupBy (SPJUD core)

Queries whose aggregation is nested more deeply are handled by the heuristic
algorithm (Agg-Opt, Algorithm 3) in :mod:`repro.core.aggregates`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.catalog.instance import DatabaseInstance, Values
from repro.catalog.schema import RelationSchema
from repro.errors import NotApplicableError
from repro.provenance.annotate import AnnotatedRelation, ProvenanceEvaluator
from repro.provenance.boolexpr import Assignment, BoolExpr, bor_all
from repro.ra.ast import (
    AggregateFunction,
    AggregateSpec,
    GroupBy,
    Projection,
    RAExpression,
    Rename,
    Selection,
)
from repro.ra.predicates import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    TruePredicate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.session import EngineSession

ParamValues = Mapping[str, Any]

_FLOAT_TOLERANCE = 1e-9


# ---------------------------------------------------------------------------
# Symbolic numeric expressions
# ---------------------------------------------------------------------------


class NumExpr:
    """A numeric expression whose value depends on the kept-tuple assignment."""

    def evaluate(self, assignment: Assignment, params: ParamValues) -> Any:
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        return frozenset()

    def parameters(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class NumConst(NumExpr):
    """A constant numeric (or string, for group-key comparisons) value."""

    value: Any

    def evaluate(self, assignment: Assignment, params: ParamValues) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class NumParam(NumExpr):
    """An integer parameter chosen by the solver (parameterized queries)."""

    name: str

    def evaluate(self, assignment: Assignment, params: ParamValues) -> Any:
        if self.name not in params:
            raise NotApplicableError(f"unbound parameter @{self.name}")
        return params[self.name]

    def parameters(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class SymbolicAggregate(NumExpr):
    """An aggregate over symbolic contributions ``(provenance, value)``.

    A contribution participates when its provenance expression is true under
    the assignment.  ``COUNT`` of an empty set is 0; all other aggregates of
    an empty set are ``None`` (SQL NULL).
    """

    func: AggregateFunction
    contributions: tuple[tuple[BoolExpr, Any], ...]

    def included_values(self, assignment: Assignment) -> list[Any]:
        return [
            value
            for condition, value in self.contributions
            if value is not None and condition.evaluate(assignment)
        ]

    def evaluate(self, assignment: Assignment, params: ParamValues) -> Any:
        values = self.included_values(assignment)
        if self.func is AggregateFunction.COUNT:
            return len(values)
        if not values:
            return None
        if self.func is AggregateFunction.SUM:
            return sum(values)
        if self.func is AggregateFunction.AVG:
            return sum(values) / len(values)
        if self.func is AggregateFunction.MIN:
            return min(values)
        if self.func is AggregateFunction.MAX:
            return max(values)
        raise NotApplicableError(f"unsupported aggregate {self.func}")  # pragma: no cover

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for condition, _ in self.contributions:
            result |= condition.variables()
        return result

    def __str__(self) -> str:
        terms = " + ".join(f"{cond}⊗{value}" for cond, value in self.contributions)
        return f"{self.func.value.upper()}[{terms}]"


# ---------------------------------------------------------------------------
# Symbolic constraints
# ---------------------------------------------------------------------------


class AggConstraint:
    """A Boolean constraint over tuple variables, parameters and aggregates."""

    def evaluate(self, assignment: Assignment, params: ParamValues) -> bool:
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        return frozenset()

    def parameters(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class BoolCondition(AggConstraint):
    """Lift a Boolean provenance expression into the aggregate constraint language."""

    expression: BoolExpr

    def evaluate(self, assignment: Assignment, params: ParamValues) -> bool:
        return self.expression.evaluate(assignment)

    def variables(self) -> frozenset[str]:
        return self.expression.variables()

    def __str__(self) -> str:
        return str(self.expression)


@dataclass(frozen=True)
class AggComparison(AggConstraint):
    """``left op right`` with SQL semantics: NULL operands never satisfy it."""

    op: str
    left: NumExpr
    right: NumExpr

    def evaluate(self, assignment: Assignment, params: ParamValues) -> bool:
        left = self.left.evaluate(assignment, params)
        right = self.right.evaluate(assignment, params)
        if left is None or right is None:
            return False
        if self.op == "=":
            return _values_equal(left, right)
        if self.op == "!=":
            return not _values_equal(left, right)
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        raise NotApplicableError(f"unsupported comparison operator {self.op!r}")

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def parameters(self) -> frozenset[str]:
        return self.left.parameters() | self.right.parameters()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class ValuesDiffer(AggConstraint):
    """True when the two values are *distinct* (NULL is distinct from non-NULL)."""

    left: NumExpr
    right: NumExpr

    def evaluate(self, assignment: Assignment, params: ParamValues) -> bool:
        left = self.left.evaluate(assignment, params)
        right = self.right.evaluate(assignment, params)
        if left is None and right is None:
            return False
        if left is None or right is None:
            return True
        return not _values_equal(left, right)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def parameters(self) -> frozenset[str]:
        return self.left.parameters() | self.right.parameters()

    def __str__(self) -> str:
        return f"({self.left} ≠ {self.right})"


@dataclass(frozen=True)
class AggAnd(AggConstraint):
    operands: tuple[AggConstraint, ...]

    def evaluate(self, assignment: Assignment, params: ParamValues) -> bool:
        return all(op.evaluate(assignment, params) for op in self.operands)

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def parameters(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.parameters()
        return result

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class AggOr(AggConstraint):
    operands: tuple[AggConstraint, ...]

    def evaluate(self, assignment: Assignment, params: ParamValues) -> bool:
        return any(op.evaluate(assignment, params) for op in self.operands)

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def parameters(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.parameters()
        return result

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class AggNot(AggConstraint):
    operand: AggConstraint

    def evaluate(self, assignment: Assignment, params: ParamValues) -> bool:
        return not self.operand.evaluate(assignment, params)

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def parameters(self) -> frozenset[str]:
        return self.operand.parameters()

    def __str__(self) -> str:
        return f"¬{self.operand}"


@dataclass(frozen=True)
class AggTrue(AggConstraint):
    def evaluate(self, assignment: Assignment, params: ParamValues) -> bool:
        return True

    def __str__(self) -> str:
        return "⊤"


def agg_and(operands: Sequence[AggConstraint]) -> AggConstraint:
    flattened = [op for op in operands if not isinstance(op, AggTrue)]
    if not flattened:
        return AggTrue()
    if len(flattened) == 1:
        return flattened[0]
    return AggAnd(tuple(flattened))


def agg_or(operands: Sequence[AggConstraint]) -> AggConstraint:
    if not operands:
        raise NotApplicableError("empty disjunction in aggregate constraint")
    if len(operands) == 1:
        return operands[0]
    return AggOr(tuple(operands))


def _values_equal(left: Any, right: Any) -> bool:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return math.isclose(float(left), float(right), rel_tol=_FLOAT_TOLERANCE, abs_tol=_FLOAT_TOLERANCE)
    return left == right


# ---------------------------------------------------------------------------
# Aggregate-at-top query decomposition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateQueryForm:
    """A query decomposed as wrappers over a single GroupBy over an SPJUD core."""

    core: RAExpression
    group_by: GroupBy
    wrappers: tuple[RAExpression, ...]  # outermost first; Selection/Projection/Rename only
    output_schema: RelationSchema


def decompose_aggregate_query(
    expression: RAExpression, schema_provider
) -> AggregateQueryForm:
    """Decompose an aggregate-at-top query or raise :class:`NotApplicableError`.

    ``schema_provider`` is the :class:`~repro.catalog.schema.DatabaseSchema`
    used to compute the output schema.
    """
    wrappers: list[RAExpression] = []
    node = expression
    while isinstance(node, (Selection, Projection, Rename)):
        wrappers.append(node)
        node = node.children()[0]
    if not isinstance(node, GroupBy):
        raise NotApplicableError(
            "query is not in aggregate-at-top form (expected GroupBy below "
            "selections/projections, found "
            f"{type(node).__name__})"
        )
    group_by = node
    core = group_by.child
    for descendant in core.walk():
        if isinstance(descendant, GroupBy):
            raise NotApplicableError("nested aggregation is not supported by Agg-Basic")
    return AggregateQueryForm(
        core=core,
        group_by=group_by,
        wrappers=tuple(wrappers),
        output_schema=expression.output_schema(schema_provider),
    )


def is_aggregate_at_top(expression: RAExpression, schema_provider) -> bool:
    """True when :func:`decompose_aggregate_query` accepts the expression."""
    try:
        decompose_aggregate_query(expression, schema_provider)
    except NotApplicableError:
        return False
    return True


# ---------------------------------------------------------------------------
# Aggregate provenance computation
# ---------------------------------------------------------------------------


@dataclass
class GroupAnnotation:
    """Provenance of one output group of an aggregate-at-top query."""

    #: Values of the non-aggregate output columns (the group identity used to
    #: match groups across the reference and test queries).
    key: Values
    #: Group presence: at least one contributing core row is kept.
    presence: BoolExpr
    #: Presence plus all HAVING conditions (symbolic).
    condition: AggConstraint
    #: Symbolic value of every *output* column, keyed by output column name.
    #: Non-aggregate columns are constants.
    outputs: dict[str, NumExpr] = field(default_factory=dict)

    def variables(self) -> frozenset[str]:
        result = self.presence.variables() | self.condition.variables()
        for expr in self.outputs.values():
            result |= expr.variables()
        return result


@dataclass
class AggregateAnnotation:
    """Provenance-annotated result of an aggregate-at-top query."""

    schema: RelationSchema
    #: Output column names that identify a group (non-aggregate columns).
    key_columns: tuple[str, ...]
    #: Output column names carrying aggregate values.
    value_columns: tuple[str, ...]
    groups: dict[Values, GroupAnnotation] = field(default_factory=dict)

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for group in self.groups.values():
            result |= group.variables()
        return result


def annotate_aggregate_query(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
    session: "EngineSession | None" = None,
) -> AggregateAnnotation:
    """Compute aggregate provenance for an aggregate-at-top query.

    ``session`` (when bound to this very instance) shares the caller's engine
    caches, so the SPJUD core's scans and subplans are not recomputed per
    grading call.
    """
    params = params or {}
    form = decompose_aggregate_query(expression, instance.schema)
    if session is not None and session.instance is instance:
        core_schema_, core_rows = session.annotated_rows(form.core, params)
        core_annotated = AnnotatedRelation(core_schema_, core_rows)
    else:
        core_annotated = ProvenanceEvaluator(instance, params).annotated(form.core)
    core_schema = core_annotated.schema

    group_idx = [core_schema.index_of(name) for name in form.group_by.group_by]
    grouped: dict[Values, list[tuple[Values, BoolExpr]]] = {}
    for row, expr in core_annotated.items():
        grouped.setdefault(tuple(row[i] for i in group_idx), []).append((row, expr))

    # Columns produced by the GroupBy node, before any wrappers.
    gb_columns = list(form.group_by.group_by) + [spec.alias for spec in form.group_by.aggregates]
    annotations: list[tuple[dict[str, NumExpr], dict[str, Any], BoolExpr]] = []
    for key, members in grouped.items():
        presence = bor_all(expr for _, expr in members)
        symbolic: dict[str, NumExpr] = {}
        concrete: dict[str, Any] = {}
        for name, value in zip(form.group_by.group_by, key):
            concrete[name] = value
            symbolic[name] = NumConst(value)
        for spec in form.group_by.aggregates:
            symbolic[spec.alias] = _symbolic_aggregate(spec, core_schema, members)
        annotations.append((symbolic, concrete, presence))

    groups: dict[Values, GroupAnnotation] = {}
    key_columns, value_columns, output_columns = _output_column_split(form, gb_columns)
    for symbolic, concrete, presence in annotations:
        condition: AggConstraint = BoolCondition(presence)
        columns = dict(symbolic)
        # Apply wrappers innermost-first (they were collected outermost-first).
        skip = False
        for wrapper in reversed(form.wrappers):
            if isinstance(wrapper, Selection):
                converted = _convert_predicate(wrapper.predicate, columns, concrete, params)
                if isinstance(converted, bool):
                    if not converted:
                        skip = True
                        break
                else:
                    condition = agg_and([condition, converted])
            elif isinstance(wrapper, Projection):
                new_columns: dict[str, NumExpr] = {}
                new_concrete: dict[str, Any] = {}
                for column, out_name in zip(wrapper.columns, wrapper.output_names()):
                    new_columns[out_name] = columns[column]
                    if column in concrete:
                        new_concrete[out_name] = concrete[column]
                columns = new_columns
                concrete = new_concrete
            elif isinstance(wrapper, Rename):
                columns, concrete = _apply_rename(wrapper, columns, concrete)
        if skip:
            continue
        key = tuple(concrete[name] for name in key_columns)
        outputs = {name: columns[name] for name in output_columns}
        existing = groups.get(key)
        annotation = GroupAnnotation(key=key, presence=presence, condition=condition, outputs=outputs)
        if existing is None:
            groups[key] = annotation
        else:
            # Two distinct grouping keys collapse to the same projected key:
            # either one being present (with its own condition) witnesses it.
            groups[key] = GroupAnnotation(
                key=key,
                presence=bor_all([existing.presence, presence]),
                condition=agg_or([existing.condition, annotation.condition]),
                outputs=existing.outputs,
            )
    return AggregateAnnotation(
        schema=form.output_schema,
        key_columns=key_columns,
        value_columns=value_columns,
        groups=groups,
    )


def _output_column_split(
    form: AggregateQueryForm, gb_columns: list[str]
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
    """Split output columns into group-identity columns and aggregate columns."""
    aggregate_aliases = {spec.alias for spec in form.group_by.aggregates}
    # Track renames through the wrappers to know which output columns are aggregates.
    mapping = {name: name for name in gb_columns}
    for wrapper in reversed(form.wrappers):
        if isinstance(wrapper, Projection):
            mapping = {
                out_name: mapping[column]
                for column, out_name in zip(wrapper.columns, wrapper.output_names())
                if column in mapping
            }
        elif isinstance(wrapper, Rename):
            if wrapper.prefix is not None:
                mapping = {f"{wrapper.prefix}.{k}": v for k, v in mapping.items()}
            else:
                rename_map = dict(wrapper.attribute_mapping)
                mapping = {rename_map.get(k, k): v for k, v in mapping.items()}
    output_columns = tuple(form.output_schema.attribute_names)
    key_columns = tuple(
        name for name in output_columns if mapping.get(name, name) not in aggregate_aliases
    )
    value_columns = tuple(name for name in output_columns if name not in key_columns)
    return key_columns, value_columns, output_columns


def _symbolic_aggregate(
    spec: AggregateSpec, schema: RelationSchema, members: list[tuple[Values, BoolExpr]]
) -> SymbolicAggregate:
    contributions = []
    if spec.attribute is None:
        for _, expr in members:
            contributions.append((expr, 1))
    else:
        index = schema.index_of(spec.attribute)
        for row, expr in members:
            value = row[index]
            if spec.func is AggregateFunction.COUNT:
                value = 1 if value is not None else None
            contributions.append((expr, value))
    return SymbolicAggregate(spec.func, tuple(contributions))


def _apply_rename(
    wrapper: Rename, columns: dict[str, NumExpr], concrete: dict[str, Any]
) -> tuple[dict[str, NumExpr], dict[str, Any]]:
    if wrapper.prefix is not None:
        mapping = {name: f"{wrapper.prefix}.{name}" for name in columns}
    else:
        mapping = {name: dict(wrapper.attribute_mapping).get(name, name) for name in columns}
    new_columns = {mapping[name]: expr for name, expr in columns.items()}
    new_concrete = {mapping[name]: value for name, value in concrete.items() if name in mapping}
    return new_columns, new_concrete


def _convert_predicate(
    predicate: Predicate,
    columns: dict[str, NumExpr],
    concrete: dict[str, Any],
    params: ParamValues,
) -> AggConstraint | bool:
    """Convert a HAVING-style predicate into an :class:`AggConstraint`.

    Predicates that only touch concrete group-key values fold to a plain bool.
    """
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, And):
        converted = [_convert_predicate(p, columns, concrete, params) for p in predicate.operands]
        if any(c is False for c in converted):
            return False
        constraints = [c for c in converted if not isinstance(c, bool)]
        if not constraints:
            return True
        return agg_and(constraints)
    if isinstance(predicate, Or):
        converted = [_convert_predicate(p, columns, concrete, params) for p in predicate.operands]
        if any(c is True for c in converted):
            return True
        constraints = [c for c in converted if not isinstance(c, bool)]
        if not constraints:
            return False
        return agg_or(constraints)
    if isinstance(predicate, Not):
        converted = _convert_predicate(predicate.operand, columns, concrete, params)
        if isinstance(converted, bool):
            return not converted
        return AggNot(converted)
    if isinstance(predicate, Comparison):
        left = _convert_scalar(predicate.left, columns, concrete)
        right = _convert_scalar(predicate.right, columns, concrete)
        if isinstance(left, NumConst) and isinstance(right, NumConst):
            return AggComparison(predicate.op, left, right).evaluate({}, params)
        return AggComparison(predicate.op, left, right)
    raise NotApplicableError(
        f"unsupported HAVING predicate for aggregate provenance: {predicate}"
    )


def _convert_scalar(scalar, columns: dict[str, NumExpr], concrete: dict[str, Any]) -> NumExpr:
    if isinstance(scalar, Literal):
        return NumConst(scalar.value)
    if isinstance(scalar, Param):
        return NumParam(scalar.name)
    if isinstance(scalar, ColumnRef):
        if scalar.name in concrete:
            return NumConst(concrete[scalar.name])
        if scalar.name in columns:
            return columns[scalar.name]
        raise NotApplicableError(f"HAVING references unknown column {scalar.name!r}")
    raise NotApplicableError(f"unsupported scalar in HAVING predicate: {scalar}")
