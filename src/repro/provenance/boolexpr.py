"""Boolean how-provenance expressions.

Input tuples are annotated with Boolean variables named by their tuple
identifiers; how-provenance of an output tuple is a Boolean expression over
those variables (§2.3 of the paper).  The expression is *true* under an
assignment exactly when the output tuple appears in the query result over the
subinstance containing the tuples whose variables are true.

The smart constructors :func:`band`, :func:`bor` and :func:`bnot` perform
light-weight simplification (constant folding, flattening, deduplication) so
that provenance stays readable — e.g. ``t1 t4 + t1 t5`` prints as the paper's
``(t1 ∧ (t4 ∨ t5))`` after construction-time flattening, not as a deep tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import SolverError

Assignment = Mapping[str, bool]


class BoolExpr:
    """Base class of Boolean provenance expressions."""

    def variables(self) -> frozenset[str]:
        raise NotImplementedError

    def evaluate(self, assignment: Assignment) -> bool:
        """Evaluate under ``assignment``; missing variables default to False.

        Defaulting to False matches the provenance semantics: a tuple that is
        not part of the subinstance is simply absent.
        """
        raise NotImplementedError

    def size(self) -> int:
        """Number of nodes in the expression (a readability/size metric)."""
        raise NotImplementedError

    def is_positive(self) -> bool:
        """True when the expression contains no negation (monotone queries)."""
        return all(not isinstance(node, NotExpr) for node in self.walk())

    def walk(self) -> Iterator["BoolExpr"]:
        yield self

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return band(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return bor(self, other)

    def __invert__(self) -> "BoolExpr":
        return bnot(self)


@dataclass(frozen=True)
class TrueExpr(BoolExpr):
    """The constant ``true`` (provenance of a tuple that is always present)."""

    def variables(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, assignment: Assignment) -> bool:
        return True

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class FalseExpr(BoolExpr):
    """The constant ``false``."""

    def variables(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, assignment: Assignment) -> bool:
        return False

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "⊥"


TRUE = TrueExpr()
FALSE = FalseExpr()


@dataclass(frozen=True)
class Var(BoolExpr):
    """A Boolean variable annotating one input tuple (named by its tid)."""

    name: str

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Assignment) -> bool:
        return bool(assignment.get(self.name, False))

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NotExpr(BoolExpr):
    """Negation (introduced only by the difference operator)."""

    operand: BoolExpr

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def evaluate(self, assignment: Assignment) -> bool:
        return not self.operand.evaluate(assignment)

    def size(self) -> int:
        return 1 + self.operand.size()

    def walk(self) -> Iterator[BoolExpr]:
        yield self
        yield from self.operand.walk()

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class AndExpr(BoolExpr):
    """Conjunction (joint use of sub-expressions, e.g. joins)."""

    operands: tuple[BoolExpr, ...]

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def evaluate(self, assignment: Assignment) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def size(self) -> int:
        return 1 + sum(op.size() for op in self.operands)

    def walk(self) -> Iterator[BoolExpr]:
        yield self
        for operand in self.operands:
            yield from operand.walk()

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class OrExpr(BoolExpr):
    """Disjunction (alternative derivations, e.g. projection or union)."""

    operands: tuple[BoolExpr, ...]

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def evaluate(self, assignment: Assignment) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def size(self) -> int:
        return 1 + sum(op.size() for op in self.operands)

    def walk(self) -> Iterator[BoolExpr]:
        yield self
        for operand in self.operands:
            yield from operand.walk()

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(op) for op in self.operands) + ")"


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def var(name: str) -> Var:
    """A provenance variable for the tuple with identifier ``name``."""
    return Var(name)


def band(*operands: BoolExpr) -> BoolExpr:
    """Simplifying conjunction: flattens, drops ``true``, folds ``false``."""
    flat: list[BoolExpr] = []
    seen: set[BoolExpr] = set()
    for operand in operands:
        if isinstance(operand, FalseExpr):
            return FALSE
        if isinstance(operand, TrueExpr):
            continue
        parts = operand.operands if isinstance(operand, AndExpr) else (operand,)
        for part in parts:
            if isinstance(part, FalseExpr):
                return FALSE
            if isinstance(part, TrueExpr):
                continue
            if part not in seen:
                seen.add(part)
                flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return AndExpr(tuple(flat))


def bor(*operands: BoolExpr) -> BoolExpr:
    """Simplifying disjunction: flattens, drops ``false``, folds ``true``."""
    flat: list[BoolExpr] = []
    seen: set[BoolExpr] = set()
    for operand in operands:
        if isinstance(operand, TrueExpr):
            return TRUE
        if isinstance(operand, FalseExpr):
            continue
        parts = operand.operands if isinstance(operand, OrExpr) else (operand,)
        for part in parts:
            if isinstance(part, TrueExpr):
                return TRUE
            if isinstance(part, FalseExpr):
                continue
            if part not in seen:
                seen.add(part)
                flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return OrExpr(tuple(flat))


def bor_all(operands: Iterable[BoolExpr]) -> BoolExpr:
    return bor(*operands)


def band_all(operands: Iterable[BoolExpr]) -> BoolExpr:
    return band(*operands)


def bnot(operand: BoolExpr) -> BoolExpr:
    """Simplifying negation (double negation and constants are folded)."""
    if isinstance(operand, TrueExpr):
        return FALSE
    if isinstance(operand, FalseExpr):
        return TRUE
    if isinstance(operand, NotExpr):
        return operand.operand
    return NotExpr(operand)


# ---------------------------------------------------------------------------
# Assignments and analysis
# ---------------------------------------------------------------------------


def assignment_from_true_set(true_variables: Iterable[str]) -> dict[str, bool]:
    """Build an assignment mapping the listed variables to True."""
    return {name: True for name in true_variables}


def true_variables(assignment: Assignment) -> set[str]:
    """The set of variables assigned True."""
    return {name for name, value in assignment.items() if value}


def to_dnf(expression: BoolExpr, *, max_terms: int = 100_000) -> list[frozenset[str]]:
    """Convert a *positive* (negation-free) expression into DNF minterms.

    Each minterm is a set of variables whose conjunction implies the
    expression; the disjunction of all minterms is equivalent to it.  This is
    the transformation behind the poly-time SPJU algorithm (Theorem 6): the
    smallest witness of a monotone query is the smallest minterm.

    Raises :class:`SolverError` if the expression contains negation or if the
    intermediate DNF exceeds ``max_terms`` terms.
    """
    if not expression.is_positive():
        raise SolverError("DNF conversion is only supported for negation-free provenance")

    def convert(node: BoolExpr) -> list[frozenset[str]]:
        if isinstance(node, TrueExpr):
            return [frozenset()]
        if isinstance(node, FalseExpr):
            return []
        if isinstance(node, Var):
            return [frozenset({node.name})]
        if isinstance(node, OrExpr):
            terms: list[frozenset[str]] = []
            for operand in node.operands:
                terms.extend(convert(operand))
                if len(terms) > max_terms:
                    raise SolverError("DNF conversion exceeded the term budget")
            return _prune_supersets(terms)
        if isinstance(node, AndExpr):
            terms = [frozenset()]
            for operand in node.operands:
                operand_terms = convert(operand)
                product = [a | b for a in terms for b in operand_terms]
                if len(product) > max_terms:
                    raise SolverError("DNF conversion exceeded the term budget")
                terms = _prune_supersets(product)
            return terms
        raise SolverError(f"unexpected node in positive expression: {type(node).__name__}")

    return convert(expression)


def _prune_supersets(terms: list[frozenset[str]]) -> list[frozenset[str]]:
    """Remove minterms that are supersets of other minterms (absorption)."""
    pruned: list[frozenset[str]] = []
    for term in sorted(set(terms), key=len):
        if not any(existing <= term for existing in pruned):
            pruned.append(term)
    return pruned


def minimal_satisfying_subset(
    expression: BoolExpr,
    candidate: Iterable[str],
    *,
    required: Callable[[Mapping[str, bool]], bool] | None = None,
) -> set[str]:
    """Greedily shrink ``candidate`` to a minimal set still satisfying the expression.

    The result is *minimal* (no proper subset works by removing single
    elements), not necessarily *minimum*; it is used to post-process solver
    models and as a baseline in tests.  ``required`` may impose an additional
    check (e.g. foreign-key closure validity) that must stay true.
    """
    current = set(candidate)
    check = required if required is not None else (lambda _assignment: True)
    if not expression.evaluate(assignment_from_true_set(current)) or not check(
        assignment_from_true_set(current)
    ):
        raise SolverError("candidate set does not satisfy the expression")
    for name in sorted(current):
        trial = current - {name}
        trial_assignment = assignment_from_true_set(trial)
        if expression.evaluate(trial_assignment) and check(trial_assignment):
            current = trial
    return current
