"""Provenance-annotated evaluation of SPJUD queries.

For every candidate output tuple of an expression, the annotated evaluator
produces a Boolean how-provenance expression over input-tuple variables.  The
central invariant (tested property-based in ``tests/test_provenance_annotate``)
is::

    for every subinstance D' ⊆ D and candidate row v:
        v ∈ Q(D')  ⇔  Prv_Q(v) evaluates to true under "tid ∈ D'"

and no row outside the candidate set ever appears in ``Q(D')``.

Evaluation is delegated to the annotation-generic engine
(:mod:`repro.engine`): the same physical plans that produce set-semantics
results under :class:`~repro.engine.domains.SetDomain` produce how-provenance
under :class:`~repro.engine.domains.ProvenanceDomain`.  Provenance runs on
the *logically optimized* plan — selection pushdown plus the session's
structural plan/result caches, the same machinery that speeds up grading —
while keeping the deterministic operator order, so annotations still match
the historical bottom-up evaluator expression for expression (the invariant
``tests/test_provenance_engine_path.py`` checks differentially).

Aggregate (GroupBy) nodes are handled by :mod:`repro.provenance.aggregate`;
this module raises :class:`NotApplicableError` for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.catalog.instance import DatabaseInstance, Values
from repro.catalog.schema import RelationSchema
from repro.provenance.boolexpr import FALSE, BoolExpr
from repro.ra.ast import RAExpression


def _engine_session(instance: DatabaseInstance):
    # Imported lazily: repro.engine.domains pulls in repro.provenance.boolexpr,
    # so a module-level import here would close an import cycle through the
    # provenance package __init__.
    from repro.engine.session import EngineSession

    return EngineSession(instance)

ParamValues = Mapping[str, Any]


@dataclass
class AnnotatedRelation:
    """A set of candidate rows, each annotated with a provenance expression."""

    schema: RelationSchema
    provenance: dict[Values, BoolExpr]

    def __len__(self) -> int:
        return len(self.provenance)

    def __contains__(self, row: Values) -> bool:
        return tuple(row) in self.provenance

    def items(self) -> Iterator[tuple[Values, BoolExpr]]:
        return iter(self.provenance.items())

    def expression_for(self, row: Values) -> BoolExpr:
        """Provenance of ``row`` (FALSE for rows that can never appear)."""
        return self.provenance.get(tuple(row), FALSE)

    def rows(self) -> list[Values]:
        return list(self.provenance)


def annotate(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
) -> AnnotatedRelation:
    """Compute provenance-annotated results of an SPJUD expression."""
    schema, rows = _engine_session(instance).annotated_rows(expression, params)
    return AnnotatedRelation(schema, rows)


def provenance_of(
    expression: RAExpression,
    instance: DatabaseInstance,
    row: Values,
    params: ParamValues | None = None,
) -> BoolExpr:
    """How-provenance of one output row w.r.t. ``expression`` and ``instance``."""
    return annotate(expression, instance, params).expression_for(row)


class ProvenanceEvaluator:
    """Provenance computation bound to one instance, with engine caching.

    Kept as the public handle the aggregate-provenance layer builds on;
    repeated calls share the underlying session's structural plan and result
    caches.
    """

    def __init__(self, instance: DatabaseInstance, params: ParamValues) -> None:
        self.instance = instance
        self.params = params
        self.session = _engine_session(instance)

    def annotated(self, node: RAExpression) -> AnnotatedRelation:
        schema, rows = self.session.annotated_rows(node, self.params)
        return AnnotatedRelation(schema, rows)
