"""Provenance-annotated evaluation of SPJUD queries.

For every candidate output tuple of an expression, the annotated evaluator
produces a Boolean how-provenance expression over input-tuple variables.  The
central invariant (tested property-based in ``tests/test_provenance_semantics``)
is::

    for every subinstance D' ⊆ D and candidate row v:
        v ∈ Q(D')  ⇔  Prv_Q(v) evaluates to true under "tid ∈ D'"

and no row outside the candidate set ever appears in ``Q(D')``.

Aggregate (GroupBy) nodes are handled by :mod:`repro.provenance.aggregate`;
this module raises :class:`NotApplicableError` for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.catalog.instance import DatabaseInstance, Values
from repro.catalog.schema import RelationSchema
from repro.errors import NotApplicableError, QueryEvaluationError
from repro.provenance.boolexpr import FALSE, BoolExpr, Var, band, bnot, bor
from repro.ra.ast import (
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.ra.evaluator import split_equijoin_conjuncts

ParamValues = Mapping[str, Any]


@dataclass
class AnnotatedRelation:
    """A set of candidate rows, each annotated with a provenance expression."""

    schema: RelationSchema
    provenance: dict[Values, BoolExpr]

    def __len__(self) -> int:
        return len(self.provenance)

    def __contains__(self, row: Values) -> bool:
        return tuple(row) in self.provenance

    def items(self) -> Iterator[tuple[Values, BoolExpr]]:
        return iter(self.provenance.items())

    def expression_for(self, row: Values) -> BoolExpr:
        """Provenance of ``row`` (FALSE for rows that can never appear)."""
        return self.provenance.get(tuple(row), FALSE)

    def rows(self) -> list[Values]:
        return list(self.provenance)


def annotate(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
) -> AnnotatedRelation:
    """Compute provenance-annotated results of an SPJUD expression."""
    evaluator = ProvenanceEvaluator(instance, params or {})
    return evaluator.annotated(expression)


def provenance_of(
    expression: RAExpression,
    instance: DatabaseInstance,
    row: Values,
    params: ParamValues | None = None,
) -> BoolExpr:
    """How-provenance of one output row w.r.t. ``expression`` and ``instance``."""
    return annotate(expression, instance, params).expression_for(row)


class ProvenanceEvaluator:
    """Bottom-up provenance computation mirroring the plain evaluator."""

    def __init__(self, instance: DatabaseInstance, params: ParamValues) -> None:
        self.instance = instance
        self.params = params
        self._cache: dict[int, AnnotatedRelation] = {}

    def annotated(self, node: RAExpression) -> AnnotatedRelation:
        key = id(node)
        if key not in self._cache:
            self._cache[key] = self._evaluate(node)
        return self._cache[key]

    # -- dispatch ------------------------------------------------------------

    def _evaluate(self, node: RAExpression) -> AnnotatedRelation:
        if isinstance(node, RelationRef):
            return self._relation(node)
        if isinstance(node, Selection):
            return self._selection(node)
        if isinstance(node, Projection):
            return self._projection(node)
        if isinstance(node, Rename):
            child = self.annotated(node.child)
            return AnnotatedRelation(node.output_schema(self.instance.schema), dict(child.provenance))
        if isinstance(node, Join):
            return self._theta_join(node)
        if isinstance(node, NaturalJoin):
            return self._natural_join(node)
        if isinstance(node, Union):
            return self._union(node)
        if isinstance(node, Difference):
            return self._difference(node)
        if isinstance(node, Intersection):
            return self._intersection(node)
        if isinstance(node, GroupBy):
            raise NotApplicableError(
                "Boolean how-provenance does not cover aggregation; "
                "use repro.provenance.aggregate for GroupBy queries"
            )
        raise QueryEvaluationError(f"unsupported RA node type {type(node).__name__}")

    # -- operators -----------------------------------------------------------

    def _relation(self, node: RelationRef) -> AnnotatedRelation:
        relation = self.instance.relation(node.name)
        provenance: dict[Values, BoolExpr] = {}
        for tid, values in relation.tuples():
            existing = provenance.get(values)
            annotation = Var(tid)
            provenance[values] = annotation if existing is None else bor(existing, annotation)
        return AnnotatedRelation(relation.schema, provenance)

    def _selection(self, node: Selection) -> AnnotatedRelation:
        child = self.annotated(node.child)
        schema = child.schema
        kept = {
            row: expr
            for row, expr in child.items()
            if node.predicate.evaluate(schema, row, self.params)
        }
        return AnnotatedRelation(node.output_schema(self.instance.schema), kept)

    def _projection(self, node: Projection) -> AnnotatedRelation:
        child = self.annotated(node.child)
        indexes = [child.schema.index_of(c) for c in node.columns]
        provenance: dict[Values, BoolExpr] = {}
        for row, expr in child.items():
            projected = tuple(row[i] for i in indexes)
            existing = provenance.get(projected)
            provenance[projected] = expr if existing is None else bor(existing, expr)
        return AnnotatedRelation(node.output_schema(self.instance.schema), provenance)

    def _theta_join(self, node: Join) -> AnnotatedRelation:
        left = self.annotated(node.left)
        right = self.annotated(node.right)
        combined_schema = node.output_schema(self.instance.schema)
        pairs, residual = split_equijoin_conjuncts(
            node.effective_predicate(), left.schema, right.schema
        )
        provenance: dict[Values, BoolExpr] = {}

        def emit(left_row: Values, left_expr: BoolExpr, right_row: Values, right_expr: BoolExpr) -> None:
            combined = left_row + right_row
            if residual and not all(
                p.evaluate(combined_schema, combined, self.params) for p in residual
            ):
                return
            expr = band(left_expr, right_expr)
            existing = provenance.get(combined)
            provenance[combined] = expr if existing is None else bor(existing, expr)

        if pairs:
            left_idx = [left.schema.index_of(a) for a, _ in pairs]
            right_idx = [right.schema.index_of(b) for _, b in pairs]
            table: dict[tuple, list[tuple[Values, BoolExpr]]] = {}
            for row, expr in right.items():
                table.setdefault(tuple(row[i] for i in right_idx), []).append((row, expr))
            for left_row, left_expr in left.items():
                key = tuple(left_row[i] for i in left_idx)
                for right_row, right_expr in table.get(key, ()):  # hash-join probe
                    emit(left_row, left_expr, right_row, right_expr)
        else:
            for left_row, left_expr in left.items():
                for right_row, right_expr in right.items():
                    emit(left_row, left_expr, right_row, right_expr)
        return AnnotatedRelation(combined_schema, provenance)

    def _natural_join(self, node: NaturalJoin) -> AnnotatedRelation:
        left = self.annotated(node.left)
        right = self.annotated(node.right)
        shared = node.shared_attributes(self.instance.schema)
        output_schema = node.output_schema(self.instance.schema)
        provenance: dict[Values, BoolExpr] = {}
        left_idx = [left.schema.index_of(name) for name in shared]
        right_idx = [right.schema.index_of(name) for name in shared]
        keep_right = [
            i for i, attr in enumerate(right.schema.attributes) if attr.name not in set(shared)
        ]
        table: dict[tuple, list[tuple[Values, BoolExpr]]] = {}
        for row, expr in right.items():
            table.setdefault(tuple(row[i] for i in right_idx), []).append((row, expr))
        for left_row, left_expr in left.items():
            key = tuple(left_row[i] for i in left_idx)
            for right_row, right_expr in table.get(key, ()):
                combined = left_row + tuple(right_row[i] for i in keep_right)
                expr = band(left_expr, right_expr)
                existing = provenance.get(combined)
                provenance[combined] = expr if existing is None else bor(existing, expr)
        return AnnotatedRelation(output_schema, provenance)

    def _union(self, node: Union) -> AnnotatedRelation:
        left = self.annotated(node.left)
        right = self.annotated(node.right)
        provenance = dict(left.provenance)
        for row, expr in right.items():
            existing = provenance.get(row)
            provenance[row] = expr if existing is None else bor(existing, expr)
        return AnnotatedRelation(node.output_schema(self.instance.schema), provenance)

    def _difference(self, node: Difference) -> AnnotatedRelation:
        left = self.annotated(node.left)
        right = self.annotated(node.right)
        provenance: dict[Values, BoolExpr] = {}
        for row, expr in left.items():
            if row in right.provenance:
                combined = band(expr, bnot(right.provenance[row]))
            else:
                combined = expr
            if not isinstance(combined, type(FALSE)):
                provenance[row] = combined
        return AnnotatedRelation(node.output_schema(self.instance.schema), provenance)

    def _intersection(self, node: Intersection) -> AnnotatedRelation:
        left = self.annotated(node.left)
        right = self.annotated(node.right)
        provenance: dict[Values, BoolExpr] = {}
        for row, expr in left.items():
            if row in right.provenance:
                provenance[row] = band(expr, right.provenance[row])
        return AnnotatedRelation(node.output_schema(self.instance.schema), provenance)
