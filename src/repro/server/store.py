"""The persistent result store: grades that survive restarts and workers.

Grading is deterministic: for a fixed result-schema version, dataset spec,
seed, execution backend, reference query, submission query and grading
options, the outcome is always byte-identical (the serialization layer is
canonical).  That makes a graded submission a perfect cache entry — and in a
real class most submissions *are* repeats (re-submissions, the same classic
mistake across students, a course re-run next semester).

:class:`ResultStore` is that cache, durably: one SQLite database in WAL
mode, shared by every worker of one server and by every restart of it.  The
key is the full grading identity (:class:`StoreKey`); the value is the
*deterministic* grade envelope (no wall-clock timings), so a store hit is
bit-identical to a cold grade.

Concurrency contract: many threads and many processes may ``put`` the same
key simultaneously.  Writes use ``INSERT OR IGNORE`` under WAL with a busy
timeout, so exactly one row per key ever exists and racing writers all
succeed — the satellite test grades one (reference, submission) pair from
two processes at once and asserts one stored row and identical outcomes.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import astuple, dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.api.serialization import SCHEMA_VERSION
from repro.errors import ReproError

#: ``created_at_unix`` is a *wall-clock* Unix timestamp (``time.time()``) on
#: purpose, unlike the ``perf_counter`` timings used for latency measurement
#: everywhere else: stored rows outlive the writing process and are read
#: across daemons, so the timestamp must be meaningful after restarts and
#: comparable between machines — which a process-relative monotonic clock is
#: not.  It is a *row age* marker (store-age gauge, debugging), never a
#: latency source.
_CREATE = """
CREATE TABLE IF NOT EXISTS results (
    schema_version  INTEGER NOT NULL,
    dataset         TEXT    NOT NULL,
    seed            INTEGER NOT NULL,
    backend         TEXT    NOT NULL,
    ref_hash        TEXT    NOT NULL,
    sub_hash        TEXT    NOT NULL,
    options_hash    TEXT    NOT NULL,
    payload         TEXT    NOT NULL,
    created_at_unix REAL    NOT NULL,
    PRIMARY KEY (schema_version, dataset, seed, backend, ref_hash, sub_hash, options_hash)
)
"""

_KEY_COLUMNS = "schema_version, dataset, seed, backend, ref_hash, sub_hash, options_hash"
_KEY_PREDICATE = (
    "schema_version = ? AND dataset = ? AND seed = ? AND backend = ? "
    "AND ref_hash = ? AND sub_hash = ? AND options_hash = ?"
)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreKey:
    """The full identity of one deterministic grading result.

    ``ref_hash``/``sub_hash`` are SHA-256 over the *verbatim* query texts
    (the DSL text is part of the grade: reports echo it back).
    ``options_hash`` folds in everything else that can change the outcome —
    algorithm, params, explain mode and algorithm options — so two requests
    share a row only when a cold grade would be identical.
    """

    schema_version: int
    dataset: str
    seed: int
    backend: str
    ref_hash: str
    sub_hash: str
    options_hash: str

    @classmethod
    def for_request(
        cls,
        *,
        dataset: str,
        seed: int,
        backend: str,
        correct_query: str,
        test_query: str,
        algorithm: str = "auto",
        params: Mapping[str, Any] | None = None,
        explain: bool = True,
        options: Mapping[str, Any] | None = None,
    ) -> "StoreKey":
        fingerprint = json.dumps(
            {
                "algorithm": algorithm,
                "params": None if params is None else {k: params[k] for k in sorted(params)},
                "explain": bool(explain),
                "options": {} if not options else {k: options[k] for k in sorted(options)},
            },
            sort_keys=True,
            default=repr,
        )
        return cls(
            schema_version=SCHEMA_VERSION,
            dataset=dataset,
            seed=seed,
            backend=backend,
            ref_hash=_sha256(correct_query),
            sub_hash=_sha256(test_query),
            options_hash=_sha256(fingerprint),
        )

    # -- wire form (the cluster store tier ships keys between daemons) -------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "dataset": self.dataset,
            "seed": self.seed,
            "backend": self.backend,
            "ref_hash": self.ref_hash,
            "sub_hash": self.sub_hash,
            "options_hash": self.options_hash,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StoreKey":
        """Parse a wire-form key, validating shape (peers may disagree on versions)."""
        try:
            return cls(
                schema_version=int(payload["schema_version"]),
                dataset=str(payload["dataset"]),
                seed=int(payload["seed"]),
                backend=str(payload["backend"]),
                ref_hash=str(payload["ref_hash"]),
                sub_hash=str(payload["sub_hash"]),
                options_hash=str(payload["options_hash"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed store key: {exc}") from exc


class ResultStore:
    """SQLite-backed (or in-memory) persistent map from :class:`StoreKey` to grade.

    One connection guarded by a lock serves all threads of a process; other
    *processes* open their own store on the same path — WAL mode makes the
    readers-and-writers mix safe.  ``":memory:"`` gives a store with the same
    interface but no durability (used by tests and the default in-process
    server when no path is configured).
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False, timeout=30.0)
        self._conn.execute("PRAGMA busy_timeout = 30000")
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._migrate()
        self._conn.execute(_CREATE)
        self._conn.commit()
        self.stats = {"hits": 0, "misses": 0, "writes": 0, "races": 0}

    def _migrate(self) -> None:
        """Rename the legacy ``created_at`` column to ``created_at_unix``.

        Stores written by earlier releases keep their rows; the rename only
        makes the wall-clock semantics explicit in the schema.
        """
        columns = {row[1] for row in self._conn.execute("PRAGMA table_info(results)")}
        if "created_at" in columns and "created_at_unix" not in columns:
            self._conn.execute(
                "ALTER TABLE results RENAME COLUMN created_at TO created_at_unix"
            )

    # -- mapping operations --------------------------------------------------

    def get(self, key: StoreKey) -> dict[str, Any] | None:
        """The stored grade envelope for ``key``, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT payload FROM results WHERE {_KEY_PREDICATE}", astuple(key)
            ).fetchone()
            if row is None:
                self.stats["misses"] += 1
                return None
            self.stats["hits"] += 1
        return json.loads(row[0])

    def put(self, key: StoreKey, payload: Mapping[str, Any]) -> bool:
        """Store ``payload`` under ``key``; first writer wins.

        Returns ``True`` when this call inserted the row, ``False`` when a
        concurrent (or earlier) writer already had — the existing row is kept
        untouched, so every reader of the key sees one immutable grade.
        """
        text = json.dumps(payload, sort_keys=True)
        with self._lock:
            # Wall clock, not perf_counter: see the _CREATE docstring — the
            # stamp must survive restarts and compare across processes.
            cursor = self._conn.execute(
                f"INSERT OR IGNORE INTO results ({_KEY_COLUMNS}, payload, created_at_unix) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (*astuple(key), text, time.time()),
            )
            self._conn.commit()
            inserted = cursor.rowcount == 1
            self.stats["writes" if inserted else "races"] += 1
        return inserted

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return count

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM results")
            self._conn.commit()

    def purge_dataset(self, dataset: str) -> int:
        """Drop every stored grade for ``dataset``; returns rows removed.

        The store's keys carry no data version — grades are deduplicated on
        (schema, dataset, seed, backend, query hashes) alone — so after a
        dataset mutation every stored grade for it is potentially stale and
        must go.  Grades for other datasets are untouched.
        """
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE dataset = ?", (dataset,)
            )
            self._conn.commit()
            return cursor.rowcount

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- introspection -------------------------------------------------------

    def info(self) -> dict[str, Any]:
        """Store statistics for ``/healthz`` and ``/metrics``."""
        return {"path": self.path, "rows": len(self), **self.stats}

    def age_bounds(self) -> tuple[float, float] | None:
        """Seconds since the newest and oldest stored row, or ``None`` if empty.

        Backs the ``repro_store_age_seconds`` gauge: the newest age tells how
        recently the store absorbed a grade, the oldest how far back its
        history reaches.  Clock skew between writer and reader can make the
        raw difference slightly negative, so both are clamped at zero.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT MAX(created_at_unix), MIN(created_at_unix) FROM results"
            ).fetchone()
        if row is None or row[0] is None:
            return None
        now = time.time()
        return (max(0.0, now - row[0]), max(0.0, now - row[1]))

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
