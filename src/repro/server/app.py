"""The grading daemon: JSON-over-HTTP frontend over workers and the store.

Request lifecycle for ``POST /v1/grade``::

    parse + validate (400 on junk)
      → persistent-store lookup ..................... hit → serve from disk
      → in-flight coalescing ........ identical request already grading →
                                      share its result ("store": "coalesced")
      → bounded queue check (429 Retry-After on overload, 503 while draining)
      → route to the worker owning this dataset (cache locality)
      → store the deterministic envelope, respond ("store": "miss")

``/v1/grade_batch`` runs the same path per item over a small thread pool,
with intra-batch deduplication falling out of the coalescing map, and opts
into *waiting* for queue slots instead of failing item-by-item.

Shutdown (SIGTERM/SIGINT under ``repro serve``, or :meth:`GradingServer.shutdown`)
drains gracefully: new grading work is refused with 503, in-flight grades
finish and are stored, then workers, the HTTP listener and the store close.

Everything observable is exported on ``/metrics`` in Prometheus text format:
request counts by endpoint/status, store and coalescing hit counts,
per-stage latency histograms (store lookup, queue wait, grading, store
write, total), queue depth, and each worker's engine-cache counters.
"""

from __future__ import annotations

import json
import signal
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import monotonic, perf_counter
from typing import Any, Mapping

import repro
from repro.api.registry import default_registry
from repro.api.serialization import SCHEMA_VERSION
from repro.api.service import SubmissionRequest, display_text
from repro.errors import ReproError
from repro.server.metrics import MetricsRegistry, label_key
from repro.server.store import ResultStore, StoreKey
from repro.server.workers import (
    QueueFullError,
    WorkerConfig,
    WorkerPool,
    error_envelope,
)

#: ``error_kind`` values that are deterministic properties of the submission
#: and therefore safe to persist.  Operational failures (overload, solver
#: budget, worker crash) must be retried, never remembered.
_CACHEABLE_ERROR_KINDS = frozenset(
    {None, "parse_error", "schema_error", "evaluation_error", "no_counterexample"}
)


@dataclass(frozen=True)
class ServerConfig:
    """Static configuration of one :class:`GradingServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → pick a free ephemeral port (reported as .port)
    workers: int = 2
    backend: str = "python"
    default_dataset: str = "toy-university"
    default_seed: int = 0
    #: Persistent store location; ``None`` keeps results in memory only.
    store_path: str | Path | None = None
    #: Extra dataset specs each worker warms at startup (the default dataset
    #: is always warmed).
    warm_datasets: tuple[str, ...] = ()
    #: Bound on requests in flight across the whole pool; beyond it
    #: ``/v1/grade`` answers 429.
    max_queue: int = 64
    #: Per-request grading deadline (seconds) before the HTTP answer is 504.
    request_timeout: float = 300.0
    #: How long shutdown waits for in-flight grades before forcing the issue.
    drain_timeout: float = 30.0
    #: Threads used to fan one ``/v1/grade_batch`` body out over the pool.
    batch_threads: int = 16
    #: Hard bound on items per batch request.
    max_batch_size: int = 10_000
    mp_context: str = "spawn"
    #: Log one line per request to stderr (quiet by default: tests/benchmarks).
    verbose: bool = False


class GradingServer:
    """The daemon: HTTP frontend + worker pool + persistent result store."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.store = ResultStore(
            ":memory:" if self.config.store_path is None else self.config.store_path
        )
        self.pool = WorkerPool(
            WorkerConfig(
                backend=self.config.backend,
                default_dataset=self.config.default_dataset,
                default_seed=self.config.default_seed,
                warm_datasets=self.config.warm_datasets,
            ),
            workers=self.config.workers,
            max_queue=self.config.max_queue,
            mp_context=self.config.mp_context,
        )
        self._started = monotonic()
        self._draining = threading.Event()
        self._shutdown_done = threading.Event()
        self._inflight: dict[StoreKey, Future] = {}
        self._inflight_lock = threading.Lock()
        self._batch_pool = ThreadPoolExecutor(
            max_workers=self.config.batch_threads, thread_name_prefix="repro-batch"
        )
        self.metrics = self._build_metrics()
        self._httpd = _HTTPServer((self.config.host, self.config.port), _Handler, app=self)
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None

    # -- metrics -------------------------------------------------------------

    def _build_metrics(self) -> MetricsRegistry:
        metrics = MetricsRegistry()
        metrics.counter(
            "repro_server_requests_total", "HTTP requests handled, by endpoint and status."
        )
        metrics.counter(
            "repro_server_grades_total",
            'Grades served, by source ("hit": persistent store, "miss": computed, '
            '"coalesced": shared with an identical in-flight request).',
        )
        metrics.histogram(
            "repro_server_stage_seconds",
            "Per-stage latency: store_lookup, queue_wait, grade, store_write, total.",
        )
        metrics.histogram(
            "repro_server_explain_stage_seconds",
            "Counterexample-pipeline phase latency (raw_eval, provenance, "
            "solver, total), from the CounterexampleResult timings of "
            "explanation-mode grades.",
        )
        metrics.gauge(
            "repro_server_queue_depth",
            "Requests currently in flight in the worker pool.",
            callback=lambda: self.pool.queue_depth(),
        )
        metrics.gauge(
            "repro_server_store_rows",
            "Rows in the persistent result store.",
            callback=lambda: len(self.store),
        )
        metrics.gauge(
            "repro_server_draining", "1 while the server is draining for shutdown."
        )
        metrics.set("repro_server_draining", 0.0)
        metrics.gauge(
            "repro_server_uptime_seconds",
            "Seconds since the server started.",
            callback=lambda: monotonic() - self._started,
        )
        metrics.gauge(
            "repro_server_info",
            "Constant 1; the labels carry build information.",
        )
        metrics.set(
            "repro_server_info",
            1.0,
            {"version": repro.__version__, "schema_version": str(SCHEMA_VERSION)},
        )
        metrics.gauge(
            "repro_worker_restarts_total",
            "Worker processes respawned after a crash.",
            callback=lambda: self.pool.restarts,
        )
        metrics.gauge(
            "repro_worker_cache",
            "Per-worker engine/registry cache counters (plan and result "
            "hits/misses/evictions, dataset handle churn), by worker and counter.",
            callback=self._worker_cache_series,
        )
        return metrics

    def _worker_cache_series(self) -> Mapping[tuple, float]:
        series: dict[tuple, float] = {}
        for stats in self.pool.stats(timeout=1.0):
            worker = str(stats.get("worker"))
            for scope in ("registry", "sessions"):
                for name, value in stats.get(scope, {}).items():
                    labels = label_key({"worker": worker, "counter": f"{scope}_{name}"})
                    series[labels] = float(value)
        return series

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "GradingServer":
        """Serve in a background thread (tests, benchmarks, embedding)."""
        thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._serve_thread = thread
        return self

    def serve_forever(self, *, install_signal_handlers: bool = False) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or SIGTERM)."""
        if install_signal_handlers:

            def _drain(signum: int, frame: Any) -> None:
                # Keep the handler trivial: the drain itself runs on its own
                # thread, because shutdown() joins the serve loop this signal
                # interrupted.
                threading.Thread(
                    target=self.shutdown, name="repro-drain", daemon=True
                ).start()

            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
        self._httpd.serve_forever()
        self._shutdown_done.wait(timeout=self.config.drain_timeout + 10.0)

    def shutdown(self) -> None:
        """Graceful drain: refuse new grades, finish in-flight ones, stop."""
        if self._draining.is_set():
            self._shutdown_done.wait(timeout=self.config.drain_timeout + 10.0)
            return
        self._draining.set()
        self.metrics.set("repro_server_draining", 1.0)
        self.pool.drain(timeout=self.config.drain_timeout)
        self._batch_pool.shutdown(wait=True, cancel_futures=False)
        self._httpd.shutdown()  # stops serve_forever; in-flight handlers finish
        self._httpd.server_close()
        self.pool.close()
        self.store.close()
        self._shutdown_done.set()

    # -- request handling ----------------------------------------------------

    def handle_healthz(self) -> tuple[int, dict[str, Any]]:
        status = "draining" if self._draining.is_set() else "ok"
        return 200, {
            "status": status,
            "version": repro.__version__,
            "schema_version": SCHEMA_VERSION,
            "backend": self.config.backend,
            "workers": self.config.workers,
            "worker_restarts": self.pool.restarts,
            "queue_depth": self.pool.queue_depth(),
            "uptime_seconds": monotonic() - self._started,
            "store": self.store.info(),
        }

    def handle_datasets(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "datasets": list(default_registry().known_datasets()),
            "default_dataset": self.config.default_dataset,
            "default_seed": self.config.default_seed,
            "backend": self.config.backend,
        }

    def handle_grade(self, payload: Any) -> tuple[int, dict[str, Any]]:
        try:
            request = SubmissionRequest.from_dict(payload)
        except ReproError as exc:
            return 400, {"error": str(exc), "error_kind": "invalid_request"}
        return self._grade_one(request, wait_for_slot=False)

    def handle_grade_batch(self, payload: Any) -> tuple[int, dict[str, Any]]:
        if not isinstance(payload, Mapping) or not isinstance(payload.get("requests"), list):
            return 400, {
                "error": "grade_batch body must be {\"requests\": [...]}",
                "error_kind": "invalid_request",
            }
        items = payload["requests"]
        if len(items) > self.config.max_batch_size:
            return 400, {
                "error": f"batch of {len(items)} exceeds max_batch_size "
                f"{self.config.max_batch_size}",
                "error_kind": "invalid_request",
            }
        requests: list[SubmissionRequest | None] = []
        errors: dict[int, dict[str, Any]] = {}
        for index, item in enumerate(items):
            try:
                requests.append(SubmissionRequest.from_dict(item))
            except ReproError as exc:
                requests.append(None)
                errors[index] = error_envelope(str(exc), "invalid_request", item if isinstance(item, Mapping) else None)
        futures = {
            index: self._batch_pool.submit(self._grade_one, request, wait_for_slot=True)
            for index, request in enumerate(requests)
            if request is not None
        }
        results: list[dict[str, Any]] = []
        for index in range(len(items)):
            if index in errors:
                results.append(errors[index])
                continue
            status, envelope = futures[index].result()
            if status != 200:
                # Frontend-level failures (drain, queue timeout, 504) come
                # back as bare {"error", "error_kind"} dicts; batch items
                # must always be full grade envelopes or the client breaks.
                envelope = error_envelope(
                    envelope.get("error", "server error"),
                    envelope.get("error_kind", "unavailable"),
                    items[index] if isinstance(items[index], Mapping) else None,
                )
            results.append(envelope)
        return 200, {"results": results}

    # -- the grading path ----------------------------------------------------

    def _normalize(self, request: SubmissionRequest) -> tuple[str, int]:
        spec = request.dataset if request.dataset is not None else self.config.default_dataset
        seed = self.config.default_seed if request.seed is None else request.seed
        return spec, seed

    def _store_key(self, request: SubmissionRequest, spec: str, seed: int) -> StoreKey:
        return StoreKey.for_request(
            dataset=spec,
            seed=seed,
            backend=self.config.backend,
            correct_query=display_text(request.correct_query),
            test_query=display_text(request.test_query),
            algorithm=request.algorithm,
            params=request.params,
            explain=request.explain,
            options=request.options,
        )

    def _observe(self, stage: str, seconds: float) -> None:
        self.metrics.observe("repro_server_stage_seconds", seconds, {"stage": stage})

    def _observe_explain_stages(self, timings: Mapping[str, Any] | None) -> None:
        """Record the counterexample pipeline's own phase breakdown.

        Explanation-mode grades ship the solver's wall-clock split
        (``raw_eval``/``provenance``/``solver``/``total``) alongside the
        deterministic envelope (like ``grade_time``, it never enters the
        store); scraping it per stage makes "the solver is the bottleneck on
        this workload" visible in Prometheus instead of buried in payloads.
        """
        if not timings:
            return
        for stage, seconds in timings.items():
            if isinstance(seconds, (int, float)):
                self.metrics.observe(
                    "repro_server_explain_stage_seconds",
                    float(seconds),
                    {"stage": str(stage)},
                )

    def _grade_one(
        self, request: SubmissionRequest, *, wait_for_slot: bool
    ) -> tuple[int, dict[str, Any]]:
        """Grade one validated request: store → coalesce → worker pool."""
        started = perf_counter()
        spec, seed = self._normalize(request)
        key = self._store_key(request, spec, seed)

        lookup_started = perf_counter()
        stored = self.store.get(key)
        self._observe("store_lookup", perf_counter() - lookup_started)
        if stored is not None:
            self.metrics.inc("repro_server_grades_total", {"store": "hit"})
            self._observe("total", perf_counter() - started)
            return 200, {
                **stored,
                "id": request.id,
                "store": "hit",
                "wall_time": perf_counter() - started,
            }

        if self._draining.is_set():
            return 503, {"error": "server is draining", "error_kind": "unavailable"}

        # Coalesce identical concurrent requests onto one grading future —
        # the common closed-loop pattern where a whole class submits the
        # same wrong query within one scrape interval.
        with self._inflight_lock:
            shared = self._inflight.get(key)
            owner = shared is None
            if owner:
                shared = Future()
                self._inflight[key] = shared
        if not owner:
            try:
                status, envelope, _ = shared.result(timeout=self.config.request_timeout)
            except FutureTimeoutError:
                return 504, {
                    "error": "timed out waiting for an identical in-flight grade",
                    "error_kind": "unavailable",
                }
            if status == 200:
                self.metrics.inc("repro_server_grades_total", {"store": "coalesced"})
                envelope = {
                    **envelope,
                    "id": request.id,
                    "store": "coalesced",
                    "wall_time": perf_counter() - started,
                }
            self._observe("total", perf_counter() - started)
            return status, envelope

        try:
            status, envelope, grade_time = self._grade_via_pool(
                request, key, spec, seed, wait_for_slot
            )
            shared.set_result((status, dict(envelope), grade_time))
        except BaseException as exc:
            shared.set_exception(exc)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
        if status == 200:
            self.metrics.inc("repro_server_grades_total", {"store": "miss"})
            envelope = {
                **envelope,
                "id": request.id,
                "store": "miss",
                "wall_time": perf_counter() - started,
            }
        self._observe("total", perf_counter() - started)
        return status, envelope

    def _grade_via_pool(
        self,
        request: SubmissionRequest,
        key: StoreKey,
        spec: str,
        seed: int,
        wait_for_slot: bool,
    ) -> tuple[int, dict[str, Any], float]:
        enqueued = perf_counter()
        try:
            future = self.pool.submit(
                request.to_dict(),
                dataset=spec,
                seed=seed,
                wait=wait_for_slot,
                wait_timeout=self.config.request_timeout,
            )
        except QueueFullError as exc:
            return 429, {"error": str(exc), "error_kind": "overloaded"}, 0.0
        try:
            reply = future.result(timeout=self.config.request_timeout)
        except FutureTimeoutError:
            return 504, {
                "error": f"grading exceeded {self.config.request_timeout:.0f}s",
                "error_kind": "unavailable",
            }, 0.0
        grade_time = float(reply.pop("grade_time", 0.0))
        self._observe("grade", grade_time)
        self._observe("queue_wait", max(0.0, perf_counter() - enqueued - grade_time))
        self._observe_explain_stages(reply.pop("explain_timings", None))
        error_kind = (reply.get("outcome") or {}).get("error_kind")
        if error_kind in _CACHEABLE_ERROR_KINDS:
            # The submitter's id is routing, not grade content — strip it so
            # a store hit never echoes back someone else's submission id.
            write_started = perf_counter()
            self.store.put(key, {**reply, "id": None})
            self._observe("store_write", perf_counter() - write_started)
        return 200, reply, grade_time


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # A closed-loop load generator opens its connections all at once; the
    # socketserver default backlog of 5 resets the rest.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], handler: type, *, app: GradingServer) -> None:
        self.app = app
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{repro.__version__}"
    protocol_version = "HTTP/1.1"
    # Nagle + delayed ACK turns every small request/response pair into a
    # ~40ms round trip; grading answers are small and latency-bound.
    disable_nagle_algorithm = True

    @property
    def app(self) -> GradingServer:
        return self.server.app  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.app.config.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Mapping[str, Any], *, endpoint: str) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(status, body, "application/json", endpoint=endpoint)

    def _send_bytes(
        self, status: int, body: bytes, content_type: str, *, endpoint: str
    ) -> None:
        self.app.metrics.inc(
            "repro_server_requests_total",
            {"endpoint": endpoint, "status": str(status)},
        )
        try:
            self.send_response(status)
            if status == 429:
                self.send_header("Retry-After", "1")
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ReproError("request body is empty; expected a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from None

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            status, payload = self.app.handle_healthz()
            self._send_json(status, payload, endpoint="/healthz")
        elif path == "/metrics":
            self._send_bytes(
                200,
                self.app.metrics.render().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
                endpoint="/metrics",
            )
        elif path == "/v1/datasets":
            status, payload = self.app.handle_datasets()
            self._send_json(status, payload, endpoint="/v1/datasets")
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"}, endpoint="other")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path not in ("/v1/grade", "/v1/grade_batch"):
            self._send_json(404, {"error": f"unknown path {path!r}"}, endpoint="other")
            return
        try:
            payload = self._read_json_body()
        except ReproError as exc:
            self._send_json(
                400, {"error": str(exc), "error_kind": "invalid_request"}, endpoint=path
            )
            return
        try:
            if path == "/v1/grade":
                status, body = self.app.handle_grade(payload)
            else:
                status, body = self.app.handle_grade_batch(payload)
        except Exception as exc:  # noqa: BLE001 — the daemon must answer
            status, body = 500, {"error": f"internal error: {exc}", "error_kind": "internal_error"}
        self._send_json(status, body, endpoint=path)
