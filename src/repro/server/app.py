"""The grading daemon: JSON-over-HTTP frontend over workers and the store.

Request lifecycle for ``POST /v1/grade``::

    parse + validate (400 on junk)
      → persistent-store lookup ..................... hit → serve from disk
      → in-flight coalescing ........ identical request already grading →
                                      share its result ("store": "coalesced")
      → cluster routing (when clustered) ... another peer owns this
                                      (dataset, seed) → proxy to it
                                      ("store": "forwarded"); owner down →
                                      grade locally after probing peers'
                                      stores ("store": "remote_hit")
      → bounded queue check (429 Retry-After on overload, 503 while draining)
      → route to the worker owning this dataset (cache locality)
      → store the deterministic envelope, respond ("store": "miss")

``/v1/grade_batch`` runs the same path per item over a small thread pool,
with intra-batch deduplication falling out of the coalescing map, and opts
into *waiting* for queue slots instead of failing item-by-item.

The HTTP frontend is the :class:`~repro.cluster.eventloop.EventLoopHTTPServer`
reactor — one event-loop thread multiplexing every connection, handlers on a
bounded pool — which replaced the earlier thread-per-connection
``ThreadingHTTPServer`` (whose throughput *fell* from 16 to 64 keep-alive
clients; see ``benchmarks/bench_cluster_load.py``).

Shutdown (SIGTERM/SIGINT under ``repro serve``, or :meth:`GradingServer.shutdown`)
drains gracefully: new grading work is refused with 503, in-flight grades
finish and are stored, then workers, the HTTP listener and the store close.
:meth:`GradingServer.kill` is the opposite on purpose — an abrupt stop used
by failure drills to stand in for SIGKILL.

Everything observable is exported on ``/metrics`` in Prometheus text format:
request counts by endpoint/status, store and coalescing hit counts,
per-stage latency histograms (store lookup, queue wait, grading, store
write, total), queue depth, watchdog health, and — when clustered —
forward/fallback/coalesce counters, live-ring size and per-peer states.
"""

from __future__ import annotations

import json
import logging
import math
import signal
import sys
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from pathlib import Path
from time import monotonic, perf_counter
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

import repro
from repro.api.registry import default_registry
from repro.api.serialization import SCHEMA_VERSION
from repro.api.service import SubmissionRequest, display_text
from repro.cluster.eventloop import EventLoopHTTPServer, HTTPRequest, HTTPResponse
from repro.cluster.forward import FORWARDED_HEADER, ForwardError, Forwarder
from repro.cluster.membership import (
    STATE_CODES,
    ClusterMembership,
    parse_peer_specs,
)
from repro.errors import ReproError
from repro.obs.trace import TRACEPARENT_HEADER, Span, SpanContext, Tracer, TraceStore
from repro.server.metrics import MetricsRegistry, label_key
from repro.server.store import ResultStore, StoreKey
from repro.server.workers import (
    QueueFullError,
    WorkerConfig,
    WorkerPool,
    error_envelope,
)

log = logging.getLogger(__name__)

#: ``error_kind`` values that are deterministic properties of the submission
#: and therefore safe to persist.  Operational failures (overload, solver
#: budget, worker crash) must be retried, never remembered.
_CACHEABLE_ERROR_KINDS = frozenset(
    {None, "parse_error", "schema_error", "evaluation_error", "no_counterexample"}
)


def compute_retry_after(depth: int, workers: int, grade_seconds: float) -> int:
    """Retry-After (seconds) for a 429: when should a queue slot exist?

    A Little's-law drain estimate — ``depth`` requests ahead, ``workers``
    servers, ``grade_seconds`` observed per grade — clamped to [1, 60] so a
    cold estimate never tells clients "now" and a pathological one never
    parks them for minutes.
    """
    per_grade = grade_seconds if grade_seconds > 0 else 0.5
    eta = (depth / max(1, workers)) * per_grade
    return max(1, min(60, math.ceil(eta)))


@dataclass(frozen=True)
class ServerConfig:
    """Static configuration of one :class:`GradingServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → pick a free ephemeral port (reported as .port)
    workers: int = 2
    backend: str = "python"
    default_dataset: str = "toy-university"
    default_seed: int = 0
    #: Persistent store location; ``None`` keeps results in memory only.
    store_path: str | Path | None = None
    #: Extra dataset specs each worker warms at startup (the default dataset
    #: is always warmed).
    warm_datasets: tuple[str, ...] = ()
    #: Bound on requests in flight across the whole pool; beyond it
    #: ``/v1/grade`` answers 429.
    max_queue: int = 64
    #: Per-request grading deadline (seconds) before the HTTP answer is 504.
    request_timeout: float = 300.0
    #: How long shutdown waits for in-flight grades before forcing the issue.
    drain_timeout: float = 30.0
    #: Threads used to fan one ``/v1/grade_batch`` body out over the pool.
    batch_threads: int = 16
    #: Hard bound on items per batch request.
    max_batch_size: int = 10_000
    mp_context: str = "spawn"
    #: Bound on concurrently *running* request handlers (connections are
    #: cheap under the event loop; handler threads are the real resource).
    http_threads: int = 32
    #: Log one line per request to stderr (quiet by default: tests/benchmarks).
    verbose: bool = False
    #: Root spans (whole requests) slower than this land in the slow-request
    #: log (``/v1/debug/traces`` → ``"slow"``) and a warning log line.
    slow_request_seconds: float = 1.0
    #: Bound on traces kept in memory for ``/v1/debug/traces``.
    trace_max_traces: int = 256

    # -- cluster membership (all inert unless ``cluster_self`` is set) -------

    #: This daemon's logical peer name (e.g. ``shard-0``); enables clustering.
    cluster_self: str | None = None
    #: The full static peer map, as ``name=http://host:port`` specs.  Must
    #: include ``cluster_self`` and be identical on every peer.
    cluster_peers: tuple[str, ...] = ()
    cluster_virtual_nodes: int = 64
    cluster_heartbeat_interval: float = 0.5
    cluster_suspect_after: int = 1
    cluster_down_after: int = 3
    cluster_probe_timeout: float = 1.0
    #: Proxy non-owned keys to their owner (off → every peer grades locally
    #: but the cross-shard store tier still deduplicates work).
    cluster_forward: bool = True
    cluster_forward_retries: int = 2
    cluster_store_probes: int = 2
    cluster_store_probe_timeout: float = 2.0


class GradingServer:
    """The daemon: HTTP frontend + worker pool + persistent result store."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.store = ResultStore(
            ":memory:" if self.config.store_path is None else self.config.store_path
        )
        self.pool = WorkerPool(
            WorkerConfig(
                backend=self.config.backend,
                default_dataset=self.config.default_dataset,
                default_seed=self.config.default_seed,
                warm_datasets=self.config.warm_datasets,
            ),
            workers=self.config.workers,
            max_queue=self.config.max_queue,
            mp_context=self.config.mp_context,
        )
        self.membership: ClusterMembership | None = None
        self.forwarder: Forwarder | None = None
        if self.config.cluster_self is not None:
            self.membership = ClusterMembership(
                self.config.cluster_self,
                parse_peer_specs(self.config.cluster_peers),
                virtual_nodes=self.config.cluster_virtual_nodes,
                heartbeat_interval=self.config.cluster_heartbeat_interval,
                suspect_after=self.config.cluster_suspect_after,
                down_after=self.config.cluster_down_after,
                probe_timeout=self.config.cluster_probe_timeout,
            ).start()
            self.forwarder = Forwarder(
                self.membership,
                timeout=self.config.request_timeout,
                retries=self.config.cluster_forward_retries,
                store_probe_timeout=self.config.cluster_store_probe_timeout,
                store_probes=self.config.cluster_store_probes,
            )
        self._started = monotonic()
        self._draining = threading.Event()
        self._shutdown_done = threading.Event()
        self._inflight: dict[StoreKey, Future] = {}
        self._inflight_lock = threading.Lock()
        #: EWMA of observed grade seconds, feeding Retry-After estimates.
        self._grade_ewma = 0.0
        self._batch_pool = ThreadPoolExecutor(
            max_workers=self.config.batch_threads, thread_name_prefix="repro-batch"
        )
        self.traces = TraceStore(max_traces=self.config.trace_max_traces)
        self.tracer = Tracer(
            self.config.cluster_self or "server",
            store=self.traces,
            slow_threshold=self.config.slow_request_seconds,
            on_span=self._observe_span,
        )
        # One cross-process worker-stats round trip serves every callback
        # metric on a scrape (and concurrent scrapes within the TTL).
        self._stats_snapshot: tuple[float, list[dict[str, Any]]] | None = None
        self._stats_snapshot_lock = threading.Lock()
        self.metrics = self._build_metrics()
        self._httpd = EventLoopHTTPServer(
            (self.config.host, self.config.port),
            self._dispatch,
            handler_threads=self.config.http_threads,
            server_name=f"repro-serve/{repro.__version__}",
        )
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None

    # -- metrics -------------------------------------------------------------

    def _build_metrics(self) -> MetricsRegistry:
        metrics = MetricsRegistry()
        metrics.counter(
            "repro_server_requests_total", "HTTP requests handled, by endpoint and status."
        )
        metrics.counter(
            "repro_server_grades_total",
            'Grades served, by source ("hit": persistent store, "miss": computed, '
            '"coalesced": shared with an identical in-flight request, '
            '"forwarded": proxied to the owning cluster peer, '
            '"remote_hit": found in a peer\'s store before grading cold).',
        )
        metrics.histogram(
            "repro_server_stage_seconds",
            "Per-stage latency: store_lookup, queue_wait, grade, store_write, total.",
        )
        metrics.histogram(
            "repro_server_explain_stage_seconds",
            "Counterexample-pipeline phase latency (raw_eval, provenance, "
            "solver, total), from the CounterexampleResult timings of "
            "explanation-mode grades.",
        )
        metrics.gauge(
            "repro_server_queue_depth",
            "Requests currently in flight in the worker pool.",
            callback=lambda: self.pool.queue_depth(),
        )
        metrics.gauge(
            "repro_server_store_rows",
            "Rows in the persistent result store.",
            callback=lambda: len(self.store),
        )
        metrics.gauge(
            "repro_server_draining", "1 while the server is draining for shutdown."
        )
        metrics.set("repro_server_draining", 0.0)
        metrics.gauge(
            "repro_server_uptime_seconds",
            "Seconds since the server started.",
            callback=lambda: monotonic() - self._started,
        )
        metrics.gauge(
            "repro_server_info",
            "Constant 1; the labels carry build information.",
        )
        metrics.set(
            "repro_server_info",
            1.0,
            {"version": repro.__version__, "schema_version": str(SCHEMA_VERSION)},
        )
        metrics.gauge(
            "repro_worker_restarts_total",
            "Worker processes respawned after a crash.",
            callback=lambda: self.pool.restarts,
        )
        metrics.gauge(
            "repro_server_watchdog_errors",
            "Watchdog sweeps that raised and were survived — nonzero means "
            "worker liveness checking is degraded.",
            callback=lambda: self.pool.watchdog_errors,
        )
        metrics.histogram(
            "repro_trace_span_seconds",
            "Latency of finished trace spans, by span name (http, server.grade, "
            "cluster.forward, worker.grade, grade.* phases, op.* operators).",
        )
        metrics.histogram(
            "repro_engine_qerror",
            "Per-operator cardinality-estimation q-error (max(est/actual, "
            "actual/est), 1.0 = perfect) from traced plan executions.",
            buckets=(1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0),
        )
        metrics.gauge(
            "repro_trace_store_traces",
            "Traces currently held in the bounded in-memory trace store.",
            callback=lambda: float(len(self.traces)),
        )
        metrics.gauge(
            "repro_store_age_seconds",
            "Seconds since the newest and oldest stored grade "
            '(label bound="newest"/"oldest"; absent while the store is empty). '
            "Derived from the store's wall-clock created_at_unix column.",
            callback=self._store_age_series,
        )
        metrics.gauge(
            "repro_worker_cache",
            "Per-worker engine/registry cache counters (plan and result "
            "hits/misses/evictions, dataset handle churn), by worker and counter.",
            callback=self._worker_cache_series,
        )
        for stat_key, metric_name, help_text in (
            (
                "delta_maintained",
                "repro_engine_delta_maintained_total",
                "Cached subplan results that survived an instance mutation "
                "verbatim (their plans scan only untouched relations), by worker.",
            ),
            (
                "delta_patched",
                "repro_engine_delta_patched_total",
                "Cached subplan results differentially patched in place after "
                "an instance mutation, by worker.",
            ),
            (
                "delta_dropped",
                "repro_engine_delta_dropped_total",
                "Cached subplan results dropped on mutation (unmaintainable "
                "operator, order-sensitive domain, or wholesale fallback), by worker.",
            ),
            (
                "delta_fallback",
                "repro_engine_delta_fallback_total",
                "Mutations absorbed by wholesale cache invalidation because a "
                "relation's bounded mutation log no longer covered the gap, by worker.",
            ),
            (
                "solver_clause_reuse",
                "repro_solver_clause_reuse_total",
                "Min-ones solves warm-started from a structurally equal prior "
                "submission's learned clause set, by worker.",
            ),
        ):
            metrics.counter(
                metric_name,
                help_text,
                callback=lambda key=stat_key: self._session_counter_series(key),
            )
        if self.membership is not None:
            membership = self.membership
            metrics.counter(
                "repro_cluster_forwarded_total",
                "Grades proxied to their owning peer, by peer.",
            )
            metrics.counter(
                "repro_cluster_fallback_total",
                "Grades computed locally because the owning peer was "
                "unreachable, by (attempted) peer.",
            )
            metrics.counter(
                "repro_cluster_local_total",
                "Grades computed locally on the worker pool while clustered "
                "(owned keys and fallbacks).",
            )
            metrics.counter(
                "repro_cluster_coalesced_total",
                "Requests coalesced onto an identical in-flight grade while "
                "clustered (cluster-wide single-flight composes from these).",
            )
            metrics.counter(
                "repro_cluster_store_proxy_total",
                "Cross-shard store-tier probes before grading cold, by result.",
            )
            metrics.gauge(
                "repro_cluster_ring_size",
                "Peers currently in the live routing ring.",
                callback=lambda: len(membership.live_peers()),
            )
            metrics.gauge(
                "repro_cluster_peers",
                "Peers in the configured (static) cluster.",
                callback=lambda: len(membership.peer_urls()),
            )
            metrics.gauge(
                "repro_cluster_peer_state",
                "Per-peer liveness state: 0 alive, 1 suspect, 2 down.",
                callback=self._peer_state_series,
            )
        return metrics

    def _pool_stats_snapshot(self, ttl: float = 1.0) -> list[dict[str, Any]]:
        """Worker cache stats, shared across the callbacks of one scrape."""
        with self._stats_snapshot_lock:
            cached = self._stats_snapshot
            if cached is not None and monotonic() - cached[0] < ttl:
                return cached[1]
        stats = self.pool.stats(timeout=1.0)
        with self._stats_snapshot_lock:
            self._stats_snapshot = (monotonic(), stats)
        return stats

    def _session_counter_series(self, key: str) -> Mapping[tuple, float]:
        """Per-worker cumulative value of one summed session counter.

        Totals can regress when a worker respawns after a crash or its
        dataset handles are LRU-evicted — the standard counter-reset
        semantics Prometheus rate() already handles.
        """
        series: dict[tuple, float] = {}
        for stats in self._pool_stats_snapshot():
            value = stats.get("sessions", {}).get(key)
            if value is not None:
                series[label_key({"worker": str(stats.get("worker"))})] = float(value)
        return series

    def _worker_cache_series(self) -> Mapping[tuple, float]:
        series: dict[tuple, float] = {}
        for stats in self._pool_stats_snapshot():
            worker = str(stats.get("worker"))
            for scope in ("registry", "sessions"):
                for name, value in stats.get(scope, {}).items():
                    labels = label_key({"worker": worker, "counter": f"{scope}_{name}"})
                    series[labels] = float(value)
        return series

    def _peer_state_series(self) -> Mapping[tuple, float]:
        assert self.membership is not None
        return {
            label_key({"peer": name}): float(STATE_CODES[state])
            for name, state in self.membership.states().items()
        }

    def _store_age_series(self) -> Mapping[tuple, float]:
        bounds = self.store.age_bounds()
        if bounds is None:
            return {}
        newest, oldest = bounds
        return {
            label_key({"bound": "newest"}): newest,
            label_key({"bound": "oldest"}): oldest,
        }

    def _observe_span(self, span: Span) -> None:
        """Tracer callback: every locally finished span feeds the histograms."""
        self.metrics.observe(
            "repro_trace_span_seconds",
            span.duration if span.duration is not None else 0.0,
            {"span": span.name},
        )
        qe = span.attributes.get("q_error")
        if isinstance(qe, (int, float)):
            self.metrics.observe("repro_engine_qerror", float(qe))

    def _ingest_spans(self, spans: Any) -> None:
        """Merge span dicts from a worker process or a forwarded peer.

        They join the local trace store (so ``/v1/debug/traces`` shows whole
        traces, not just this daemon's slice) and feed the same span-latency
        and q-error histograms local spans do.
        """
        if not isinstance(spans, list):
            return
        for span in spans:
            if not isinstance(span, Mapping):
                continue
            self.traces.add(span)
            duration = span.get("duration")
            if isinstance(duration, (int, float)):
                self.metrics.observe(
                    "repro_trace_span_seconds",
                    float(duration),
                    {"span": str(span.get("name"))},
                )
            qe = (span.get("attributes") or {}).get("q_error")
            if isinstance(qe, (int, float)):
                self.metrics.observe("repro_engine_qerror", float(qe))

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "GradingServer":
        """Serve in a background thread (tests, benchmarks, embedding)."""
        thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._serve_thread = thread
        return self

    def serve_forever(self, *, install_signal_handlers: bool = False) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or SIGTERM)."""
        if install_signal_handlers:

            def _drain(signum: int, frame: Any) -> None:
                # Keep the handler trivial: the drain itself runs on its own
                # thread, because shutdown() joins the serve loop this signal
                # interrupted.
                threading.Thread(
                    target=self.shutdown, name="repro-drain", daemon=True
                ).start()

            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
        self._httpd.serve_forever()
        self._shutdown_done.wait(timeout=self.config.drain_timeout + 10.0)

    def shutdown(self) -> None:
        """Graceful drain: refuse new grades, finish in-flight ones, stop."""
        if self._draining.is_set():
            self._shutdown_done.wait(timeout=self.config.drain_timeout + 10.0)
            return
        self._draining.set()
        self.metrics.set("repro_server_draining", 1.0)
        if self.membership is not None:
            self.membership.stop()
        self.pool.drain(timeout=self.config.drain_timeout)
        self._batch_pool.shutdown(wait=True, cancel_futures=False)
        self._httpd.shutdown()  # stops the reactor; in-flight handlers finish
        self._httpd.server_close()
        if self.forwarder is not None:
            self.forwarder.close()
        self.pool.close()
        self.store.close()
        self._shutdown_done.set()

    def kill(self) -> None:
        """Abrupt stop — the in-process stand-in for SIGKILL in drills.

        No drain, no goodbyes: connections are dropped mid-flight and worker
        processes are torn down at once, so peers experience exactly what a
        killed daemon looks like (resets and refused connections).
        """
        if self._draining.is_set():
            return
        self._draining.set()
        if self.membership is not None:
            self.membership.stop()
        self._httpd.close_now()
        self._batch_pool.shutdown(wait=False, cancel_futures=True)
        if self.forwarder is not None:
            self.forwarder.close()
        self.pool.close(timeout=1.0)
        self.store.close()
        self._shutdown_done.set()

    # -- request handling ----------------------------------------------------

    def handle_healthz(self) -> tuple[int, dict[str, Any]]:
        status = "draining" if self._draining.is_set() else "ok"
        payload: dict[str, Any] = {
            "status": status,
            "version": repro.__version__,
            "schema_version": SCHEMA_VERSION,
            "backend": self.config.backend,
            "workers": self.config.workers,
            "worker_restarts": self.pool.restarts,
            "queue_depth": self.pool.queue_depth(),
            "uptime_seconds": monotonic() - self._started,
            "store": self.store.info(),
        }
        if self.membership is not None:
            payload["cluster"] = {
                "name": self.membership.self_name,
                "peers": self.membership.states(),
                "live": self.membership.live_peers(),
            }
        return 200, payload

    def handle_datasets(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "datasets": list(default_registry().known_datasets()),
            "default_dataset": self.config.default_dataset,
            "default_seed": self.config.default_seed,
            "backend": self.config.backend,
        }

    def handle_datasets_mutate(self, payload: Any) -> tuple[int, dict[str, Any]]:
        """Apply an edit stream to a dataset on every worker (and purge grades).

        The edits are broadcast through each worker's task queue, so every
        worker's copy of the dataset absorbs them in its own request order
        and the warm engine sessions maintain their caches differentially
        (the reply carries each worker's ``delta`` counter increments).
        Stored grades for the dataset are purged regardless of per-worker
        success — after any mutation attempt they are potentially stale.
        """
        if not isinstance(payload, Mapping) or not isinstance(
            payload.get("operations"), list
        ):
            return 400, {
                "error": 'mutate body must be {"dataset": spec?, "operations": [...]}',
                "error_kind": "invalid_request",
            }
        if self._draining.is_set():
            return 503, {
                "error": "server is draining",
                "error_kind": "unavailable",
            }
        dataset = payload.get("dataset")
        if dataset is not None and not isinstance(dataset, str):
            return 400, {
                "error": "dataset must be a string spec",
                "error_kind": "invalid_request",
            }
        spec = dataset if dataset is not None else self.config.default_dataset
        workers = self.pool.mutate({**payload, "dataset": spec})
        purged = self.store.purge_dataset(spec)
        errors = [reply for reply in workers if "error" in reply]
        if errors:
            return 500, {
                "error": f"{len(errors)} of {len(workers)} workers failed to "
                "confirm the mutation; their dataset copies may have diverged "
                "(restart the daemon or re-register the dataset)",
                "error_kind": "internal_error",
                "dataset": spec,
                "purged_grades": purged,
                "workers": workers,
            }
        return 200, {"dataset": spec, "purged_grades": purged, "workers": workers}

    def handle_cluster_health(self) -> tuple[int, dict[str, Any]]:
        if self.membership is None:
            return 200, {
                "cluster": False,
                "name": None,
                "virtual_nodes": 0,
                "peers": {},
                "live": [],
            }
        return 200, {"cluster": True, **self.membership.describe()}

    def handle_store_lookup(self, payload: Any) -> tuple[int, dict[str, Any]]:
        """The cluster store tier's wire endpoint: one key, local store only.

        Deliberately *not* recursive — a lookup never forwards or grades, so
        two peers probing each other can never create work or loops.
        """
        if not isinstance(payload, Mapping):
            return 400, {
                "error": "store lookup body must be a JSON object",
                "error_kind": "invalid_request",
            }
        try:
            key = StoreKey.from_dict(payload)
        except ReproError as exc:
            return 400, {"error": str(exc), "error_kind": "invalid_request"}
        envelope = self.store.get(key)
        return 200, {"found": envelope is not None, "envelope": envelope}

    def handle_grade(
        self, payload: Any, *, forwarded: bool = False, trace: bool = False
    ) -> tuple[int, dict[str, Any]]:
        try:
            request = SubmissionRequest.from_dict(payload)
        except ReproError as exc:
            return 400, {"error": str(exc), "error_kind": "invalid_request"}
        return self._grade_one(
            request, wait_for_slot=False, forwarded=forwarded, trace=trace
        )

    def handle_debug_traces(self, target: str) -> tuple[int, dict[str, Any]]:
        """Recent traces from the bounded in-memory store (debug surface).

        ``?trace_id=<32hex>`` returns that one trace; otherwise the newest
        ``?limit=`` traces (default 20) plus the slow-request log.
        """
        params = parse_qs(urlsplit(target).query)
        trace_id = (params.get("trace_id") or [None])[0]
        if trace_id:
            spans = self.traces.get(trace_id)
            traces = [] if spans is None else [{"trace_id": trace_id, "spans": spans}]
            return 200, {"traces": traces}
        try:
            limit = int((params.get("limit") or ["20"])[0])
        except ValueError:
            return 400, {"error": "limit must be an integer", "error_kind": "invalid_request"}
        return 200, {
            "traces": self.traces.snapshot(limit=limit),
            "slow": list(self.tracer.slow_spans),
        }

    def handle_grade_batch(self, payload: Any, *, forwarded: bool = False) -> tuple[int, dict[str, Any]]:
        if not isinstance(payload, Mapping) or not isinstance(payload.get("requests"), list):
            return 400, {
                "error": "grade_batch body must be {\"requests\": [...]}",
                "error_kind": "invalid_request",
            }
        items = payload["requests"]
        if len(items) > self.config.max_batch_size:
            return 400, {
                "error": f"batch of {len(items)} exceeds max_batch_size "
                f"{self.config.max_batch_size}",
                "error_kind": "invalid_request",
            }
        requests: list[SubmissionRequest | None] = []
        errors: dict[int, dict[str, Any]] = {}
        for index, item in enumerate(items):
            try:
                requests.append(SubmissionRequest.from_dict(item))
            except ReproError as exc:
                requests.append(None)
                errors[index] = error_envelope(str(exc), "invalid_request", item if isinstance(item, Mapping) else None)
        futures = {
            index: self._batch_pool.submit(
                self._grade_one, request, wait_for_slot=True, forwarded=forwarded
            )
            for index, request in enumerate(requests)
            if request is not None
        }
        results: list[dict[str, Any]] = []
        for index in range(len(items)):
            if index in errors:
                results.append(errors[index])
                continue
            status, envelope = futures[index].result()
            if status != 200:
                # Frontend-level failures (drain, queue timeout, 504) come
                # back as bare {"error", "error_kind"} dicts; batch items
                # must always be full grade envelopes or the client breaks.
                envelope = error_envelope(
                    envelope.get("error", "server error"),
                    envelope.get("error_kind", "unavailable"),
                    items[index] if isinstance(items[index], Mapping) else None,
                )
            results.append(envelope)
        return 200, {"results": results}

    # -- the grading path ----------------------------------------------------

    def _normalize(self, request: SubmissionRequest) -> tuple[str, int]:
        spec = request.dataset if request.dataset is not None else self.config.default_dataset
        seed = self.config.default_seed if request.seed is None else request.seed
        return spec, seed

    def _store_key(self, request: SubmissionRequest, spec: str, seed: int) -> StoreKey:
        return StoreKey.for_request(
            dataset=spec,
            seed=seed,
            backend=self.config.backend,
            correct_query=display_text(request.correct_query),
            test_query=display_text(request.test_query),
            algorithm=request.algorithm,
            params=request.params,
            explain=request.explain,
            options=request.options,
        )

    def _observe(self, stage: str, seconds: float) -> None:
        self.metrics.observe("repro_server_stage_seconds", seconds, {"stage": stage})

    def _observe_explain_stages(self, timings: Mapping[str, Any] | None) -> None:
        """Record the counterexample pipeline's own phase breakdown.

        Explanation-mode grades ship the solver's wall-clock split
        (``raw_eval``/``provenance``/``solver``/``total``) alongside the
        deterministic envelope (like ``grade_time``, it never enters the
        store); scraping it per stage makes "the solver is the bottleneck on
        this workload" visible in Prometheus instead of buried in payloads.
        """
        if not timings:
            return
        for stage, seconds in timings.items():
            if isinstance(seconds, (int, float)):
                self.metrics.observe(
                    "repro_server_explain_stage_seconds",
                    float(seconds),
                    {"stage": str(stage)},
                )

    def _grade_one(
        self,
        request: SubmissionRequest,
        *,
        wait_for_slot: bool,
        forwarded: bool = False,
        trace: bool = False,
    ) -> tuple[int, dict[str, Any]]:
        """Grade one validated request, optionally under a ``server.grade`` span.

        ``trace=True`` (the ``?trace=1`` query flag) records a span for this
        grade and collects the spans produced downstream — forward hop, worker,
        per-operator engine spans — into a ``"trace"`` block on the *returned*
        envelope only.  The block is decoration like ``store``/``wall_time``:
        coalesced followers and the persistent store always see the clean,
        deterministic envelope.
        """
        if not trace:
            return self._grade_inner(
                request, wait_for_slot=wait_for_slot, forwarded=forwarded
            )
        spec, seed = self._normalize(request)
        span = self.tracer.start_span(
            "server.grade",
            attributes={"dataset": spec, "seed": seed, "forwarded": forwarded},
        )
        sink: list[dict[str, Any]] = []
        try:
            status, envelope = self._grade_inner(
                request,
                wait_for_slot=wait_for_slot,
                forwarded=forwarded,
                trace_span=span,
                sink=sink,
            )
        except BaseException as exc:
            span.attributes.setdefault("error", type(exc).__name__)
            self.tracer.finish_span(span, status="error")
            raise
        if status == 200:
            span.attributes["store"] = envelope.get("store")
        # Finish before building the response so the span's duration covers
        # the whole grade and its dict form can ride along in the envelope.
        self.tracer.finish_span(span, status="ok" if status < 500 else "error")
        if status == 200:
            envelope = {
                **envelope,
                "trace": {
                    "trace_id": span.trace_id,
                    "spans": [*sink, span.to_dict()],
                },
            }
        return status, envelope

    def _grade_inner(
        self,
        request: SubmissionRequest,
        *,
        wait_for_slot: bool,
        forwarded: bool = False,
        trace_span: Span | None = None,
        sink: list[dict[str, Any]] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Grade one validated request: store → coalesce → route → worker pool."""
        started = perf_counter()
        spec, seed = self._normalize(request)
        key = self._store_key(request, spec, seed)

        lookup_started = perf_counter()
        stored = self.store.get(key)
        self._observe("store_lookup", perf_counter() - lookup_started)
        if stored is not None:
            self.metrics.inc("repro_server_grades_total", {"store": "hit"})
            self._observe("total", perf_counter() - started)
            return 200, {
                **stored,
                "id": request.id,
                "store": "hit",
                "wall_time": perf_counter() - started,
            }

        if self._draining.is_set():
            return 503, {"error": "server is draining", "error_kind": "unavailable"}

        # Coalesce identical concurrent requests onto one grading future —
        # the common closed-loop pattern where a whole class submits the
        # same wrong query within one scrape interval.  In a cluster this
        # sits *before* routing, so a non-owner makes one wire call for N
        # identical submissions, and the owner coalesces arrivals from
        # different peers: cluster-wide single-flight by composition.
        with self._inflight_lock:
            shared = self._inflight.get(key)
            owner = shared is None
            if owner:
                shared = Future()
                self._inflight[key] = shared
        if not owner:
            try:
                status, envelope, _ = shared.result(timeout=self.config.request_timeout)
            except FutureTimeoutError:
                return 504, {
                    "error": "timed out waiting for an identical in-flight grade",
                    "error_kind": "unavailable",
                }
            if status == 200:
                self.metrics.inc("repro_server_grades_total", {"store": "coalesced"})
                if self.membership is not None:
                    self.metrics.inc("repro_cluster_coalesced_total")
                envelope = {
                    **envelope,
                    "id": request.id,
                    "store": "coalesced",
                    "wall_time": perf_counter() - started,
                }
            self._observe("total", perf_counter() - started)
            return status, envelope

        try:
            status, envelope, grade_time, source = self._compute(
                request, key, spec, seed, wait_for_slot, forwarded,
                trace_span=trace_span, sink=sink,
            )
            shared.set_result((status, dict(envelope), grade_time))
        except BaseException as exc:
            shared.set_exception(exc)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
        if status == 200:
            self.metrics.inc("repro_server_grades_total", {"store": source})
            envelope = {
                **envelope,
                "id": request.id,
                "store": source,
                "wall_time": perf_counter() - started,
            }
        self._observe("total", perf_counter() - started)
        return status, envelope

    def _compute(
        self,
        request: SubmissionRequest,
        key: StoreKey,
        spec: str,
        seed: int,
        wait_for_slot: bool,
        forwarded: bool,
        trace_span: Span | None = None,
        sink: list[dict[str, Any]] | None = None,
    ) -> tuple[int, dict[str, Any], float, str]:
        """Route one cold, non-coalesced grade; returns (status, envelope,
        grade_time, store-source label)."""
        if (
            self.membership is not None
            and self.forwarder is not None
            and self.config.cluster_forward
            and not forwarded
        ):
            peer = self.membership.owner(spec, seed)
            if not self.membership.is_self(peer):
                traced = trace_span is not None and sink is not None
                forward_span: Span | None = None
                try:
                    if traced:
                        # The span context manager makes the forward span
                        # ambient on this thread, so the pooled client injects
                        # its traceparent and the owner's spans join the trace.
                        with self.tracer.span(
                            "cluster.forward", parent=trace_span, attributes={"peer": peer}
                        ) as forward_span:
                            status, envelope = self.forwarder.forward_grade(
                                peer, request.to_dict(), trace=True
                            )
                    else:
                        status, envelope = self.forwarder.forward_grade(
                            peer, request.to_dict()
                        )
                except ForwardError:
                    # Owner unreachable: grade locally.  Correctness is
                    # preserved (grading is deterministic everywhere); only
                    # cache locality is lost until the peer recovers.
                    self.metrics.inc(
                        "repro_cluster_fallback_total", {"peer": peer}
                    )
                else:
                    if status != 200:  # the owner's backpressure (429) is ours
                        return status, dict(envelope), 0.0, "forwarded"
                    self.metrics.inc(
                        "repro_cluster_forwarded_total", {"peer": peer}
                    )
                    envelope = dict(envelope)
                    # The owner's trace block is response decoration, never
                    # store content: lift it out before cleaning/persisting.
                    remote_trace = envelope.pop("trace", None)
                    if sink is not None and isinstance(remote_trace, Mapping):
                        remote_spans = remote_trace.get("spans")
                        if isinstance(remote_spans, list):
                            sink.extend(remote_spans)
                            self._ingest_spans(remote_spans)
                    envelope = self._clean_envelope(envelope)
                    self._maybe_persist(key, envelope)
                    return 200, envelope, 0.0, "forwarded"
                finally:
                    if forward_span is not None and sink is not None:
                        sink.append(forward_span.to_dict())

        if self.membership is not None and self.forwarder is not None:
            # The store tier: before grading cold, ask the key's static
            # preference peers whether anyone already holds this grade.
            remote = self.forwarder.remote_store_lookup(key)
            self.metrics.inc(
                "repro_cluster_store_proxy_total",
                {"result": "hit" if remote is not None else "miss"},
            )
            if remote is not None:
                envelope = self._clean_envelope(remote)
                self._maybe_persist(key, envelope)
                return 200, envelope, 0.0, "remote_hit"

        status, envelope, grade_time = self._grade_via_pool(
            request, key, spec, seed, wait_for_slot,
            trace_span=trace_span, sink=sink,
        )
        if self.membership is not None and status == 200:
            self.metrics.inc("repro_cluster_local_total")
        return status, envelope, grade_time, "miss"

    @staticmethod
    def _clean_envelope(envelope: Mapping[str, Any]) -> dict[str, Any]:
        """Strip the non-deterministic routing fields another daemon added."""
        clean = dict(envelope)
        clean.pop("store", None)
        clean.pop("wall_time", None)
        clean.pop("trace", None)
        return clean

    def _maybe_persist(self, key: StoreKey, envelope: Mapping[str, Any]) -> None:
        """Replicate-on-forward: keep remote grades in the local store slice.

        The next identical submission here is then a plain local hit, and the
        grade survives the remote peer's death — the cluster's only form of
        replication, and all it needs (grades are deterministic, so any copy
        is as authoritative as any other).
        """
        error_kind = (envelope.get("outcome") or {}).get("error_kind")
        if error_kind in _CACHEABLE_ERROR_KINDS:
            write_started = perf_counter()
            self.store.put(key, {**envelope, "id": None})
            self._observe("store_write", perf_counter() - write_started)

    def _grade_via_pool(
        self,
        request: SubmissionRequest,
        key: StoreKey,
        spec: str,
        seed: int,
        wait_for_slot: bool,
        trace_span: Span | None = None,
        sink: list[dict[str, Any]] | None = None,
    ) -> tuple[int, dict[str, Any], float]:
        enqueued = perf_counter()
        trace_ctx = (
            None
            if trace_span is None
            else {"traceparent": trace_span.context.to_traceparent()}
        )
        try:
            future = self.pool.submit(
                request.to_dict(),
                dataset=spec,
                seed=seed,
                wait=wait_for_slot,
                wait_timeout=self.config.request_timeout,
                trace=trace_ctx,
            )
        except QueueFullError as exc:
            return 429, {"error": str(exc), "error_kind": "overloaded"}, 0.0
        try:
            reply = future.result(timeout=self.config.request_timeout)
        except FutureTimeoutError:
            return 504, {
                "error": f"grading exceeded {self.config.request_timeout:.0f}s",
                "error_kind": "unavailable",
            }, 0.0
        grade_time = float(reply.pop("grade_time", 0.0))
        self._observe("grade", grade_time)
        if grade_time > 0:
            # Racy float update is fine: this is a smoothing estimate feeding
            # Retry-After, not an exact statistic.
            self._grade_ewma = (
                grade_time
                if self._grade_ewma == 0.0
                else 0.8 * self._grade_ewma + 0.2 * grade_time
            )
        self._observe("queue_wait", max(0.0, perf_counter() - enqueued - grade_time))
        self._observe_explain_stages(reply.pop("explain_timings", None))
        # Worker spans ship back alongside the envelope; pop them *before* the
        # cacheable-persist below so traces never enter the store.
        spans = reply.pop("trace_spans", None)
        if isinstance(spans, list) and spans:
            if sink is not None:
                sink.extend(spans)
            self._ingest_spans(spans)
        error_kind = (reply.get("outcome") or {}).get("error_kind")
        if error_kind in _CACHEABLE_ERROR_KINDS:
            # The submitter's id is routing, not grade content — strip it so
            # a store hit never echoes back someone else's submission id.
            write_started = perf_counter()
            self.store.put(key, {**reply, "id": None})
            self._observe("store_write", perf_counter() - write_started)
        return 200, reply, grade_time

    # -- the HTTP dispatcher (runs on the event loop's handler pool) ---------

    def retry_after_hint(self) -> int:
        return compute_retry_after(
            self.pool.queue_depth(), self.config.workers, self._grade_ewma
        )

    def _json_response(
        self, status: int, payload: Mapping[str, Any], *, endpoint: str
    ) -> HTTPResponse:
        self.metrics.inc(
            "repro_server_requests_total",
            {"endpoint": endpoint, "status": str(status)},
        )
        headers: tuple[tuple[str, str], ...] = ()
        if status == 429:
            headers = (("Retry-After", str(self.retry_after_hint())),)
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return HTTPResponse(status, body, headers=headers)

    def _read_json_body(self, request: HTTPRequest) -> Any:
        if not request.body:
            raise ReproError("request body is empty; expected a JSON object")
        try:
            return json.loads(request.body)
        except json.JSONDecodeError as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from None

    def _dispatch(self, request: HTTPRequest) -> HTTPResponse:
        # Trace the endpoints that do real work (POST grading paths) and any
        # request that already carries a traceparent (forwarded hops).  GETs
        # without one — health probes at heartbeat rate, Prometheus scrapes —
        # would otherwise churn the bounded trace store with one-span traces.
        traceparent = request.header(TRACEPARENT_HEADER)
        if request.method == "POST" or traceparent is not None:
            with self.tracer.span(
                f"http {request.path}",
                parent=SpanContext.parse(traceparent),
                attributes={"method": request.method},
            ) as span:
                response = self._route(request)
                span.attributes["status"] = response.status
        else:
            response = self._route(request)
        if self.config.verbose:
            print(
                f"{request.method} {request.target} -> {response.status}",
                file=sys.stderr,
                flush=True,
            )
        return response

    def _route(self, request: HTTPRequest) -> HTTPResponse:
        path = request.path
        if request.method == "GET":
            if path == "/healthz":
                status, payload = self.handle_healthz()
                return self._json_response(status, payload, endpoint="/healthz")
            if path == "/metrics":
                self.metrics.inc(
                    "repro_server_requests_total",
                    {"endpoint": "/metrics", "status": "200"},
                )
                return HTTPResponse(
                    200,
                    self.metrics.render().encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            if path == "/v1/datasets":
                status, payload = self.handle_datasets()
                return self._json_response(status, payload, endpoint="/v1/datasets")
            if path == "/v1/cluster/health":
                status, payload = self.handle_cluster_health()
                return self._json_response(
                    status, payload, endpoint="/v1/cluster/health"
                )
            if path == "/v1/debug/traces":
                status, payload = self.handle_debug_traces(request.target)
                return self._json_response(
                    status, payload, endpoint="/v1/debug/traces"
                )
            return self._json_response(
                404, {"error": f"unknown path {path!r}"}, endpoint="other"
            )
        if request.method == "POST":
            if path not in (
                "/v1/grade",
                "/v1/grade_batch",
                "/v1/store/lookup",
                "/v1/datasets/mutate",
            ):
                return self._json_response(
                    404, {"error": f"unknown path {path!r}"}, endpoint="other"
                )
            try:
                payload = self._read_json_body(request)
            except ReproError as exc:
                return self._json_response(
                    400,
                    {"error": str(exc), "error_kind": "invalid_request"},
                    endpoint=path,
                )
            forwarded = request.header(FORWARDED_HEADER.lower()) is not None
            try:
                if path == "/v1/grade":
                    query = parse_qs(urlsplit(request.target).query)
                    trace = (query.get("trace") or ["0"])[0] not in ("", "0", "false")
                    status, body = self.handle_grade(
                        payload, forwarded=forwarded, trace=trace
                    )
                elif path == "/v1/grade_batch":
                    status, body = self.handle_grade_batch(payload, forwarded=forwarded)
                elif path == "/v1/datasets/mutate":
                    status, body = self.handle_datasets_mutate(payload)
                else:
                    status, body = self.handle_store_lookup(payload)
            except Exception as exc:  # noqa: BLE001 — the daemon must answer
                log.exception("unhandled error handling %s", path)
                status, body = 500, {
                    "error": f"internal error: {exc}",
                    "error_kind": "internal_error",
                }
            return self._json_response(status, body, endpoint=path)
        return self._json_response(
            405,
            {"error": f"method {request.method} not allowed"},
            endpoint="other",
        )
