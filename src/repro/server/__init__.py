"""``repro.server``: the long-lived, multi-process grading daemon.

The library layers below this package grade submissions *in process*: every
caller embeds a :class:`~repro.api.service.GradingService`, and all warm
state (instances, engine sessions, memoised results) dies with the caller.
This package is the serving layer on top — the shape a production deployment
of the paper's auto-grader actually takes:

* :class:`~repro.server.app.GradingServer` — a stdlib-only JSON-over-HTTP
  daemon (``repro serve``) exposing ``/v1/grade``, ``/v1/grade_batch``,
  ``/v1/datasets``, ``/healthz`` and Prometheus-text ``/metrics``, with
  bounded-queue backpressure (429) and graceful drain on SIGTERM;
* :class:`~repro.server.workers.WorkerPool` — long-lived worker *processes*,
  each holding warm engine sessions per dataset spec; requests are routed by
  (dataset, seed) so a given dataset's cache locality is preserved;
* :class:`~repro.server.store.ResultStore` — a persistent SQLite (WAL)
  result store keyed by ``(schema_version, dataset, seed, backend,
  reference-query hash, submission-query hash, options hash)``, so identical
  submissions are served from disk across restarts and across workers,
  bit-identical to a cold grade;
* :class:`~repro.server.client.GradingClient` — the matching stdlib HTTP
  client (``repro batch --server URL`` is the CLI client mode).

Wire payloads reuse :mod:`repro.api.serialization` — the versioned JSON
result schema — unchanged; the server adds only a routing envelope.
"""

from repro.server.app import GradingServer, ServerConfig, compute_retry_after
from repro.server.client import GradingClient, ServerError
from repro.server.store import ResultStore, StoreKey
from repro.server.workers import WorkerConfig, WorkerPool

__all__ = [
    "GradingClient",
    "GradingServer",
    "ResultStore",
    "ServerConfig",
    "ServerError",
    "StoreKey",
    "WorkerConfig",
    "WorkerPool",
    "compute_retry_after",
]
