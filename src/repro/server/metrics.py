"""Minimal Prometheus-text metrics for the grading daemon (stdlib only).

Implements just the slice of the Prometheus exposition format the server
needs: labelled counters, gauges (direct or callback-backed) and fixed-bucket
histograms, rendered as ``text/plain; version=0.0.4``.  Everything is
thread-safe; ``/metrics`` scrapes call :meth:`MetricsRegistry.render`.
"""

from __future__ import annotations

import logging
import math
import threading
from typing import Any, Callable, Iterable, Mapping

log = logging.getLogger(__name__)

Labels = Mapping[str, str] | None

#: Counter of gauge callbacks that raised (or returned junk) during a scrape;
#: declared automatically by every registry so scrape health is observable.
CALLBACK_ERRORS_METRIC = "repro_metrics_callback_errors_total"

#: Default latency buckets (seconds): sub-millisecond store lookups up to
#: multi-second counterexample searches.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: Labels) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(pairs: Iterable[tuple[str, str]]) -> str:
    items = list(pairs)
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Declared-upfront metric families with thread-safe updates."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._help: dict[str, tuple[str, str]] = {}  # name -> (type, help)
        self._order: list[str] = []
        self._counters: dict[str, dict[tuple, float]] = {}
        self._counter_callbacks: dict[str, Callable[[], Mapping[tuple, float] | float]] = {}
        self._gauges: dict[str, dict[tuple, float]] = {}
        self._gauge_callbacks: dict[str, Callable[[], Mapping[tuple, float] | float]] = {}
        self._histograms: dict[str, dict[tuple, _Histogram]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}
        self.counter(
            CALLBACK_ERRORS_METRIC,
            "Gauge callbacks that raised during a /metrics scrape (by metric).",
        )

    # -- declaration ---------------------------------------------------------

    def _declare(self, name: str, kind: str, help_text: str) -> None:
        if name in self._help:
            raise ValueError(f"metric {name!r} already declared")
        self._help[name] = (kind, help_text)
        self._order.append(name)

    def counter(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], Mapping[tuple, float] | float] | None = None,
    ) -> None:
        """A counter; with ``callback`` the series is read at scrape time.

        Callback counters mirror callback gauges: the callback returns either
        a bare number or a mapping from label-key tuples to numbers, and the
        returned values *replace* the stored series — the callback owns the
        cumulative total (e.g. a counter maintained by another process).  A
        raising callback is skipped for that scrape, which can make the
        series briefly disappear, never decrease.
        """
        self._declare(name, "counter", help_text)
        self._counters[name] = {}
        if callback is not None:
            self._counter_callbacks[name] = callback

    def gauge(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], Mapping[tuple, float] | float] | None = None,
    ) -> None:
        """A gauge; with ``callback`` the value is computed at scrape time.

        Callbacks return either a bare number or a mapping from label-key
        tuples (as produced by label dicts) to numbers.
        """
        self._declare(name, "gauge", help_text)
        self._gauges[name] = {}
        if callback is not None:
            self._gauge_callbacks[name] = callback

    def histogram(
        self, name: str, help_text: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> None:
        self._declare(name, "histogram", help_text)
        self._histograms[name] = {}
        self._buckets[name] = buckets

    # -- updates -------------------------------------------------------------

    def inc(self, name: str, labels: Labels = None, value: float = 1.0) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._counters[name]
            series[key] = series.get(key, 0.0) + value

    def set(self, name: str, value: float, labels: Labels = None) -> None:
        with self._lock:
            self._gauges[name][_label_key(labels)] = value

    def observe(self, name: str, value: float, labels: Labels = None) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._histograms[name]
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = _Histogram(self._buckets[name])
            histogram.observe(value)

    def counter_value(self, name: str, labels: Labels = None) -> float:
        with self._lock:
            return self._counters[name].get(_label_key(labels), 0.0)

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """The full registry in Prometheus text exposition format.

        State is snapshotted under the lock, but gauge *callbacks* run
        outside it — a callback may be slow (the worker-cache one does a
        cross-process round trip), and it must never stall the hot-path
        ``inc``/``observe`` calls for the duration of a scrape.
        """
        with self._lock:
            order = list(self._order)
            help_texts = dict(self._help)
            counters = {name: dict(series) for name, series in self._counters.items()}
            counter_callbacks = dict(self._counter_callbacks)
            gauges = {name: dict(series) for name, series in self._gauges.items()}
            callbacks = dict(self._gauge_callbacks)
            histograms = {
                name: {
                    key: (histogram.buckets, list(histogram.counts), histogram.total, histogram.count)
                    for key, histogram in series.items()
                }
                for name, series in self._histograms.items()
            }
        for name, callback in counter_callbacks.items():
            # Same failure contract as gauge callbacks below: skip the series
            # this scrape and count the error.
            try:
                produced = callback()
                if isinstance(produced, Mapping):
                    counters[name].update(produced)
                else:
                    counters[name][()] = float(produced)
            except Exception:
                log.warning("metrics counter callback %s failed", name, exc_info=True)
                self.inc(CALLBACK_ERRORS_METRIC, {"metric": name})
        for name, callback in callbacks.items():
            # A raising callback (e.g. the cross-process worker-cache scrape
            # during a worker crash) must not kill the whole exposition: skip
            # just that series and count the failure.  The error counter was
            # snapshotted before callbacks ran, so the increment becomes
            # visible on the *next* scrape — acceptable for a monotonically
            # increasing counter.
            try:
                produced = callback()
                if isinstance(produced, Mapping):
                    gauges[name].update(produced)
                else:
                    gauges[name][()] = float(produced)
            except Exception:
                log.warning("metrics gauge callback %s failed", name, exc_info=True)
                self.inc(CALLBACK_ERRORS_METRIC, {"metric": name})
        lines: list[str] = []
        for name in order:
            kind, help_text = help_texts[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            if kind == "counter":
                series = counters[name]
                for key in sorted(series):
                    lines.append(f"{name}{_render_labels(key)} {_format(series[key])}")
            elif kind == "gauge":
                series = gauges[name]
                for key in sorted(series):
                    lines.append(f"{name}{_render_labels(key)} {_format(series[key])}")
            else:
                lines.extend(self._render_histogram(name, histograms[name]))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(name: str, series: dict[tuple, tuple]) -> list[str]:
        lines = []
        for key in sorted(series):
            buckets, counts, total, count = series[key]
            cumulative = 0
            for bound, bucket_count in zip((*buckets, math.inf), counts):
                cumulative += bucket_count
                labels = (*key, ("le", _format(bound)))
                lines.append(f"{name}_bucket{_render_labels(labels)} {cumulative}")
            lines.append(f"{name}_sum{_render_labels(key)} {_format(total)}")
            lines.append(f"{name}_count{_render_labels(key)} {count}")
        return lines


def label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    """Public helper for gauge callbacks that return labelled series."""
    return _label_key(labels)


__all__ = ["LATENCY_BUCKETS", "MetricsRegistry", "label_key"]
