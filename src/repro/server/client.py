"""Stdlib HTTP client for the grading daemon (the ``--server`` CLI mode).

:class:`GradingClient` speaks the server's JSON protocol over a persistent
``http.client`` connection (keep-alive matters in the closed-loop load
benchmark).  One client instance is **not** thread-safe — a load generator
gives each client thread its own instance, which also mirrors how real
traffic arrives.

Overload is part of the protocol: a 429 answer (bounded-queue backpressure)
is retried with exponential backoff up to ``retries`` times before
:class:`ServerError` escapes, so closed-loop callers degrade into waiting
instead of failing.
"""

from __future__ import annotations

import http.client
import itertools
import json
import random
import socket
import time
from typing import Any, Iterable, Mapping
from urllib.parse import urlsplit

from repro.api.service import SubmissionRequest
from repro.errors import ReproError
from repro.obs.trace import TRACEPARENT_HEADER, current_traceparent

RequestLike = SubmissionRequest | Mapping[str, Any]

#: Never trust a server-suggested Retry-After beyond this many seconds — a
#: busy daemon estimating its queue drain must not park clients for minutes.
MAX_HONORED_RETRY_AFTER = 5.0

_client_counter = itertools.count()


class ServerError(ReproError):
    """The server answered with a non-success status (or was unreachable)."""

    def __init__(self, message: str, *, status: int | None = None, payload: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload


class GradingClient:
    """Client for one ``repro serve`` endpoint, e.g. ``http://127.0.0.1:8080``."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 300.0,
        retries: int = 8,
        backoff: float = 0.05,
        jitter_seed: int | None = None,
    ) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("http", ""):
            raise ReproError(f"only http:// servers are supported, got {base_url!r}")
        if parts.hostname is None:
            raise ReproError(f"cannot parse server URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        # Jittered backoff needs *different* sequences per client or every
        # retrying client re-stampedes in lockstep; mixing in a process-wide
        # counter guarantees that even same-endpoint clients diverge, while
        # an explicit jitter_seed keeps tests reproducible.
        if jitter_seed is None:
            jitter_seed = hash((self.host, self.port, next(_client_counter)))
        self._jitter = random.Random(jitter_seed)
        self._conn: http.client.HTTPConnection | None = None

    # -- transport -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            conn.connect()
            # Small JSON request/response pairs are latency-bound: without
            # TCP_NODELAY, Nagle + delayed ACK costs ~40ms per call.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _once(
        self,
        method: str,
        path: str,
        body: bytes | None,
        extra_headers: Mapping[str, str] | None = None,
    ) -> tuple[int, Any, str, float | None]:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        if extra_headers:
            headers.update(extra_headers)
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # Stale keep-alive (server restarted, idle timeout): reconnect
            # once per attempt rather than failing the call.
            self.close()
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except BaseException:
                self.close()  # never leave a half-sent connection behind
                raise
        text = raw.decode("utf-8", errors="replace")
        content_type = response.headers.get("Content-Type", "")
        payload = json.loads(text) if "json" in content_type and text else None
        retry_after: float | None = None
        header = response.headers.get("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        return response.status, payload, text, retry_after

    def _retry_delay(self, attempt: int, retry_after: float | None) -> float:
        """Backoff for one 429: max(exponential, server hint), jittered.

        Full multiplicative jitter in [0.5, 1.0) keeps retrying clients from
        re-arriving in the same instant (a retry stampede turns one overload
        burst into many) while never more than halving the nominal delay.
        """
        delay = self.backoff * (2**attempt)
        if retry_after is not None and retry_after > 0:
            delay = max(delay, min(retry_after, MAX_HONORED_RETRY_AFTER))
        return delay * (0.5 + 0.5 * self._jitter.random())

    def _request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> Any:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        # Propagate the ambient trace context: a request issued inside a span
        # (e.g. the forwarder's cluster.forward span) carries its traceparent,
        # so the receiving daemon continues the same trace.
        traceparent = current_traceparent()
        if traceparent is not None:
            merged = dict(headers) if headers else {}
            merged.setdefault(TRACEPARENT_HEADER, traceparent)
            headers = merged
        last: tuple[int, Any, str] | None = None
        for attempt in range(self.retries + 1):
            try:
                status, parsed, text, retry_after = self._once(method, path, body, headers)
            except (OSError, http.client.HTTPException) as exc:
                raise ServerError(
                    f"cannot reach server at {self.host}:{self.port}: {exc}"
                ) from exc
            if status == 429 and attempt < self.retries:
                time.sleep(self._retry_delay(attempt, retry_after))
                continue
            last = (status, parsed, text)
            break
        assert last is not None
        status, parsed, text = last
        if status >= 400:
            message = parsed.get("error") if isinstance(parsed, Mapping) else text[:200]
            raise ServerError(
                f"server answered {status} for {method} {path}: {message}",
                status=status,
                payload=parsed,
            )
        return parsed if parsed is not None else text

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def datasets(self) -> dict[str, Any]:
        return self._request("GET", "/v1/datasets")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")

    def cluster_health(self) -> dict[str, Any]:
        """The daemon's cluster view: peer states, live ring, ring params."""
        return self._request("GET", "/v1/cluster/health")

    def store_lookup(self, key_payload: Mapping[str, Any]) -> dict[str, Any]:
        """Ask the daemon's local result store for one key (cluster store tier)."""
        return self._request("POST", "/v1/store/lookup", dict(key_payload))

    def mutate(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Apply an edit stream to a dataset on every worker.

        ``payload`` is ``{"dataset": spec?, "operations": [...]}`` in the
        format of :meth:`repro.api.service.GradingService.mutate`.  Stored
        grades for the dataset are purged server-side; the reply carries each
        worker's delta-maintenance counter increments.
        """
        return self._request("POST", "/v1/datasets/mutate", dict(payload))

    def grade(
        self,
        request: RequestLike,
        *,
        headers: Mapping[str, str] | None = None,
        trace: bool = False,
    ) -> dict[str, Any]:
        """Grade one submission; returns the server's grade envelope.

        ``trace=True`` asks the server for a per-request trace (entry daemon,
        forward hop, worker, per-operator engine spans) attached to the
        envelope under ``"trace"``.
        """
        path = "/v1/grade?trace=1" if trace else "/v1/grade"
        return self._request("POST", path, self._payload(request), headers=headers)

    def debug_traces(
        self, trace_id: str | None = None, limit: int | None = None
    ) -> dict[str, Any]:
        """Recent traces (or one trace by id) from ``/v1/debug/traces``."""
        params = []
        if trace_id is not None:
            params.append(f"trace_id={trace_id}")
        if limit is not None:
            params.append(f"limit={limit}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/v1/debug/traces{query}")

    def grade_batch(self, requests: Iterable[RequestLike], *, chunk_size: int = 500) -> list[dict[str, Any]]:
        """Grade many submissions, preserving order, chunked over the wire."""
        payloads = [self._payload(request) for request in requests]
        results: list[dict[str, Any]] = []
        for start in range(0, len(payloads), chunk_size):
            chunk = payloads[start : start + chunk_size]
            reply = self._request("POST", "/v1/grade_batch", {"requests": chunk})
            results.extend(reply["results"])
        return results

    def wait_until_healthy(self, timeout: float = 15.0, interval: float = 0.05) -> dict[str, Any]:
        """Poll ``/healthz`` until the server answers (for just-booted daemons)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServerError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    @staticmethod
    def _payload(request: RequestLike) -> dict[str, Any]:
        if isinstance(request, SubmissionRequest):
            return request.to_dict()
        return dict(request)

    def __enter__(self) -> "GradingClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


__all__ = ["GradingClient", "ServerError"]
