"""The grading worker pool: long-lived processes with warm engine sessions.

Counterexample search is CPU-bound Python, so threads alone cannot scale a
grading daemon past one core.  The pool runs ``workers`` *processes*, each
embedding a full :class:`~repro.api.service.GradingService` (its own dataset
registry, warm engine sessions, memoised plans and results).  Requests are
routed deterministically by ``(dataset spec, seed)`` — CRC32, stable across
processes and runs — so all traffic for one dataset lands on the worker
whose caches are already hot for it, instead of every worker slowly warming
every dataset.

The parent communicates over multiprocessing queues: one task queue per
worker (routing is a queue choice), one shared result queue drained by a
collector thread that resolves per-request futures.  Workers never die on a
bad request — every exception becomes a grade envelope with an
``error_kind`` — and a crashed worker (OOM, signal) is respawned on the next
submission, with its in-flight requests failed as ``internal_error`` rather
than hung.

Backpressure is the parent's job: :meth:`WorkerPool.submit` refuses work
(:class:`QueueFullError`, surfaced as HTTP 429) once ``max_queue`` requests
are in flight, unless the caller opts into blocking (the batch endpoint,
which owns a whole workload and would rather wait than fail item-by-item).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import zlib
from pathlib import Path
from concurrent.futures import Future
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Any, Mapping

from repro.api.serialization import SCHEMA_VERSION, outcome_to_dict
from repro.errors import ReproError

log = logging.getLogger(__name__)

#: Sentinel asking a worker to exit its loop after finishing queued work.
_SHUTDOWN = None


class QueueFullError(ReproError):
    """The pool's bounded in-flight queue is full (surfaced as HTTP 429)."""


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to build its grading service.

    Must stay picklable (plain data only) so the pool works under both the
    ``fork`` and ``spawn`` multiprocessing start methods.
    """

    backend: str = "python"
    default_dataset: str = "toy-university"
    default_seed: int = 0
    #: Dataset specs resolved (instance built + session created) at worker
    #: startup, before any traffic — the per-spec warm-session guarantee.
    warm_datasets: tuple[str, ...] = ()
    #: Reference queries evaluated through the warm sessions at startup via
    #: :meth:`~repro.engine.session.EngineSession.warmup` (best-effort).
    warm_queries: tuple[str, ...] = ()


def grade_envelope(graded: "Any") -> dict[str, Any]:
    """The deterministic wire form of a graded submission.

    Identical whether the grade was computed cold, served by another worker,
    or read back from the persistent store — timings are deliberately
    excluded (they ride alongside, never inside, this envelope).
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "id": graded.id,
        "dataset": graded.dataset,
        "seed": graded.seed,
        "correct": graded.correct,
        "outcome": outcome_to_dict(graded.outcome, include_timings=False),
    }


def error_envelope(message: str, kind: str, payload: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """An envelope for requests that never reached (or crashed) grading."""
    request = payload if isinstance(payload, Mapping) else {}
    return {
        "schema_version": SCHEMA_VERSION,
        "id": request.get("id"),
        "dataset": request.get("dataset"),
        "seed": request.get("seed", 0),
        "correct": False,
        "outcome": {
            "schema_version": SCHEMA_VERSION,
            "correct": False,
            "report": None,
            "error": message,
            "error_kind": kind,
        },
    }


def _worker_main(worker_id: int, config: WorkerConfig, tasks: Any, results: Any) -> None:
    """Worker process entry point: grade until the shutdown sentinel."""
    # The parent coordinates shutdown through the task queue; stray terminal
    # signals (Ctrl-C fans out to the process group) must not kill workers
    # mid-grade.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)

    from repro.api.service import GradingService, classify_error
    from repro.obs.trace import SpanContext, Tracer, operator_trace

    tracer = Tracer(f"worker-{worker_id}")
    service = GradingService(
        default_dataset=config.default_dataset,
        default_seed=config.default_seed,
        backend=config.backend,
    )
    for spec in dict.fromkeys((config.default_dataset, *config.warm_datasets)):
        try:
            handle = service.handle_for(spec)
        except ReproError:
            continue
        if config.warm_queries:
            handle.session.warmup(config.warm_queries)

    while True:
        item = tasks.get()
        if item is _SHUTDOWN:
            break
        request_id, kind, payload, trace_ctx = item
        try:
            if kind == "stats":
                reply: dict[str, Any] = {
                    "worker": worker_id,
                    "registry": service.registry.cache_info(),
                    "sessions": service.registry.session_stats(),
                }
            elif kind == "mutate":
                # Dataset edits broadcast to every worker (each process owns
                # its own registry and instances), so all copies of a dataset
                # mutate identically and warm sessions stay delta-maintained.
                try:
                    reply = {"worker": worker_id, **service.mutate(payload)}
                except ReproError as exc:
                    reply = {"worker": worker_id, "error": str(exc)}
            elif trace_ctx is not None:
                # Traced grade: continue the parent's trace across the process
                # boundary, collect every span (worker, grade phases, engine
                # operators) and ship them back alongside the envelope.
                parent = SpanContext.parse(trace_ctx.get("traceparent"))
                started = perf_counter()
                with tracer.capture() as spans, operator_trace(True), tracer.span(
                    "worker.grade", parent=parent, attributes={"worker": worker_id}
                ):
                    graded = service.submit(payload)
                reply = grade_envelope(graded)
                reply["grade_time"] = perf_counter() - started
                reply["trace_spans"] = spans
                report = graded.outcome.report
                if report is not None and report.result.timings:
                    reply["explain_timings"] = dict(report.result.timings)
            else:
                started = perf_counter()
                graded = service.submit(payload)
                reply = grade_envelope(graded)
                reply["grade_time"] = perf_counter() - started
                # The counterexample pipeline's phase split rides alongside
                # the envelope, like grade_time: timings are non-deterministic
                # and must never enter the stored/deduplicated grade itself.
                report = graded.outcome.report
                if report is not None and report.result.timings:
                    reply["explain_timings"] = dict(report.result.timings)
        except BaseException as exc:  # noqa: BLE001 — workers must not die
            kind_label = classify_error(exc)
            reply = error_envelope(str(exc) or repr(exc), kind_label, payload)
            reply["grade_time"] = 0.0
        results.put((request_id, reply))


class WorkerPool:
    """Routes grading requests to long-lived worker processes."""

    def __init__(
        self,
        config: WorkerConfig | None = None,
        *,
        workers: int = 2,
        max_queue: int = 64,
        mp_context: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ReproError("worker pool needs at least one worker process")
        self.config = config if config is not None else WorkerConfig()
        self.workers = workers
        self.max_queue = max_queue
        # Every worker warms these specs at startup, so requests for them can
        # go to whichever worker is least loaded; other specs stay pinned.
        self._spread_specs = frozenset(
            {self.config.default_dataset, *self.config.warm_datasets}
        )
        # ``spawn`` (the default) re-imports :mod:`repro` in each worker — it
        # is fork-safe under the threaded HTTP frontend, and cheap because
        # the import totals ≈0.1s.
        self._needs_pythonpath = mp_context in ("spawn", "forkserver")
        self._ctx = multiprocessing.get_context(mp_context)
        self._results = self._ctx.Queue()
        self._tasks = [self._ctx.Queue() for _ in range(workers)]
        self._procs: list[Any] = [None] * workers
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._pending: dict[int, tuple[Future, int]] = {}  # id -> (future, worker)
        # Stats probes ride the same queues but are tracked separately so a
        # /metrics scrape never eats grading slots (spurious 429s) nor
        # inflates the reported queue depth.
        self._pending_stats: dict[int, tuple[Future, int]] = {}
        self._next_id = 0
        self._closed = False
        self._stop = threading.Event()
        self.restarts = 0
        #: Sweeps of the liveness watchdog that raised (and were survived).
        #: Exposed as the ``repro_server_watchdog_errors`` gauge — a nonzero
        #: value means liveness checking is degraded, not merely that a
        #: worker died (that is ``restarts``).
        self.watchdog_errors = 0
        for index in range(workers):
            self._spawn(index)
        self._collector = threading.Thread(
            target=self._collect, name="repro-pool-collector", daemon=True
        )
        self._collector.start()
        # Without the watchdog, a worker dying mid-grade (OOM kill, stray
        # signal) would leave its requests hanging until the HTTP timeout;
        # with it they fail fast as internal errors and the worker respawns.
        self._watchdog = threading.Thread(
            target=self._watch, name="repro-pool-watchdog", daemon=True
        )
        self._watchdog.start()

    # -- lifecycle -----------------------------------------------------------

    #: Serializes the scoped PYTHONPATH edit across pools/threads.
    _spawn_env_lock = threading.Lock()

    def _spawn(self, index: int) -> None:
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, self.config, self._tasks[index], self._results),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        if self._needs_pythonpath:
            # Spawned children resolve :mod:`repro` via PYTHONPATH (the
            # parent may have gotten it from sys.path manipulation instead).
            # The child snapshots the environment during start(), so the
            # edit is scoped to the call and restored — the host process's
            # environment is not permanently mutated.
            package_root = str(Path(__file__).resolve().parents[2])
            with self._spawn_env_lock:
                before = os.environ.get("PYTHONPATH")
                entries = (before or "").split(os.pathsep) if before else []
                try:
                    if package_root not in entries:
                        os.environ["PYTHONPATH"] = os.pathsep.join(
                            [package_root, *entries]
                        )
                    process.start()
                finally:
                    if before is None:
                        os.environ.pop("PYTHONPATH", None)
                    else:
                        os.environ["PYTHONPATH"] = before
        else:
            process.start()
        self._procs[index] = process

    def _ensure_alive(self, index: int) -> None:
        """Respawn a dead worker; fail whatever was routed to it (caller holds lock)."""
        process = self._procs[index]
        if process.is_alive():
            return
        process.join(timeout=0.1)
        self.restarts += 1
        message = (
            f"worker {index} died (exit code {process.exitcode}) and was restarted"
        )
        dead = [rid for rid, (_, worker) in self._pending.items() if worker == index]
        for rid in dead:
            future, _ = self._pending.pop(rid)
            future.set_result(error_envelope(message, "internal_error"))
        for rid in [
            rid for rid, (_, worker) in self._pending_stats.items() if worker == index
        ]:
            future, _ = self._pending_stats.pop(rid)
            future.set_result({"worker": index, "error": message})
        if dead:
            self._slot_freed.notify_all()
        self._spawn(index)

    def _watch(self, interval: float = 0.5) -> None:
        # One bad sweep must not kill the thread: an unguarded exception here
        # (e.g. a respawn failing under fd pressure) would silently end all
        # liveness checking, leaving future worker deaths to hang requests
        # until the HTTP timeout.  Count and log, never die.
        while not self._stop.wait(interval):
            try:
                with self._lock:
                    if self._closed:
                        return
                    for index in range(self.workers):
                        self._ensure_alive(index)
            except Exception:  # noqa: BLE001
                self.watchdog_errors += 1
                log.exception(
                    "worker watchdog sweep failed (%d so far); continuing",
                    self.watchdog_errors,
                )

    def _collect(self) -> None:
        while True:
            item = self._results.get()
            if item is _SHUTDOWN:
                break
            request_id, reply = item
            with self._lock:
                entry = self._pending.pop(request_id, None)
                if entry is None:
                    entry = self._pending_stats.pop(request_id, None)
                self._slot_freed.notify_all()
            if entry is not None:
                entry[0].set_result(reply)

    def close(self, timeout: float = 10.0) -> None:
        """Drain-and-stop: workers finish queued grades, then exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        for queue in self._tasks:
            queue.put(_SHUTDOWN)
        deadline = monotonic() + timeout
        for process in self._procs:
            process.join(timeout=max(0.1, deadline - monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._results.put(_SHUTDOWN)
        self._collector.join(timeout=5.0)
        with self._lock:
            leftover = list(self._pending.values())
            self._pending.clear()
            self._pending_stats.clear()
        for future, _ in leftover:
            future.set_result(
                error_envelope("server shut down before the grade finished", "unavailable")
            )

    # -- submission ----------------------------------------------------------

    def route(self, dataset: str, seed: int) -> int:
        """Deterministic worker index for a dataset — cache locality."""
        return zlib.crc32(f"{dataset}#{seed}".encode("utf-8")) % self.workers

    def _choose_worker(self, dataset: str, seed: int) -> int:
        """Routing with a parallelism fallback (caller holds the lock).

        Specs every worker warmed at startup (the default dataset and
        ``warm_datasets``) are warm *everywhere*, so pinning them to one
        CRC32 slot would leave the other workers idle in the common
        one-class deployment; those go to the least-loaded worker instead.
        Everything else keeps strict pinning — only its CRC32 worker has
        (or will build) that dataset's warm session.
        """
        if dataset in self._spread_specs and seed == self.config.default_seed:
            counts = [0] * self.workers
            for _, worker in self._pending.values():
                counts[worker] += 1
            return min(range(self.workers), key=lambda index: (counts[index], index))
        return self.route(dataset, seed)

    def submit(
        self,
        payload: Mapping[str, Any],
        *,
        dataset: str,
        seed: int,
        wait: bool = False,
        wait_timeout: float = 60.0,
        trace: Mapping[str, Any] | None = None,
    ) -> Future:
        """Enqueue one grading request; the future resolves to its envelope.

        ``wait=False`` (the ``/v1/grade`` path) raises :class:`QueueFullError`
        when ``max_queue`` requests are already in flight; ``wait=True`` (the
        batch path) blocks until a slot frees, up to ``wait_timeout``.

        ``trace`` (a dict with a ``"traceparent"`` key, or ``None``) asks the
        worker to trace the grade and return its spans in the reply under
        ``"trace_spans"``.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise ReproError("worker pool is shut down")
            if len(self._pending) >= self.max_queue:
                if not wait:
                    raise QueueFullError(
                        f"grading queue is full ({self.max_queue} requests in flight)"
                    )
                deadline = monotonic() + wait_timeout
                while len(self._pending) >= self.max_queue:
                    remaining = deadline - monotonic()
                    if remaining <= 0 or self._closed:
                        raise QueueFullError(
                            f"grading queue stayed full for {wait_timeout:.0f}s"
                        )
                    self._slot_freed.wait(timeout=remaining)
            worker = self._choose_worker(dataset, seed)
            self._ensure_alive(worker)
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = (future, worker)
        self._tasks[worker].put(
            (request_id, "grade", dict(payload), None if trace is None else dict(trace))
        )
        return future

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for every in-flight request to finish; ``True`` on success."""
        deadline = monotonic() + timeout
        with self._lock:
            while self._pending:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    return False
                self._slot_freed.wait(timeout=remaining)
        return True

    # -- introspection -------------------------------------------------------

    def mutate(self, payload: Mapping[str, Any], timeout: float = 30.0) -> list[dict[str, Any]]:
        """Broadcast one dataset edit stream to every worker; collect replies.

        Rides the per-worker task queues *behind* any queued grades, so each
        worker applies the edits at a deterministic point in its own request
        order.  Unlike :meth:`stats`, replies are awaited strictly (a worker
        that cannot confirm within ``timeout`` yields an ``error`` entry
        instead of being skipped): callers must know whether every worker's
        copy of the dataset mutated before trusting subsequent grades.
        """
        futures: list[tuple[int, int, Future]] = []
        with self._lock:
            if self._closed:
                raise ReproError("worker pool is shut down")
            for index in range(self.workers):
                self._ensure_alive(index)
                request_id = self._next_id
                self._next_id += 1
                future: Future = Future()
                self._pending_stats[request_id] = (future, index)
                futures.append((request_id, index, future))
        for (request_id, index, _future) in futures:
            self._tasks[index].put((request_id, "mutate", dict(payload), None))
        deadline = monotonic() + timeout
        replies: list[dict[str, Any]] = []
        for request_id, index, future in futures:
            try:
                replies.append(future.result(timeout=max(0.0, deadline - monotonic())))
            except Exception as exc:  # noqa: BLE001 — report, don't hang
                with self._lock:
                    self._pending_stats.pop(request_id, None)
                replies.append(
                    {"worker": index, "error": f"mutation not confirmed: {exc}"}
                )
        return replies

    def stats(self, timeout: float = 2.0) -> list[dict[str, Any]]:
        """Cache statistics from every live worker (best-effort, bounded).

        Stat probes ride the normal task queues, so they also measure that a
        worker is responsive; a worker busy past ``timeout`` just reports
        nothing this scrape.
        """
        futures: list[tuple[int, Future]] = []
        with self._lock:
            if self._closed:
                return []
            for index in range(self.workers):
                self._ensure_alive(index)
                request_id = self._next_id
                self._next_id += 1
                future: Future = Future()
                self._pending_stats[request_id] = (future, index)
                futures.append((request_id, future))
        for (request_id, _), queue in zip(futures, self._tasks):
            queue.put((request_id, "stats", None, None))
        deadline = monotonic() + timeout
        collected = []
        for request_id, future in futures:
            try:
                reply = future.result(timeout=max(0.0, deadline - monotonic()))
            except Exception:
                # Best-effort by design (a busy worker just skips a scrape),
                # but leave a trace instead of swallowing silently.
                log.debug("stats probe %d timed out or failed", request_id, exc_info=True)
                with self._lock:
                    self._pending_stats.pop(request_id, None)
                continue
            if "registry" in reply:
                collected.append(reply)
        return collected

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
