"""Seeded synthetic data generators: university, beers/bars, TPC-H-lite."""

from repro.datagen.beers import beers_instance, beers_schema, toy_beers_instance
from repro.datagen.tpch import TpchSizes, tpch_instance, tpch_schema
from repro.datagen.university import (
    DEPARTMENTS,
    toy_university_instance,
    university_instance,
    university_instance_with_size,
    university_schema,
)

__all__ = [
    "DEPARTMENTS",
    "TpchSizes",
    "beers_instance",
    "beers_schema",
    "toy_beers_instance",
    "toy_university_instance",
    "tpch_instance",
    "tpch_schema",
    "university_instance",
    "university_instance_with_size",
    "university_schema",
]
