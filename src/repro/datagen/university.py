"""The university (course-assignment) schema and data generators.

This is the schema of the paper's running example and of the §7.1 experiments:
``Student(name, major)`` and ``Registration(name, course, dept, grade)`` with
a foreign key from registrations to students.  Three generators are provided:

* :func:`toy_university_instance` — the exact instance of Figure 1 (used in
  tests and the quickstart example);
* :func:`university_instance` — a seeded synthetic instance parameterised by
  the number of students;
* :func:`university_instance_with_size` — a seeded instance with (almost
  exactly) a requested total tuple count, matching the 1K–100K sweep of
  Table 3 and Figure 4.
"""

from __future__ import annotations

import random

from repro.catalog.constraints import ForeignKeyConstraint, KeyConstraint
from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.catalog.types import DataType

DEPARTMENTS = ("CS", "ECON", "MATH", "BIO", "ART", "PHYS")

_FIRST_NAMES = (
    "Mary", "John", "Jesse", "Alice", "Bob", "Carol", "David", "Erin", "Frank",
    "Grace", "Heidi", "Ivan", "Judy", "Karl", "Liam", "Mona", "Nina", "Oscar",
    "Peggy", "Quinn", "Rita", "Sam", "Tina", "Uma", "Victor", "Wendy", "Xena",
    "Yuri", "Zoe",
)

_COURSE_NUMBERS = tuple(range(101, 140)) + (201, 208, 216, 230, 290, 316, 330, 356, 401, 516, 590)


def university_schema(*, with_foreign_keys: bool = True) -> DatabaseSchema:
    """The Student/Registration schema with its integrity constraints."""
    student = RelationSchema.of(
        "Student", [("name", DataType.STRING), ("major", DataType.STRING)]
    )
    registration = RelationSchema.of(
        "Registration",
        [
            ("name", DataType.STRING),
            ("course", DataType.STRING),
            ("dept", DataType.STRING),
            ("grade", DataType.INT),
        ],
    )
    schema = DatabaseSchema.of([student, registration])
    schema.add_constraint(KeyConstraint("Student", ("name",)))
    schema.add_constraint(KeyConstraint("Registration", ("name", "course")))
    if with_foreign_keys:
        schema.add_constraint(
            ForeignKeyConstraint("Registration", ("name",), "Student", ("name",))
        )
    return schema


def toy_university_instance() -> DatabaseInstance:
    """The exact toy instance of Figure 1 (3 students, 8 registrations)."""
    instance = DatabaseInstance(university_schema())
    instance.relation("Student").insert_all(
        [("Mary", "CS"), ("John", "ECON"), ("Jesse", "CS")]
    )
    instance.relation("Registration").insert_all(
        [
            ("Mary", "216", "CS", 100),
            ("Mary", "230", "CS", 75),
            ("Mary", "208D", "ECON", 95),
            ("John", "316", "CS", 90),
            ("John", "208D", "ECON", 88),
            ("Jesse", "216", "CS", 95),
            ("Jesse", "316", "CS", 90),
            ("Jesse", "330", "CS", 85),
        ]
    )
    return instance


def university_instance(
    num_students: int,
    *,
    seed: int = 0,
    min_courses: int = 1,
    max_courses: int = 6,
) -> DatabaseInstance:
    """A seeded synthetic instance with ``num_students`` students.

    Every student registers for between ``min_courses`` and ``max_courses``
    distinct courses; roughly 40% of registrations are CS courses so that the
    course questions (which all involve the CS department) have non-trivial
    answers at every scale.
    """
    rng = random.Random(seed)
    instance = DatabaseInstance(university_schema())
    students = instance.relation("Student")
    registrations = instance.relation("Registration")
    for index in range(num_students):
        name = _student_name(index)
        major = rng.choice(DEPARTMENTS)
        students.insert((name, major))
        # A small fraction of students never registered for anything: these
        # corner-case rows are what small test instances tend to miss, which
        # is why Table 3 discovers more wrong queries as |D| grows.
        if rng.random() < 0.01:
            continue
        num_courses = rng.randint(min_courses, min(max_courses, len(_COURSE_NUMBERS)))
        course_numbers = rng.sample(_COURSE_NUMBERS, num_courses)
        for number in sorted(course_numbers):
            dept = "CS" if rng.random() < 0.4 else rng.choice(DEPARTMENTS)
            grade = rng.randint(40, 100)
            registrations.insert((name, str(number), dept, grade))
    return instance


def university_instance_with_size(total_tuples: int, *, seed: int = 0) -> DatabaseInstance:
    """An instance with approximately ``total_tuples`` tuples overall.

    With an average of 3.5 registrations per student, a student contributes
    about 4.5 tuples, so ``total_tuples // 4.5`` students get generated and
    the actual size lands within a few percent of the request.  This is the
    generator used for the 1,000 / 4,000 / 10,000 / 40,000 / 100,000 sweep.
    """
    if total_tuples < 10:
        raise ValueError("total_tuples must be at least 10")
    num_students = max(2, int(total_tuples / 4.5))
    return university_instance(num_students, seed=seed)


def _student_name(index: int) -> str:
    first = _FIRST_NAMES[index % len(_FIRST_NAMES)]
    return f"{first}_{index}" if index >= len(_FIRST_NAMES) else first
