"""TPC-H-lite: the benchmark schema and a proportionally scaled generator.

The paper's aggregate-query experiments (§7.2, Figures 6 and 7) run on the
TPC-H benchmark at scale factor 1 (≈8.6M tuples) on SQL Server.  A pure-Python
engine cannot hold the original scale interactively, so the generator keeps the
*schema, key relationships and skew structure* of TPC-H but scales row counts
down proportionally: ``scale=1.0`` produces roughly 10K tuples — large enough
that group sizes (the quantity that makes Agg-Basic struggle) behave like the
original, small enough to run on a laptop.  Dates are encoded as integer
"day numbers" since only comparisons are needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.constraints import ForeignKeyConstraint, KeyConstraint
from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.catalog.types import DataType

ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
ORDER_STATUSES = ("O", "F", "P")
BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
TYPES = (
    "STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED BRASS",
    "ECONOMY BRUSHED STEEL", "PROMO BURNISHED NICKEL", "LARGE ANODIZED COPPER",
)
NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
)
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")


@dataclass(frozen=True)
class TpchSizes:
    """Row counts per table for a given scale factor."""

    regions: int
    nations: int
    suppliers: int
    customers: int
    parts: int
    partsupps: int
    orders: int
    lineitems_per_order: int

    @staticmethod
    def for_scale(scale: float) -> "TpchSizes":
        return TpchSizes(
            regions=5,
            nations=25,
            suppliers=max(3, int(40 * scale)),
            customers=max(5, int(300 * scale)),
            parts=max(5, int(150 * scale)),
            partsupps=max(10, int(500 * scale)),
            orders=max(10, int(1200 * scale)),
            lineitems_per_order=4,
        )


def tpch_schema() -> DatabaseSchema:
    """The eight TPC-H tables with primary keys and foreign keys."""
    schema = DatabaseSchema.of(
        [
            RelationSchema.of("region", [("r_regionkey", DataType.INT), ("r_name", DataType.STRING)]),
            RelationSchema.of(
                "nation",
                [("n_nationkey", DataType.INT), ("n_name", DataType.STRING), ("n_regionkey", DataType.INT)],
            ),
            RelationSchema.of(
                "supplier",
                [("s_suppkey", DataType.INT), ("s_name", DataType.STRING), ("s_nationkey", DataType.INT)],
            ),
            RelationSchema.of(
                "customer",
                [
                    ("c_custkey", DataType.INT),
                    ("c_name", DataType.STRING),
                    ("c_nationkey", DataType.INT),
                    ("c_acctbal", DataType.FLOAT),
                ],
            ),
            RelationSchema.of(
                "part",
                [
                    ("p_partkey", DataType.INT),
                    ("p_name", DataType.STRING),
                    ("p_brand", DataType.STRING),
                    ("p_type", DataType.STRING),
                    ("p_size", DataType.INT),
                ],
            ),
            RelationSchema.of(
                "partsupp",
                [
                    ("ps_partkey", DataType.INT),
                    ("ps_suppkey", DataType.INT),
                    ("ps_availqty", DataType.INT),
                    ("ps_supplycost", DataType.FLOAT),
                ],
            ),
            RelationSchema.of(
                "orders",
                [
                    ("o_orderkey", DataType.INT),
                    ("o_custkey", DataType.INT),
                    ("o_orderstatus", DataType.STRING),
                    ("o_totalprice", DataType.FLOAT),
                    ("o_orderdate", DataType.INT),
                    ("o_orderpriority", DataType.STRING),
                ],
            ),
            RelationSchema.of(
                "lineitem",
                [
                    ("l_orderkey", DataType.INT),
                    ("l_partkey", DataType.INT),
                    ("l_suppkey", DataType.INT),
                    ("l_linenumber", DataType.INT),
                    ("l_quantity", DataType.INT),
                    ("l_extendedprice", DataType.FLOAT),
                    ("l_commitdate", DataType.INT),
                    ("l_receiptdate", DataType.INT),
                    ("l_returnflag", DataType.STRING),
                ],
            ),
        ]
    )
    schema.add_constraint(KeyConstraint("region", ("r_regionkey",)))
    schema.add_constraint(KeyConstraint("nation", ("n_nationkey",)))
    schema.add_constraint(KeyConstraint("supplier", ("s_suppkey",)))
    schema.add_constraint(KeyConstraint("customer", ("c_custkey",)))
    schema.add_constraint(KeyConstraint("part", ("p_partkey",)))
    schema.add_constraint(KeyConstraint("partsupp", ("ps_partkey", "ps_suppkey")))
    schema.add_constraint(KeyConstraint("orders", ("o_orderkey",)))
    schema.add_constraint(KeyConstraint("lineitem", ("l_orderkey", "l_linenumber")))
    schema.add_constraint(ForeignKeyConstraint("nation", ("n_regionkey",), "region", ("r_regionkey",)))
    schema.add_constraint(ForeignKeyConstraint("supplier", ("s_nationkey",), "nation", ("n_nationkey",)))
    schema.add_constraint(ForeignKeyConstraint("customer", ("c_nationkey",), "nation", ("n_nationkey",)))
    schema.add_constraint(ForeignKeyConstraint("partsupp", ("ps_partkey",), "part", ("p_partkey",)))
    schema.add_constraint(ForeignKeyConstraint("partsupp", ("ps_suppkey",), "supplier", ("s_suppkey",)))
    schema.add_constraint(ForeignKeyConstraint("orders", ("o_custkey",), "customer", ("c_custkey",)))
    schema.add_constraint(ForeignKeyConstraint("lineitem", ("l_orderkey",), "orders", ("o_orderkey",)))
    schema.add_constraint(ForeignKeyConstraint("lineitem", ("l_partkey",), "part", ("p_partkey",)))
    schema.add_constraint(ForeignKeyConstraint("lineitem", ("l_suppkey",), "supplier", ("s_suppkey",)))
    return schema


def tpch_instance(scale: float = 0.1, *, seed: int = 0) -> DatabaseInstance:
    """Generate a TPC-H-lite instance at the given scale factor."""
    rng = random.Random(seed)
    sizes = TpchSizes.for_scale(scale)
    instance = DatabaseInstance(tpch_schema())

    for key in range(sizes.regions):
        instance.relation("region").insert((key, REGIONS[key % len(REGIONS)]))
    for key in range(sizes.nations):
        instance.relation("nation").insert(
            (key, NATIONS[key % len(NATIONS)], key % sizes.regions)
        )
    for key in range(1, sizes.suppliers + 1):
        instance.relation("supplier").insert(
            (key, f"Supplier#{key:06d}", rng.randrange(sizes.nations))
        )
    for key in range(1, sizes.customers + 1):
        instance.relation("customer").insert(
            (key, f"Customer#{key:06d}", rng.randrange(sizes.nations), round(rng.uniform(-999, 9999), 2))
        )
    for key in range(1, sizes.parts + 1):
        instance.relation("part").insert(
            (
                key,
                f"part {key}",
                rng.choice(BRANDS),
                rng.choice(TYPES),
                rng.choice((1, 5, 10, 15, 23, 45, 49)),
            )
        )
    seen_partsupp: set[tuple[int, int]] = set()
    partsupp_target = min(sizes.partsupps, sizes.parts * sizes.suppliers)
    while len(seen_partsupp) < partsupp_target:
        pair = (rng.randint(1, sizes.parts), rng.randint(1, sizes.suppliers))
        if pair in seen_partsupp:
            continue
        seen_partsupp.add(pair)
        instance.relation("partsupp").insert(
            (pair[0], pair[1], rng.randint(1, 9999), round(rng.uniform(1, 1000), 2))
        )
    for orderkey in range(1, sizes.orders + 1):
        orderdate = rng.randint(0, 2400)  # day number within the 1992-1998 window
        instance.relation("orders").insert(
            (
                orderkey,
                rng.randint(1, sizes.customers),
                rng.choice(ORDER_STATUSES),
                round(rng.uniform(1000, 400000), 2),
                orderdate,
                rng.choice(ORDER_PRIORITIES),
            )
        )
        num_lines = rng.randint(1, sizes.lineitems_per_order * 2 - 1)
        for linenumber in range(1, num_lines + 1):
            commit = orderdate + rng.randint(10, 90)
            receipt = commit + rng.randint(-20, 40)
            instance.relation("lineitem").insert(
                (
                    orderkey,
                    rng.randint(1, sizes.parts),
                    rng.randint(1, sizes.suppliers),
                    linenumber,
                    rng.randint(1, 50),
                    round(rng.uniform(100, 100000), 2),
                    commit,
                    receipt,
                    rng.choice(("R", "A", "N")),
                )
            )
    return instance
