"""The beers/bars/drinkers schema used in the user-study homework (§8).

Six relations about bars, beers, drinkers and their relationships, exactly the
shape of the homework database the paper describes: ``Drinker``, ``Bar``,
``Beer``, ``Frequents(drinker, bar, times_a_week)``, ``Serves(bar, beer,
price)`` and ``Likes(drinker, beer)``.
"""

from __future__ import annotations

import random

from repro.catalog.constraints import ForeignKeyConstraint, KeyConstraint
from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.catalog.types import DataType

_DRINKERS = (
    "Ben", "Dan", "Amy", "Coy", "Eve", "Fay", "Gus", "Hal", "Ivy", "Joe",
    "Kim", "Lou", "Meg", "Ned", "Ola", "Pat", "Quin", "Ray", "Sue", "Tom",
)
_BARS = (
    "JJ Pub", "Satisfaction", "Talk of the Town", "The Edge", "Blue Note",
    "Crow Bar", "Down Under", "East End", "Federal", "Green Room",
)
_BEERS = (
    ("Corona", "Grupo Modelo"),
    ("Budweiser", "Anheuser-Busch"),
    ("Dixie", "Dixie Brewing"),
    ("Erdinger", "Erdinger Weissbrau"),
    ("Full Sail", "Full Sail Brewing"),
    ("Guinness", "St. James's Gate"),
    ("Heineken", "Heineken"),
    ("IPA", "Local Craft"),
)


def beers_schema() -> DatabaseSchema:
    """Schema plus keys and foreign keys for the beers database."""
    schema = DatabaseSchema.of(
        [
            RelationSchema.of("Drinker", [("name", DataType.STRING), ("address", DataType.STRING)]),
            RelationSchema.of("Bar", [("name", DataType.STRING), ("address", DataType.STRING)]),
            RelationSchema.of("Beer", [("name", DataType.STRING), ("brewer", DataType.STRING)]),
            RelationSchema.of(
                "Frequents",
                [
                    ("drinker", DataType.STRING),
                    ("bar", DataType.STRING),
                    ("times_a_week", DataType.INT),
                ],
            ),
            RelationSchema.of(
                "Serves",
                [("bar", DataType.STRING), ("beer", DataType.STRING), ("price", DataType.FLOAT)],
            ),
            RelationSchema.of(
                "Likes", [("drinker", DataType.STRING), ("beer", DataType.STRING)]
            ),
        ]
    )
    schema.add_constraint(KeyConstraint("Drinker", ("name",)))
    schema.add_constraint(KeyConstraint("Bar", ("name",)))
    schema.add_constraint(KeyConstraint("Beer", ("name",)))
    schema.add_constraint(KeyConstraint("Frequents", ("drinker", "bar")))
    schema.add_constraint(KeyConstraint("Serves", ("bar", "beer")))
    schema.add_constraint(KeyConstraint("Likes", ("drinker", "beer")))
    schema.add_constraint(ForeignKeyConstraint("Frequents", ("drinker",), "Drinker", ("name",)))
    schema.add_constraint(ForeignKeyConstraint("Frequents", ("bar",), "Bar", ("name",)))
    schema.add_constraint(ForeignKeyConstraint("Serves", ("bar",), "Bar", ("name",)))
    schema.add_constraint(ForeignKeyConstraint("Serves", ("beer",), "Beer", ("name",)))
    schema.add_constraint(ForeignKeyConstraint("Likes", ("drinker",), "Drinker", ("name",)))
    schema.add_constraint(ForeignKeyConstraint("Likes", ("beer",), "Beer", ("name",)))
    return schema


def toy_beers_instance() -> DatabaseInstance:
    """A small hand-written instance (the "sample database" students see)."""
    instance = DatabaseInstance(beers_schema())
    instance.relation("Drinker").insert_all(
        [("Ben", "Durham"), ("Dan", "Chapel Hill"), ("Amy", "Raleigh"), ("Coy", "Durham")]
    )
    instance.relation("Bar").insert_all(
        [("JJ Pub", "Main St"), ("Satisfaction", "9th St"), ("Talk of the Town", "Broad St")]
    )
    instance.relation("Beer").insert_all(
        [("Corona", "Grupo Modelo"), ("Budweiser", "Anheuser-Busch"), ("Dixie", "Dixie Brewing")]
    )
    instance.relation("Frequents").insert_all(
        [
            ("Ben", "JJ Pub", 2),
            ("Ben", "Satisfaction", 1),
            ("Dan", "Satisfaction", 3),
            ("Amy", "JJ Pub", 1),
            ("Coy", "Talk of the Town", 2),
        ]
    )
    instance.relation("Serves").insert_all(
        [
            ("JJ Pub", "Corona", 3.5),
            ("JJ Pub", "Budweiser", 2.5),
            ("Satisfaction", "Corona", 4.0),
            ("Satisfaction", "Dixie", 3.0),
            ("Talk of the Town", "Budweiser", 2.0),
        ]
    )
    instance.relation("Likes").insert_all(
        [
            ("Ben", "Corona"),
            ("Dan", "Dixie"),
            ("Dan", "Corona"),
            ("Amy", "Budweiser"),
            ("Coy", "Budweiser"),
        ]
    )
    return instance


def beers_instance(
    *,
    num_drinkers: int = 40,
    num_bars: int = 12,
    num_beers: int = 8,
    seed: int = 0,
) -> DatabaseInstance:
    """A seeded "hidden grading instance" exercising many corner cases.

    The generator deliberately creates drinkers that frequent no bar, bars
    that serve nothing, drinkers that like beers served nowhere, and pairs of
    bars with subset/superset beer menus — the corner cases that make the
    user-study problems (g), (h), (i), (j) hard.
    """
    rng = random.Random(seed)
    instance = DatabaseInstance(beers_schema())
    drinkers = [_indexed(_DRINKERS, i) for i in range(num_drinkers)]
    bars = [_indexed(_BARS, i) for i in range(num_bars)]
    beers = [_indexed([b for b, _ in _BEERS], i) for i in range(num_beers)]

    for name in drinkers:
        instance.relation("Drinker").insert((name, rng.choice(("Durham", "Chapel Hill", "Raleigh"))))
    for name in bars:
        instance.relation("Bar").insert((name, f"{rng.randint(1, 999)} Main St"))
    for index, name in enumerate(beers):
        brewer = _BEERS[index % len(_BEERS)][1]
        instance.relation("Beer").insert((name, brewer))

    serves = instance.relation("Serves")
    menus: dict[str, list[str]] = {}
    for bar_index, bar in enumerate(bars):
        if bar_index == len(bars) - 1 and len(bars) > 3:
            menus[bar] = []  # a bar that serves nothing
            continue
        menu_size = rng.randint(1, max(1, num_beers // 2))
        menu = sorted(rng.sample(beers, menu_size))
        # Make the menu of every third bar a subset of the previous bar's menu,
        # creating the proper-subset pairs that problem (j) asks about.
        if bar_index % 3 == 2 and menus.get(bars[bar_index - 1]):
            previous = menus[bars[bar_index - 1]]
            menu = sorted(rng.sample(previous, max(1, len(previous) - 1)))
        menus[bar] = menu
        for beer in menu:
            serves.insert((bar, beer, round(rng.uniform(2.0, 6.0), 2)))

    frequents = instance.relation("Frequents")
    likes = instance.relation("Likes")
    for drinker_index, drinker in enumerate(drinkers):
        if drinker_index % 7 == 6:
            continue  # a drinker who frequents no bar
        visited = rng.sample(bars, rng.randint(1, min(4, num_bars)))
        for bar in visited:
            frequents.insert((drinker, bar, rng.randint(1, 7)))
        liked = rng.sample(beers, rng.randint(0, min(3, num_beers)))
        for beer in liked:
            likes.insert((drinker, beer))
    return instance


def _indexed(pool, index: int) -> str:
    base = pool[index % len(pool)]
    return base if index < len(pool) else f"{base} {index}"
