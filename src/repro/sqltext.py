"""SQLite-dialect SQL text rendering shared by both RA-to-SQL compilers.

Two compilers in this codebase emit executable SQLite SQL — the AST-level
writer (:mod:`repro.parser.sql_writer`) and the plan-level backend compiler
(:mod:`repro.engine.backends.sqlite`).  Their scalar/predicate rendering and
type rules must never drift apart (the differential fuzz suite exists to
catch exactly that), so the single implementation lives here, in a module
that depends only on the catalog and predicate layers.

The semantics encoded here mirror the in-process engine, not idiomatic SQL:

* comparisons wrap in ``COALESCE(..., 0)`` so a comparison against ``NULL``
  is *false* (and ``NOT`` of it *true*) — the engine's two-valued logic;
* strings only compare with strings (:func:`comparable_in_sql`): SQLite's
  comparison affinity and cross-type ordering would otherwise answer
  questions the Python operators raise ``TypeError`` for;
* division renders as the ``repro_div`` user function (Python true division,
  raises on zero); string ``+`` becomes ``||`` only when both sides are
  strings; boolean arithmetic is refused;
* anything that cannot be expressed faithfully raises
  :class:`BackendUnsupportedError` — callers treat that as "evaluate
  in-process instead", never as a user-visible failure.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.catalog.types import DataType
from repro.errors import ReproError
from repro.ra.predicates import (
    And,
    Arithmetic,
    Comparison,
    ColumnRef,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    Scalar,
    TruePredicate,
)

#: Resolves a column name to (SQL text, declared type or None).
Resolver = Callable[[str], "tuple[str, DataType | None]"]
#: Renders a query parameter reference as SQL text.
ParamRenderer = Callable[[Param], str]
#: Records that a parameter is used where a value of the given type is
#: expected (so backends can refuse type-incompatible bindings at run time).
Expectation = Callable[[str, DataType], None]


class BackendUnsupportedError(ReproError):
    """The construct (or its data) cannot be expressed faithfully in SQLite.

    Execution backends catch this and re-run the work on the in-process
    Python operators, so it signals a fallback, never a wrong answer.
    """


# ---------------------------------------------------------------------------
# Identifiers and literals
# ---------------------------------------------------------------------------

#: SQLite reserved words that must be quoted when used as identifiers.  The
#: list is the subset of SQLite's keyword table likely to collide with
#: relation/attribute names; quoting is also forced for any identifier that
#: is not a plain ``[A-Za-z_][A-Za-z0-9_]*`` word.
SQLITE_RESERVED = frozenset(
    """
    abort action add after all alter analyze and as asc attach autoincrement
    before begin between by cascade case cast check collate column commit
    conflict constraint create cross current current_date current_time
    current_timestamp database default deferrable deferred delete desc detach
    distinct do drop each else end escape except exclude exclusive exists
    explain fail filter first following for foreign from full glob group
    groups having if ignore immediate in index indexed initially inner insert
    instead intersect into is isnull join key last left like limit match
    natural no not nothing notnull null nulls of offset on or order others
    outer over partition plan pragma preceding primary query raise range
    recursive references regexp reindex release rename replace restrict right
    rollback row rows savepoint select set table temp temporary then ties to
    transaction trigger unbounded union unique update using vacuum values
    view virtual when where window with without
    """.split()
)


def quote_identifier(name: str, *, force: bool = False) -> str:
    """Quote ``name`` for SQLite when needed (always correct, rarely noisy)."""
    plain = (
        name.isidentifier()
        and name.isascii()
        and name.lower() not in SQLITE_RESERVED
    )
    if plain and not force:
        return name
    return '"' + name.replace('"', '""') + '"'


def sql_literal(value: Any) -> str:
    """Render a Python constant as a SQLite literal (``None`` is ``NULL``)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        if not -(2**63) <= value < 2**63:
            raise BackendUnsupportedError(f"integer literal {value} exceeds 64 bits")
        return str(value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise BackendUnsupportedError(f"non-finite float literal {value!r}")
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise BackendUnsupportedError(f"cannot render literal {value!r} as SQL")


def literal_type(value: Any) -> DataType | None:
    """Best-effort :class:`DataType` of a constant (``None`` when unknown)."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    return None


def comparable_in_sql(left: DataType | None, right: DataType | None) -> bool:
    """Whether a comparison of these types means the same thing in SQLite.

    Unknown types (parameters, NULL literals) pass.  Strings only compare
    with strings: SQLite's comparison affinity can coerce a numeric operand
    to text against a TEXT column (``name = 5`` may match ``'5'``), and its
    cross-type ordering would silently answer ordering comparisons the
    Python operators raise ``TypeError`` for.  INT/FLOAT/BOOL inter-compare
    identically on both sides (Python ``True == 1`` ≡ SQLite ``1 = 1``).
    """
    if left is None or right is None or left is right:
        return True
    non_text = (DataType.INT, DataType.FLOAT, DataType.BOOL)
    return left in non_text and right in non_text


#: RA comparison operators → their SQL spelling (``!=`` renders as ``<>``).
COMPARISON_SQL = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


# ---------------------------------------------------------------------------
# Scalars and predicates
# ---------------------------------------------------------------------------


def render_scalar(
    scalar: Scalar,
    resolve: Resolver,
    param_sql: ParamRenderer,
    expect: Expectation | None = None,
) -> tuple[str, DataType | None]:
    """SQL text plus (best-effort) type of a scalar expression."""
    if isinstance(scalar, Literal):
        return sql_literal(scalar.value), literal_type(scalar.value)
    if isinstance(scalar, ColumnRef):
        try:
            return resolve(scalar.name)
        except BackendUnsupportedError:
            raise
        except Exception as exc:
            raise BackendUnsupportedError(str(exc)) from exc
    if isinstance(scalar, Param):
        return param_sql(scalar), None
    if isinstance(scalar, Arithmetic):
        left, left_type = render_scalar(scalar.left, resolve, param_sql, expect)
        right, right_type = render_scalar(scalar.right, resolve, param_sql, expect)
        # Type guards come first: a string or boolean operand must fall back
        # to the Python operators (which concatenate, raise, or
        # bool-arithmetic as Python defines) for *every* operator, including
        # division.
        if DataType.STRING in (left_type, right_type):
            if scalar.op == "+" and left_type == right_type:
                return f"({left} || {right})", DataType.STRING
            raise BackendUnsupportedError(
                f"string arithmetic {scalar.op!r} has no SQLite equivalent"
            )
        if DataType.BOOL in (left_type, right_type):
            raise BackendUnsupportedError("boolean arithmetic is not compiled")
        if expect is not None:
            # A parameter used in arithmetic must be bound to a number;
            # SQLite's text-to-number coercion would otherwise disagree
            # with Python's TypeError.
            for operand in (scalar.left, scalar.right):
                if isinstance(operand, Param):
                    expect(operand.name, DataType.FLOAT)
        if scalar.op == "/":
            # Python semantics: true division, float result, raises on /0.
            return f"repro_div({left}, {right})", DataType.FLOAT
        result_type = (
            DataType.FLOAT
            if DataType.FLOAT in (left_type, right_type)
            else left_type or right_type
        )
        return f"({left} {scalar.op} {right})", result_type
    raise BackendUnsupportedError(
        f"cannot compile scalar of type {type(scalar).__name__}"
    )


def render_predicate(
    predicate: Predicate,
    resolve: Resolver,
    param_sql: ParamRenderer,
    expect: Expectation | None = None,
) -> str:
    """Render a predicate as a 0/1-valued SQL expression.

    Comparisons coalesce ``NULL`` to false before any ``NOT``/``AND``/``OR``
    combine them, matching the engine's two-valued logic.
    """
    if isinstance(predicate, TruePredicate):
        return "1"
    if isinstance(predicate, Comparison):
        left, left_type = render_scalar(predicate.left, resolve, param_sql, expect)
        right, right_type = render_scalar(predicate.right, resolve, param_sql, expect)
        if not comparable_in_sql(left_type, right_type):
            raise BackendUnsupportedError(
                f"comparison of {left_type.value} with {right_type.value} "
                "does not mean the same thing in SQLite"
            )
        if expect is not None:
            if isinstance(predicate.left, Param) and right_type is not None:
                expect(predicate.left.name, right_type)
            if isinstance(predicate.right, Param) and left_type is not None:
                expect(predicate.right.name, left_type)
        op = COMPARISON_SQL[predicate.op]
        return f"COALESCE({left} {op} {right}, 0)"
    if isinstance(predicate, And):
        return "(" + " AND ".join(
            render_predicate(p, resolve, param_sql, expect) for p in predicate.operands
        ) + ")"
    if isinstance(predicate, Or):
        return "(" + " OR ".join(
            render_predicate(p, resolve, param_sql, expect) for p in predicate.operands
        ) + ")"
    if isinstance(predicate, Not):
        return f"(NOT {render_predicate(predicate.operand, resolve, param_sql, expect)})"
    raise BackendUnsupportedError(
        f"cannot compile predicate of type {type(predicate).__name__}"
    )
