"""Complexity-dichotomy artifacts: brute-force oracles and hardness reductions."""

from repro.theory.bruteforce import (
    all_minimal_witnesses,
    brute_force_smallest_counterexample,
    brute_force_smallest_witness,
    enumerate_subinstances,
)
from repro.theory.reductions import (
    ReductionInstance,
    brute_force_vertex_cover,
    greedy_vertex_cover,
    random_degree_bounded_graph,
    vertex_cover_to_ju_swp,
    vertex_cover_to_pj_swp,
    vertex_cover_to_pjd_scp,
)

__all__ = [
    "ReductionInstance",
    "all_minimal_witnesses",
    "brute_force_smallest_counterexample",
    "brute_force_smallest_witness",
    "brute_force_vertex_cover",
    "enumerate_subinstances",
    "greedy_vertex_cover",
    "random_degree_bounded_graph",
    "vertex_cover_to_ju_swp",
    "vertex_cover_to_pj_swp",
    "vertex_cover_to_pjd_scp",
]
