"""Brute-force oracles for the smallest witness / counterexample problems.

These exhaustive solvers are exponential and only usable on tiny instances,
but they are *obviously correct*, which makes them the reference point for
property-based tests of every other algorithm in the package (the paper's
poly-time specialisations, the SAT-based Optσ, the aggregate solvers).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Mapping

from repro.catalog.instance import DatabaseInstance
from repro.errors import CounterexampleError
from repro.ra.ast import RAExpression
from repro.ra.evaluator import evaluate

ParamValues = Mapping[str, Any]


def brute_force_smallest_counterexample(
    q1: RAExpression,
    q2: RAExpression,
    instance: DatabaseInstance,
    *,
    params: ParamValues | None = None,
    max_size: int | None = None,
    require_constraints: bool = True,
) -> frozenset[str]:
    """Exhaustively search for a minimum-cardinality counterexample.

    Candidate subsets are enumerated in order of increasing size, so the first
    hit is optimal.  ``max_size`` caps the search (defaults to the full
    instance size).  Raises :class:`CounterexampleError` when no counterexample
    of the allowed size exists.
    """
    all_tids = sorted(instance.all_tids())
    limit = len(all_tids) if max_size is None else min(max_size, len(all_tids))
    for size in range(0, limit + 1):
        for subset in itertools.combinations(all_tids, size):
            sub = instance.subinstance(subset)
            if require_constraints and not sub.satisfies_constraints():
                continue
            if not evaluate(q1, sub, params).same_rows(evaluate(q2, sub, params)):
                return frozenset(subset)
    raise CounterexampleError("no counterexample within the size bound")


def brute_force_smallest_witness(
    query: RAExpression,
    instance: DatabaseInstance,
    row: tuple,
    *,
    params: ParamValues | None = None,
    max_size: int | None = None,
    require_constraints: bool = False,
) -> frozenset[str]:
    """Exhaustively search for a minimum witness of ``row`` w.r.t. ``query``."""
    all_tids = sorted(instance.all_tids())
    limit = len(all_tids) if max_size is None else min(max_size, len(all_tids))
    target = tuple(row)
    for size in range(0, limit + 1):
        for subset in itertools.combinations(all_tids, size):
            sub = instance.subinstance(subset)
            if require_constraints and not sub.satisfies_constraints():
                continue
            if target in evaluate(query, sub, params).rows:
                return frozenset(subset)
    raise CounterexampleError("no witness within the size bound")


def all_minimal_witnesses(
    query: RAExpression,
    instance: DatabaseInstance,
    row: tuple,
    *,
    params: ParamValues | None = None,
) -> list[frozenset[str]]:
    """All inclusion-minimal witnesses of ``row`` (tiny instances only)."""
    all_tids = sorted(instance.all_tids())
    target = tuple(row)
    witnesses: list[frozenset[str]] = []
    for size in range(0, len(all_tids) + 1):
        for subset_tuple in itertools.combinations(all_tids, size):
            subset = frozenset(subset_tuple)
            if any(existing <= subset for existing in witnesses):
                continue
            sub = instance.subinstance(subset)
            if target in evaluate(query, sub, params).rows:
                witnesses.append(subset)
    return witnesses


def enumerate_subinstances(
    instance: DatabaseInstance, *, max_size: int | None = None
) -> Iterable[DatabaseInstance]:
    """Yield every subinstance up to ``max_size`` tuples (testing helper)."""
    all_tids = sorted(instance.all_tids())
    limit = len(all_tids) if max_size is None else min(max_size, len(all_tids))
    for size in range(0, limit + 1):
        for subset in itertools.combinations(all_tids, size):
            yield instance.subinstance(subset)
