"""Hardness constructions from the complexity dichotomy (Appendix A).

The NP-hardness results of Table 1 (Theorems 3, 4 and 8) are proved by
reductions from vertex cover on graphs of maximum degree 3.  This module
implements those constructions as executable builders: given a graph, they
produce a database instance and a query pair whose smallest witness encodes a
minimum vertex cover.  The test suite verifies the reduction equivalences on
small graphs against brute force, and the dichotomy benchmark uses them to
compare the generic solver against the specialised poly-time algorithms.

One deliberate simplification: the paper's constructions use an always-empty
monotone query as ``Q2`` (its only job is to guarantee the target tuple never
appears in ``Q2`` over any subinstance); we reference an explicitly empty
relation for the same effect, which keeps the query classes unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import networkx as nx

from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.catalog.types import DataType
from repro.ra.ast import (
    Difference,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
)
from repro.ra.predicates import ColumnRef, Comparison, Or

_NULL = "*"
_Z = "z"


@dataclass(frozen=True)
class ReductionInstance:
    """A hardness-construction output: instance, query pair and witness target."""

    instance: DatabaseInstance
    q1: RAExpression
    q2: RAExpression
    target_row: tuple
    #: Size of a witness corresponding to a vertex cover of size p is p + offset.
    witness_offset: int


def _edge_list(graph: nx.Graph) -> list[tuple]:
    return sorted(tuple(sorted(edge)) for edge in graph.edges())


def _check_degree(graph: nx.Graph, bound: int = 3) -> None:
    for node, degree in graph.degree():
        if degree > bound:
            raise ValueError(f"vertex {node!r} has degree {degree} > {bound}")


def vertex_cover_to_pj_swp(graph: nx.Graph) -> ReductionInstance:
    """Theorem 3: vertex cover → SWP for PJ queries (hard in query complexity)."""
    _check_degree(graph)
    edges = _edge_list(graph)
    edge_name = {edge: f"e{i + 1}" for i, edge in enumerate(edges)}

    relations = [
        RelationSchema.of(
            "R",
            [
                ("A", DataType.STRING),
                ("Z", DataType.STRING),
                ("E1", DataType.STRING),
                ("E2", DataType.STRING),
                ("E3", DataType.STRING),
            ],
        ),
        RelationSchema.of("Empty", [("Z", DataType.STRING)]),
    ]
    for i in range(len(edges)):
        relations.append(RelationSchema.of(f"S{i + 1}", [("E", DataType.STRING), ("W", DataType.STRING)]))
    schema = DatabaseSchema.of(relations)
    instance = DatabaseInstance(schema)

    for vertex in sorted(graph.nodes(), key=str):
        incident = [edge_name[edge] for edge in edges if vertex in edge]
        incident = (incident + [_NULL, _NULL, _NULL])[:3]
        instance.relation("R").insert((str(vertex), _Z, *incident))
    for i, edge in enumerate(edges):
        instance.relation(f"S{i + 1}").insert((edge_name[edge], _Z))

    subqueries: list[RAExpression] = []
    for i in range(len(edges)):
        s_i = RelationRef(f"S{i + 1}")
        condition = Or(
            tuple(
                Comparison("=", ColumnRef(attr), ColumnRef("E"))
                for attr in ("E1", "E2", "E3")
            )
        )
        subqueries.append(Projection(Join(RelationRef("R"), s_i, condition), ("Z",)))
    q1: RAExpression = subqueries[0]
    for subquery in subqueries[1:]:
        q1 = NaturalJoin(q1, subquery)
    q2 = Projection(RelationRef("Empty"), ("Z",))
    return ReductionInstance(instance, q1, q2, (_Z,), witness_offset=len(edges))


def vertex_cover_to_ju_swp(graph: nx.Graph) -> ReductionInstance:
    """Theorem 4: vertex cover → SWP for JU queries (hard in query complexity)."""
    vertices = sorted(graph.nodes(), key=str)
    edges = _edge_list(graph)
    index_of = {vertex: i + 1 for i, vertex in enumerate(vertices)}

    relations = [
        RelationSchema.of(f"R{index_of[v]}", [("Z", DataType.STRING)]) for v in vertices
    ]
    relations.append(RelationSchema.of("Empty", [("Z", DataType.STRING)]))
    schema = DatabaseSchema.of(relations)
    instance = DatabaseInstance(schema)
    for vertex in vertices:
        instance.relation(f"R{index_of[vertex]}").insert((_Z,))

    from repro.ra.ast import Union as RAUnion

    subqueries: list[RAExpression] = []
    for u, v in edges:
        subqueries.append(RAUnion(RelationRef(f"R{index_of[u]}"), RelationRef(f"R{index_of[v]}")))
    q1: RAExpression = subqueries[0]
    for subquery in subqueries[1:]:
        q1 = NaturalJoin(q1, subquery)
    q2 = RelationRef("Empty")
    return ReductionInstance(instance, q1, q2, (_Z,), witness_offset=0)


def vertex_cover_to_pjd_scp(graph: nx.Graph) -> ReductionInstance:
    """Theorem 8: vertex cover → SWP for PJD queries (hard in *data* complexity)."""
    _check_degree(graph)
    edges = _edge_list(graph)
    m = len(edges)
    edge_name = {edge: f"e{i + 1}" for i, edge in enumerate(edges)}

    schema = DatabaseSchema.of(
        [
            RelationSchema.of(
                "R",
                [
                    ("A", DataType.STRING),
                    ("Z", DataType.STRING),
                    ("E1", DataType.STRING),
                    ("E2", DataType.STRING),
                    ("E3", DataType.STRING),
                ],
            ),
            RelationSchema.of("S", [("B", DataType.STRING), ("C", DataType.STRING), ("Z", DataType.STRING)]),
        ]
    )
    instance = DatabaseInstance(schema)
    for vertex in sorted(graph.nodes(), key=str):
        incident = [edge_name[edge] for edge in edges if vertex in edge]
        incident = (incident + [_NULL, _NULL, _NULL])[:3]
        instance.relation("R").insert((str(vertex), _Z, *incident))
    for i, edge in enumerate(edges):
        next_edge = edges[(i + 1) % m]
        instance.relation("S").insert((edge_name[edge], edge_name[next_edge], _Z))

    q1 = Projection(RelationRef("S"), ("Z",))
    # q2 = pi_Z( pi_{B,Z}(S)  -  pi_{C,Z}(S join_{C in {E1,E2,E3}} R) )
    # R is renamed with a prefix because S and R share the constant column Z.
    q2_left = Projection(RelationRef("S"), ("B", "Z"))
    renamed_r = Rename(RelationRef("R"), prefix="r")
    join_condition = Or(
        tuple(
            Comparison("=", ColumnRef("C"), ColumnRef(f"r.{attr}"))
            for attr in ("E1", "E2", "E3")
        )
    )
    q2_right = Projection(
        Join(RelationRef("S"), renamed_r, join_condition), ("C", "Z"), ("B", "Z")
    )
    q2 = Projection(Difference(q2_left, q2_right), ("Z",))
    return ReductionInstance(instance, q1, q2, (_Z,), witness_offset=m)


# ---------------------------------------------------------------------------
# Vertex cover solvers (for verifying the reductions in tests)
# ---------------------------------------------------------------------------


def brute_force_vertex_cover(graph: nx.Graph) -> set:
    """Minimum vertex cover by exhaustive search (tiny graphs only)."""
    vertices = sorted(graph.nodes(), key=str)
    edges = _edge_list(graph)
    for size in range(0, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            chosen = set(subset)
            if all(u in chosen or v in chosen for u, v in edges):
                return chosen
    return set(vertices)


def greedy_vertex_cover(graph: nx.Graph) -> set:
    """2-approximate vertex cover via maximal matching (scales to larger graphs)."""
    cover: set = set()
    for u, v in _edge_list(graph):
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return cover


def random_degree_bounded_graph(num_vertices: int, num_edges: int, *, seed: int = 0) -> nx.Graph:
    """A random graph with maximum degree 3 (input to the reductions)."""
    import random as _random

    rng = _random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(1, num_vertices + 1))
    attempts = 0
    while graph.number_of_edges() < num_edges and attempts < 50 * num_edges:
        attempts += 1
        u, v = rng.sample(range(1, num_vertices + 1), 2)
        if graph.degree(u) >= 3 or graph.degree(v) >= 3 or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
    return graph
