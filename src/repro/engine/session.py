"""Engine sessions: plan + result caching across repeated evaluations.

An :class:`EngineSession` binds one :class:`~repro.catalog.instance.DatabaseInstance`
and memoises two levels of work:

* **Plans** — each RA expression is compiled (and optionally optimized) once,
  keyed structurally, so re-checking the same reference query against many
  submissions never re-plans it.
* **Results** — every executed subplan's annotated row set is cached per
  domain, keyed by the subplan plus the restriction of the parameter binding
  to the parameters that subplan references — so scans and other
  param-independent subplans are shared across bindings.  Structural keys
  mean the cache is shared between distinct-but-equal subtrees (the two
  sides of a ``Difference``, a reference query re-evaluated per submission,
  scans shared by all queries over the instance).

Caches survive instance mutations *incrementally*: when the bound instance's
per-relation versions advance, the session pulls each relation's mutation log,
keeps every memo entry whose subplan scans only untouched relations, and
differentially patches set-domain entries over touched relations (see
:mod:`repro.engine.delta`).  Only when a relation's log has been evicted (or a
relation appeared/disappeared) does the session fall back to the historical
wholesale invalidation.  ``exact=True`` runs the unoptimized plan with the
historical operator order (build on the right join input, no pushdown), which
reproduces the legacy set evaluator *and* the legacy provenance annotations
bit for bit.

Provenance (and any other *order-sensitive* annotation domain, see
:attr:`~repro.engine.domains.AnnotationDomain.order_sensitive`) runs on a
third plan flavour: the logical rewrites (selection pushdown) are applied —
so the ``annotate()`` facade benefits from the same optimizer as grading —
but the hash-join build-side choice is skipped, because flipping a build side
reorders how Boolean annotations are folded and would change their structure.
Selection movement only ever *filters* annotated rows, never reorders or
rewrites annotations, so this flavour stays bit-identical to the historical
provenance evaluator (asserted by ``tests/test_provenance_engine_path.py``).

Sessions are **thread-safe**: a reentrant lock serializes plan compilation
and execution, so one warm session per dataset can serve a pool of grading
workers (see :mod:`repro.api.service`).  The lock makes sharing *correct*
and *deterministic* — concurrent throughput gains come from the shared
caches, not from parallel plan execution, which the lock (and CPython's GIL)
intentionally forgoes.

``backend="sqlite"`` routes plain set-semantics evaluation through
:class:`~repro.engine.backends.sqlite.SqliteBackend` — the optimized plan is
compiled to SQL and executed on a cached ``:memory:`` database — while plans
the dialect cannot express faithfully (and all provenance work) silently
fall back to the Python operators.  Results land in the same memo either
way, so cache hits are backend-independent.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Mapping

from repro.catalog.delta import Delta, RelationDelta
from repro.catalog.instance import DatabaseInstance, ResultSet, Values
from repro.catalog.schema import RelationSchema
from repro.engine.backends import BACKEND_NAMES
from repro.engine.domains import (
    PROVENANCE_DOMAIN,
    SET_DOMAIN,
    AnnotationDomain,
)
from repro.engine.columnar import as_mapping
from repro.engine.delta import DeltaMaintainer, plan_scan_relations
from repro.engine.logical import PlanNode, compile_plan
from repro.engine.optimizer import (
    DEFAULT_OPTIMIZER_CONFIG,
    CardinalityEstimator,
    OptimizerConfig,
    apply_semijoin_reduction,
    choose_build_sides,
    optimize_expression,
    reorder_joins,
)
from repro.engine.physical import PlanExecutor, plan_memo_key
from repro.engine.stats import StatsCatalog
from repro.engine.structural import KeyCache, StructuralKey
from repro.errors import ReproError
from repro.lru import LRUCache
from repro.obs.trace import current_span, operator_trace_enabled
from repro.ra.ast import RAExpression
from repro.solver.clausecache import ClauseCache

ParamValues = Mapping[str, Any]


class EngineSession:
    """Compile-and-execute service bound to one database instance."""

    def __init__(
        self,
        instance: DatabaseInstance,
        *,
        optimize: bool = True,
        use_index: bool = True,
        backend: str = "python",
        max_cached_results: int | None = None,
        config: OptimizerConfig | None = None,
    ) -> None:
        if backend not in BACKEND_NAMES:
            raise ReproError(
                f"unknown execution backend {backend!r}; "
                f"expected one of {', '.join(BACKEND_NAMES)}"
            )
        self.instance = instance
        self.optimize = optimize
        self.use_index = use_index
        self.backend = backend
        self.config = config if config is not None else DEFAULT_OPTIMIZER_CONFIG
        self._stats = StatsCatalog(instance)
        if max_cached_results is not None:
            self.max_cached_results = max_cached_results
        self._sqlite: Any = None  # lazily created SqliteBackend
        self._keys = KeyCache()
        self._plans: dict[tuple[str, StructuralKey], PlanNode] = {}
        # Output schemas are pure functions of the database schema, so they
        # are memoized alongside plans: re-deriving them on every execute()
        # call costs a full AST walk per request on the warm path.
        self._schemas: dict[StructuralKey, RelationSchema] = {}
        self._results: dict[str, LRUCache] = {}
        self._param_refs: dict[PlanNode, frozenset] = {}
        # EXPLAIN ANALYZE support: one long-lived estimator (its memo is keyed
        # by structurally-equal plan nodes) plus an identity-keyed est-rows
        # cache over the *cached* physical plans, so a traced warm request
        # never re-walks plan trees just to annotate operator spans.  Both
        # live and die with ``_plans``.
        self._analyze_estimator: "CardinalityEstimator | None" = None
        self._analyze_est: dict[int, "tuple[PlanNode, float | None]"] = {}
        self._analyze_meta: dict[int, "tuple[PlanNode, str, str]"] = {}
        self._rel_versions: dict[str, int] = {
            name: rel.version for name, rel in instance.relations.items()
        }
        # Memoised scan sets (which relations a plan node reads) shared with
        # the delta maintainer; lives and dies with ``_plans``.
        self._scan_sets: dict[PlanNode, frozenset] = {}
        #: Warm-start clause sets for the min-ones solver, keyed by provenance
        #: CNF structure (renamed duplicate submissions hash equal because
        #: renames compile away before provenance capture).
        self.clause_cache = ClauseCache()
        self._lock = threading.RLock()
        self.stats = {
            "plan_hits": 0,
            "plan_misses": 0,
            "invalidations": 0,
            "sqlite_statements": 0,
            "sqlite_fallbacks": 0,
            "delta_maintained": 0,
            "delta_patched": 0,
            "delta_dropped": 0,
            "delta_fallback": 0,
        }

    # -- cache management ----------------------------------------------------

    #: Soft bounds on cache sizes; exceeding one clears that cache wholesale
    #: (a grading service survives unbounded submissions at the price of
    #: occasional cold re-evaluation).  The result bound counts materialised
    #: *rows* across all cached result sets, not cache entries, so memory is
    #: actually bounded.
    max_cached_rows = 2_000_000
    max_cached_plans = 10_000
    #: Entry bound on each per-domain result memo.  Unlike the wholesale row
    #: bound above, this is enforced per insertion with LRU eviction, so a
    #: long-lived server session degrades gracefully instead of periodically
    #: dropping its entire memo.  Override per instance via the
    #: ``max_cached_results`` constructor knob.
    max_cached_results = 100_000

    def _check_version(self) -> None:
        self._reconcile_versions()
        cached_rows = sum(
            len(rows) for memo in self._results.values() for rows in memo.values()
        )
        if cached_rows > self.max_cached_rows:
            for memo in self._results.values():
                memo.clear()
        if len(self._plans) > self.max_cached_plans:
            self._plans.clear()
            self._schemas.clear()
            self._param_refs.clear()
            self._keys.clear()
            self._scan_sets.clear()
            self._analyze_estimator = None
            self._analyze_est.clear()
            self._analyze_meta.clear()

    def _reconcile_versions(self) -> None:
        """Bring the caches up to date with the bound instance's relations.

        Per relation whose version advanced, ask its bounded mutation log for
        the net delta since the version the caches reflect.  If every touched
        relation can produce one, the set-domain memo is *maintained*
        differentially and untouched entries survive verbatim; if any log has
        been evicted past the needed suffix (or the relation set itself
        changed), everything is dropped wholesale — the historical behaviour.
        """
        current = {name: rel.version for name, rel in self.instance.relations.items()}
        if current == self._rel_versions:
            return
        if current.keys() != self._rel_versions.keys():
            self._invalidate_all(current)
            return
        changed: list[RelationDelta] = []
        for name, version in current.items():
            known = self._rel_versions[name]
            if version == known:
                continue
            delta = self.instance.relations[name].delta_since(known)
            if delta is None:  # log evicted or version went backwards
                self._invalidate_all(current)
                return
            if not delta.is_empty():
                changed.append(delta)
        self._maintain(Delta(tuple(changed)), current)

    def _invalidate_all(self, current: "dict[str, int]") -> None:
        """Wholesale cache drop (the pre-delta invalidation path)."""
        dropped = sum(len(memo) for memo in self._results.values())
        self._plans.clear()
        self._schemas.clear()
        for memo in self._results.values():  # keep cumulative counters
            memo.clear()
        self._param_refs.clear()
        self._keys.clear()
        self._scan_sets.clear()
        self._analyze_estimator = None
        self._analyze_est.clear()
        self._analyze_meta.clear()
        self._rel_versions = dict(current)
        self.stats["invalidations"] += 1
        self.stats["delta_fallback"] += 1
        self.stats["delta_dropped"] += dropped

    def _maintain(self, delta: Delta, current: "dict[str, int]") -> None:
        """Differentially patch the result memos for ``delta``.

        Plans, structural keys, and parameter-reference maps are all
        data-independent, so they survive untouched (a stale join order is a
        performance matter, not a correctness one).  The cardinality
        estimator's row counts *are* data-dependent, so EXPLAIN ANALYZE state
        is reset.  Set-domain entries over touched relations are patched (or
        dropped, forcing one cold re-evaluation) by
        :class:`~repro.engine.delta.DeltaMaintainer`; order-sensitive domains
        such as provenance are dropped per touched entry, since annotation
        structure depends on insertion order the delta path cannot reproduce.
        """
        self._rel_versions = dict(current)
        touched = delta.relations
        if not touched:
            return
        self._analyze_estimator = None
        self._analyze_est.clear()
        for domain_name, memo in self._results.items():
            if domain_name == SET_DOMAIN.name:
                maintainer = DeltaMaintainer(
                    self.instance,
                    memo,
                    self._param_refs,
                    use_index=self.use_index,
                    scan_cache=self._scan_sets,
                )
                counts = maintainer.apply(delta)
                self.stats["delta_maintained"] += counts["maintained"]
                self.stats["delta_patched"] += counts["patched"]
                self.stats["delta_dropped"] += counts["dropped"]
            else:
                for key in list(memo.keys()):
                    plan = key[0]
                    scans = plan_scan_relations(plan, self._scan_sets)
                    if scans & touched:
                        del memo[key]
                        self.stats["delta_dropped"] += 1
                    else:
                        self.stats["delta_maintained"] += 1

    def apply_delta(self, delta: Delta | None = None) -> dict[str, int]:
        """Reconcile the caches with the instance now; return what happened.

        The per-relation mutation logs are authoritative — ``delta`` is
        advisory (callers that already hold the :class:`Delta` returned by
        ``DatabaseInstance.insert_row``/``delete``/``update`` may pass it for
        documentation, but the session re-derives the net change from the
        logs so missed intermediate mutations can never be skipped).  Returns
        the increments of the four ``delta_*`` counters caused by this call.
        """
        del delta  # logs are authoritative; see docstring
        keys = ("delta_maintained", "delta_patched", "delta_dropped", "delta_fallback")
        with self._lock:
            before = {k: self.stats[k] for k in keys}
            self._check_version()
            return {k: self.stats[k] - before[k] for k in keys}

    def _memo(self, domain: AnnotationDomain) -> LRUCache:
        memo = self._results.get(domain.name)
        if memo is None:
            memo = self._results[domain.name] = LRUCache(self.max_cached_results)
        return memo

    def _plan(self, expression: RAExpression, *, mode: str) -> PlanNode:
        """Compile (or fetch) the plan for one of three flavours.

        ``"exact"`` — no rewrites, historical operator order;
        ``"logical"`` — selection pushdown only, deterministic operator order
        (what order-sensitive domains such as provenance run on);
        ``"optimized"`` — the full cost-based pipeline over the bound
        instance's statistics: join reordering, semijoin reduction of FK
        joins, and the hash-join build-side choice (each gated by the
        session's :class:`~repro.engine.optimizer.OptimizerConfig`).
        """
        key = (mode, self._keys.key(expression))
        plan = self._plans.get(key)
        if plan is not None:
            self.stats["plan_hits"] += 1
            return plan
        self.stats["plan_misses"] += 1
        db = self.instance.schema
        config = self.config
        if mode == "exact" or not self.optimize:
            plan = compile_plan(expression, db)
        else:
            expression_ = (
                optimize_expression(expression, db) if config.pushdown else expression
            )
            plan = compile_plan(expression_, db)
            if mode == "optimized":
                estimator = CardinalityEstimator(self.instance, self._stats)
                if config.reorder_joins:
                    plan = reorder_joins(plan, self.instance, estimator)
                if config.semijoin_reduction:
                    plan = apply_semijoin_reduction(
                        plan, self.instance, estimator, factor=config.semijoin_factor
                    )
                if config.choose_build_sides:
                    plan = choose_build_sides(plan, self.instance, estimator)
        self._plans[key] = plan
        return plan

    def clear_cached_results(self) -> None:
        """Drop every cached result set while keeping compiled plans.

        Benchmark hook: re-timing *warm evaluation* (plans compiled, indexes
        and statistics hot, results cold) requires emptying the result memo
        between passes — otherwise a warm pass measures pure memo lookups.
        """
        with self._lock:
            for memo in self._results.values():
                memo.clear()

    def cache_info(self) -> dict[str, int]:
        """Plan/result cache statistics (used by tests, benchmarks, /metrics)."""
        with self._lock:
            return {
                **self.stats,
                "cached_plans": len(self._plans),
                "cached_results": sum(len(memo) for memo in self._results.values()),
                "result_hits": sum(memo.hits for memo in self._results.values()),
                "result_misses": sum(memo.misses for memo in self._results.values()),
                "result_evictions": sum(
                    memo.evictions for memo in self._results.values()
                ),
                "solver_clause_reuse": self.clause_cache.hits,
                "solver_clause_entries": len(self.clause_cache),
            }

    def warmup(self, queries: "Iterable[RAExpression | str]", params: ParamValues | None = None) -> int:
        """Plan and evaluate ``queries`` to populate the session caches.

        The server's workers (and anything else that knows its workload ahead
        of traffic) call this so the first real submission pays neither
        planning nor reference-evaluation cost.  Queries that fail to parse
        or evaluate are skipped — warming is best-effort by design.  Returns
        the number of queries successfully warmed.
        """
        from repro.parser.ra_parser import parse_query

        warmed = 0
        for query in queries:
            try:
                expression = query if isinstance(query, RAExpression) else parse_query(query)
                self.evaluate(expression, params)
            except ReproError:
                continue
            warmed += 1
        return warmed

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        expression: RAExpression,
        domain: AnnotationDomain,
        params: ParamValues | None = None,
        *,
        exact: bool = False,
    ) -> tuple[RelationSchema, "dict[Values, Any]"]:
        """Run ``expression`` under ``domain``; returns (schema, annotated rows).

        The returned dict is owned by the session cache — treat it as
        read-only (the public helpers below copy).  Safe to call from many
        threads: the whole compile-and-execute path runs under the session
        lock (operators never mutate a finished annotated row set, so
        returned dicts stay valid after the lock is released).
        """
        with self._lock:
            self._check_version()
            schema_key = self._keys.key(expression)
            schema = self._schemas.get(schema_key)
            if schema is None:
                schema = expression.output_schema(self.instance.schema)
                self._schemas[schema_key] = schema
            if exact:
                mode = "exact"
            elif domain.order_sensitive:
                mode = "logical"
            else:
                mode = "optimized"
            plan = self._plan(expression, mode=mode)
            analyzer = None
            if (
                mode == "optimized"
                and domain is SET_DOMAIN
                and operator_trace_enabled()
                and current_span() is not None
            ):
                # A traced request asked for per-operator spans: attach an
                # analyzer and keep execution on the Python operators (the
                # SQLite backend runs whole plans, so it has no operators to
                # time).  Results land in the shared memo either way.
                from repro.obs.analyze import PlanAnalyzer

                analyzer = PlanAnalyzer(meta_cache=self._analyze_meta)
            if (
                self.backend == "sqlite"
                and not exact
                and domain is SET_DOMAIN
                and analyzer is None
            ):
                rows = self._run_sqlite(plan, params or {}, domain)
                if rows is not None:
                    return schema, rows
            executor = PlanExecutor(
                self.instance,
                params or {},
                domain,
                self._memo(domain),
                self._param_refs,
                use_index=self.use_index,
                columnar=self.config.columnar and mode == "optimized",
                analyzer=analyzer,
            )
            result = executor.run(plan)
            if analyzer is not None:
                from repro.obs.analyze import emit_operator_spans

                if self._analyze_estimator is None:
                    self._analyze_estimator = CardinalityEstimator(
                        self.instance, self._stats
                    )
                emit_operator_spans(
                    analyzer, self._analyze_estimator, est_cache=self._analyze_est
                )
            return schema, result

    def _run_sqlite(
        self, plan: PlanNode, params: ParamValues, domain: AnnotationDomain
    ) -> "dict[Values, Any] | None":
        """Run a set-semantics plan on the SQLite backend; ``None`` → fall back.

        Results are stored under the same memo key the Python executor would
        use, so a row set computed by either backend serves later hits from
        both.  Genuine query failures (e.g. division by zero) propagate as
        the Python operators would raise them; unbound or type-incompatible
        parameter bindings instead fall back, because only the Python
        operators' lazy evaluation can tell whether they are an error at all.
        """
        from repro.engine.backends.sqlite import BackendUnsupportedError, SqliteBackend

        memo = self._memo(domain)
        key = plan_memo_key(plan, params, self._param_refs)
        if key is not None:
            cached = memo.get(key)
            if cached is not None:
                return as_mapping(cached)  # the Python path may cache batches
        if self._sqlite is None:
            self._sqlite = SqliteBackend(self.instance)
        try:
            rows = self._sqlite.execute_plan(plan, params)
        except BackendUnsupportedError:
            self.stats["sqlite_fallbacks"] += 1
            return None
        self.stats["sqlite_statements"] += 1
        if key is not None:
            memo[key] = rows
        return rows

    def explain_analyze(self, expression: RAExpression, params: ParamValues | None = None):
        """EXPLAIN ANALYZE: execute under set semantics with per-operator timing.

        Returns an :class:`~repro.obs.analyze.ExplainAnalysis` whose operator
        tree carries actual rows, wall time, cache/index/columnar attribution,
        and the :class:`CardinalityEstimator`'s predicted rows with per-operator
        q-error.  Uses the same plan and memo the normal path would, so the
        analysis reflects real execution (including warm-cache hits).
        """
        from repro.obs.analyze import ExplainAnalysis, PlanAnalyzer

        with self._lock:
            self._check_version()
            expression.output_schema(self.instance.schema)  # validate up front
            mode = "optimized" if self.optimize else "exact"
            plan = self._plan(expression, mode=mode)
            analyzer = PlanAnalyzer()
            executor = PlanExecutor(
                self.instance,
                params or {},
                SET_DOMAIN,
                self._memo(SET_DOMAIN),
                self._param_refs,
                use_index=self.use_index,
                columnar=self.config.columnar and mode == "optimized",
                analyzer=analyzer,
            )
            begin = time.perf_counter()
            rows = executor.run(plan)
            total = time.perf_counter() - begin
            estimator = CardinalityEstimator(self.instance, self._stats)
            return ExplainAnalysis.build(
                analyzer, estimator, output_rows=len(rows), total_seconds=total
            )

    def evaluate(self, expression: RAExpression, params: ParamValues | None = None) -> ResultSet:
        """Set-semantics evaluation (same contract as ``repro.ra.evaluate``)."""
        schema, rows = self.execute(expression, SET_DOMAIN, params)
        return ResultSet(schema, frozenset(rows))

    def rows(self, expression: RAExpression, params: ParamValues | None = None) -> list[Values]:
        """Deduplicated rows of ``expression`` in first-seen order."""
        _, rows = self.execute(expression, SET_DOMAIN, params)
        return list(rows)

    def annotated_rows(
        self, expression: RAExpression, params: ParamValues | None = None, *, exact: bool = False
    ) -> tuple[RelationSchema, "dict[Values, Any]"]:
        """Boolean how-provenance of every candidate row (a fresh dict).

        Runs on the logically optimized plan (selection pushdown, structural
        plan/result caching) while keeping the deterministic operator order,
        so the annotations stay identical — expression by expression — to the
        historical ``ProvenanceEvaluator``.  ``exact=True`` forces the
        unoptimized historical plan (kept for differential tests).
        """
        schema, rows = self.execute(expression, PROVENANCE_DOMAIN, params, exact=exact)
        return schema, dict(rows)


def evaluate_with_engine(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
) -> ResultSet:
    """One-shot engine evaluation (the body of the ``evaluate()`` facade)."""
    return EngineSession(instance).evaluate(expression, params)


def rows_with_engine(
    expression: RAExpression,
    instance: DatabaseInstance,
    params: ParamValues | None = None,
) -> list[Values]:
    """One-shot engine evaluation returning ordered rows."""
    return EngineSession(instance).rows(expression, params)
