"""Logical query plans compiled from the RA AST.

Compilation resolves everything that does not depend on the data: output
schemas, attribute positions for projections, group-bys and aggregate inputs,
and the split of join predicates into hashable equi-join key columns plus a
residual filter.  The result is a tree of frozen, hashable plan nodes — two
structurally equal RA subtrees compile to *equal* plans, which is what lets
the engine's memo cache share work across queries inside a grading session.

Plan nodes also carry the physical knobs the optimizer may set (currently the
hash-join build side); the defaults reproduce the historical interpreter's
behaviour exactly (build on the right input, probe with the left).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.errors import QueryEvaluationError, UnknownAttributeError
from repro.ra.analysis import split_equijoin_conjuncts  # noqa: F401 — re-exported
from repro.ra.ast import (
    AggregateSpec,
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.ra.predicates import ColumnRef, Comparison, Predicate


def resolve_aggregate_input(spec: AggregateSpec, schema: RelationSchema) -> int:
    """Position of the aggregate's input attribute; ``-1`` for ``COUNT(*)``.

    Raises :class:`QueryEvaluationError` naming the aggregate and the missing
    attribute instead of surfacing a confusing ``index_of('')`` failure.
    """
    if spec.attribute is None:
        return -1
    try:
        return schema.index_of(spec.attribute)
    except UnknownAttributeError as exc:
        raise QueryEvaluationError(
            f"aggregate {spec.func.value.upper()}({spec.attribute}) AS {spec.alias} "
            f"references unknown attribute {spec.attribute!r} "
            f"(available: {schema.attribute_names})"
        ) from exc


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


class PlanNode:
    """Base class of logical/physical plan nodes (frozen, hashable)."""

    def children(self) -> tuple["PlanNode", ...]:
        return ()


def _cached_hash(cls):
    """Memoize the dataclass-generated structural hash on the instance.

    Plan trees are dict keys everywhere — the result memo, the scan-set and
    plan-size caches, delta bookkeeping — and the generated hash walks the
    whole subtree on every probe.  Nodes are frozen, so the hash is computed
    once and stashed; deep equality is untouched.
    """
    generated = cls.__hash__

    def __hash__(self, _generated=generated):
        value = self.__dict__.get("_structural_hash")
        if value is None:
            value = _generated(self)
            object.__setattr__(self, "_structural_hash", value)
        return value

    cls.__hash__ = __hash__
    return cls


@_cached_hash
@dataclass(frozen=True)
class ScanOp(PlanNode):
    """Scan a base relation, deduplicating values under the annotation domain."""

    relation: str


@_cached_hash
@dataclass(frozen=True)
class FilterOp(PlanNode):
    """Keep the rows satisfying ``predicate`` (evaluated against ``schema``)."""

    child: PlanNode
    predicate: Predicate
    schema: RelationSchema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@_cached_hash
@dataclass(frozen=True)
class ProjectOp(PlanNode):
    """Keep the columns at ``indexes``, folding duplicate output rows."""

    child: PlanNode
    indexes: tuple[int, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@_cached_hash
@dataclass(frozen=True)
class JoinOp(PlanNode):
    """Hash equi-join on key columns with an optional residual filter.

    ``keep_right`` is ``None`` for theta joins (emit all right columns) and a
    tuple of right-column positions for natural joins (shared columns appear
    once).  ``schema`` is the concatenated schema residual predicates are
    evaluated against.  ``build_left`` selects the hash-table side; the
    default (build right, probe left) matches the historical interpreter.
    """

    left: PlanNode
    right: PlanNode
    left_key: tuple[int, ...]
    right_key: tuple[int, ...]
    residual: tuple[Predicate, ...]
    schema: RelationSchema
    keep_right: tuple[int, ...] | None = None
    build_left: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@_cached_hash
@dataclass(frozen=True)
class SemiJoinOp(PlanNode):
    """Keep the left rows whose key matches at least one right row.

    Produced only by the optimizer (semijoin reduction of FK joins); never
    emitted by compilation.  Output schema and annotations are the left
    input's, untouched — the right side acts purely as a filter, so the
    operator is valid for order-insensitive domains under set semantics.
    """

    left: PlanNode
    right: PlanNode
    left_key: tuple[int, ...]
    right_key: tuple[int, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@_cached_hash
@dataclass(frozen=True)
class CrossOp(PlanNode):
    """Nested-loop cross product with an optional residual filter.

    Emits every left row concatenated with every right row (a natural join
    of relations with no shared attributes degenerates to exactly this, so no
    column-dropping machinery is needed here).
    """

    left: PlanNode
    right: PlanNode
    residual: tuple[Predicate, ...]
    schema: RelationSchema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@_cached_hash
@dataclass(frozen=True)
class UnionOp(PlanNode):
    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@_cached_hash
@dataclass(frozen=True)
class DifferenceOp(PlanNode):
    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@_cached_hash
@dataclass(frozen=True)
class IntersectOp(PlanNode):
    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@_cached_hash
@dataclass(frozen=True)
class AggregateOp(PlanNode):
    """Hash aggregation: group by ``group_indexes``, compute ``aggregates``.

    Each aggregate is ``(spec, input_index)`` with ``input_index == -1`` for
    ``COUNT(*)``, resolved at compile time.
    """

    child: PlanNode
    group_indexes: tuple[int, ...]
    aggregates: tuple[tuple[AggregateSpec, int], ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_plan(expression: RAExpression, db: DatabaseSchema) -> PlanNode:
    """Compile an RA expression into a logical plan over ``db``.

    Renames compile away entirely (they only change schemas, which are
    resolved here), so ``ρ(X)`` and ``X`` share one plan — and one cache
    entry.
    """
    if isinstance(expression, RelationRef):
        return ScanOp(expression.name)
    if isinstance(expression, Selection):
        return FilterOp(
            compile_plan(expression.child, db),
            expression.predicate,
            expression.child.output_schema(db),
        )
    if isinstance(expression, Projection):
        schema = expression.child.output_schema(db)
        indexes = tuple(schema.index_of(c) for c in expression.columns)
        return ProjectOp(compile_plan(expression.child, db), indexes)
    if isinstance(expression, Rename):
        return compile_plan(expression.child, db)
    if isinstance(expression, Join):
        return _compile_theta_join(expression, db)
    if isinstance(expression, NaturalJoin):
        return _compile_natural_join(expression, db)
    if isinstance(expression, Union):
        return UnionOp(compile_plan(expression.left, db), compile_plan(expression.right, db))
    if isinstance(expression, Difference):
        return DifferenceOp(compile_plan(expression.left, db), compile_plan(expression.right, db))
    if isinstance(expression, Intersection):
        return IntersectOp(compile_plan(expression.left, db), compile_plan(expression.right, db))
    if isinstance(expression, GroupBy):
        schema = expression.child.output_schema(db)
        group_indexes = tuple(schema.index_of(name) for name in expression.group_by)
        aggregates = tuple(
            (spec, resolve_aggregate_input(spec, schema)) for spec in expression.aggregates
        )
        return AggregateOp(compile_plan(expression.child, db), group_indexes, aggregates)
    raise QueryEvaluationError(f"unsupported RA node type {type(expression).__name__}")


def _compile_theta_join(node: Join, db: DatabaseSchema) -> PlanNode:
    left_schema = node.left.output_schema(db)
    right_schema = node.right.output_schema(db)
    combined = node.output_schema(db)
    pairs, residual = split_equijoin_conjuncts(
        node.effective_predicate(), left_schema, right_schema
    )
    left_plan = compile_plan(node.left, db)
    right_plan = compile_plan(node.right, db)
    if not pairs:
        return CrossOp(left_plan, right_plan, tuple(residual), combined)
    return JoinOp(
        left_plan,
        right_plan,
        tuple(left_schema.index_of(a) for a, _ in pairs),
        tuple(right_schema.index_of(b) for _, b in pairs),
        tuple(residual),
        combined,
    )


def _compile_natural_join(node: NaturalJoin, db: DatabaseSchema) -> PlanNode:
    left_schema = node.left.output_schema(db)
    right_schema = node.right.output_schema(db)
    shared = node.shared_attributes(db)
    combined = node.output_schema(db)
    left_plan = compile_plan(node.left, db)
    right_plan = compile_plan(node.right, db)
    if not shared:
        return CrossOp(left_plan, right_plan, (), combined)
    shared_set = set(shared)
    keep_right = tuple(
        i for i, attr in enumerate(right_schema.attributes) if attr.name not in shared_set
    )
    return JoinOp(
        left_plan,
        right_plan,
        tuple(left_schema.index_of(name) for name in shared),
        tuple(right_schema.index_of(name) for name in shared),
        (),
        combined,
        keep_right=keep_right,
    )


def plan_operators(plan: PlanNode) -> Sequence[PlanNode]:
    """Pre-order traversal of a plan (for diagnostics and tests)."""
    nodes = [plan]
    for child in plan.children():
        nodes.extend(plan_operators(child))
    return nodes
