"""The annotation-generic execution engine.

Queries are compiled from the RA AST into a logical plan
(:mod:`repro.engine.logical`), optimized (:mod:`repro.engine.optimizer` —
selection pushdown via :mod:`repro.ra.rewrite`, hash-join build-side choice
by estimated cardinality), and executed by physical operators
(:mod:`repro.engine.physical`) that are generic over an annotation domain
(:mod:`repro.engine.domains`): :class:`SetDomain` yields plain set-semantics
results, :class:`ProvenanceDomain` yields Boolean how-provenance.  The
``evaluate()`` and ``annotate()`` facades in :mod:`repro.ra.evaluator` and
:mod:`repro.provenance.annotate` are thin wrappers over this package.

:class:`EngineSession` (:mod:`repro.engine.session`) adds structural plan and
result caching across repeated evaluations — the unit of reuse for a grading
session that checks many submissions against one instance.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    BackendUnsupportedError,
    SqliteBackend,
)
from repro.engine.domains import (
    PROVENANCE_DOMAIN,
    SET_DOMAIN,
    AnnotationDomain,
    ProvenanceDomain,
    SetDomain,
)
from repro.engine.logical import (
    AggregateOp,
    CrossOp,
    DifferenceOp,
    FilterOp,
    IntersectOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    UnionOp,
    compile_plan,
    plan_operators,
    split_equijoin_conjuncts,
)
from repro.engine.optimizer import choose_build_sides, estimate_rows, optimize_expression
from repro.engine.physical import PlanExecutor, apply_aggregate, compile_predicate
from repro.engine.session import EngineSession, evaluate_with_engine, rows_with_engine
from repro.engine.structural import KeyCache, StructuralKey, structural_hash

__all__ = [
    "AggregateOp",
    "AnnotationDomain",
    "BACKEND_NAMES",
    "BackendUnsupportedError",
    "CrossOp",
    "DifferenceOp",
    "EngineSession",
    "FilterOp",
    "IntersectOp",
    "JoinOp",
    "KeyCache",
    "PROVENANCE_DOMAIN",
    "PlanExecutor",
    "PlanNode",
    "ProjectOp",
    "ProvenanceDomain",
    "SET_DOMAIN",
    "ScanOp",
    "SetDomain",
    "SqliteBackend",
    "StructuralKey",
    "UnionOp",
    "apply_aggregate",
    "choose_build_sides",
    "compile_plan",
    "compile_predicate",
    "estimate_rows",
    "evaluate_with_engine",
    "optimize_expression",
    "plan_operators",
    "rows_with_engine",
    "split_equijoin_conjuncts",
    "structural_hash",
]
