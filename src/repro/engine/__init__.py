"""The annotation-generic execution engine.

Queries are compiled from the RA AST into a logical plan
(:mod:`repro.engine.logical`), optimized (:mod:`repro.engine.optimizer` —
selection pushdown via :mod:`repro.ra.rewrite`, then a cost-based pipeline
over instance statistics (:mod:`repro.engine.stats`): join reordering,
semijoin reduction of foreign-key joins, and the hash-join build-side
choice), and executed by physical operators (:mod:`repro.engine.physical`)
that are generic over an annotation domain (:mod:`repro.engine.domains`):
:class:`SetDomain` yields plain set-semantics results,
:class:`ProvenanceDomain` yields Boolean how-provenance.  Under the Set
domain the hot operators additionally lower to columnar batches
(:mod:`repro.engine.columnar`).  The ``evaluate()`` and ``annotate()``
facades in :mod:`repro.ra.evaluator` and :mod:`repro.provenance.annotate`
are thin wrappers over this package.

:class:`EngineSession` (:mod:`repro.engine.session`) adds structural plan and
result caching across repeated evaluations — the unit of reuse for a grading
session that checks many submissions against one instance.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    BackendUnsupportedError,
    SqliteBackend,
)
from repro.engine.columnar import ColumnBatch, as_mapping
from repro.engine.domains import (
    PROVENANCE_DOMAIN,
    SET_DOMAIN,
    AnnotationDomain,
    ProvenanceDomain,
    SetDomain,
)
from repro.engine.logical import (
    AggregateOp,
    CrossOp,
    DifferenceOp,
    FilterOp,
    IntersectOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SemiJoinOp,
    UnionOp,
    compile_plan,
    plan_operators,
    split_equijoin_conjuncts,
)
from repro.engine.optimizer import (
    DEFAULT_OPTIMIZER_CONFIG,
    LEGACY_OPTIMIZER_CONFIG,
    CardinalityEstimator,
    OptimizerConfig,
    apply_semijoin_reduction,
    choose_build_sides,
    estimate_rows,
    optimize_expression,
    reorder_joins,
)
from repro.engine.physical import PlanExecutor, apply_aggregate, compile_predicate
from repro.engine.session import EngineSession, evaluate_with_engine, rows_with_engine
from repro.engine.stats import PlanStats, StatsCatalog
from repro.engine.structural import KeyCache, StructuralKey, structural_hash

__all__ = [
    "AggregateOp",
    "AnnotationDomain",
    "BACKEND_NAMES",
    "BackendUnsupportedError",
    "CardinalityEstimator",
    "ColumnBatch",
    "CrossOp",
    "DEFAULT_OPTIMIZER_CONFIG",
    "DifferenceOp",
    "EngineSession",
    "FilterOp",
    "IntersectOp",
    "JoinOp",
    "KeyCache",
    "LEGACY_OPTIMIZER_CONFIG",
    "OptimizerConfig",
    "PROVENANCE_DOMAIN",
    "PlanExecutor",
    "PlanNode",
    "PlanStats",
    "ProjectOp",
    "ProvenanceDomain",
    "SET_DOMAIN",
    "ScanOp",
    "SemiJoinOp",
    "SetDomain",
    "SqliteBackend",
    "StatsCatalog",
    "StructuralKey",
    "UnionOp",
    "apply_aggregate",
    "apply_semijoin_reduction",
    "as_mapping",
    "choose_build_sides",
    "compile_plan",
    "compile_predicate",
    "estimate_rows",
    "evaluate_with_engine",
    "optimize_expression",
    "plan_operators",
    "reorder_joins",
    "rows_with_engine",
    "split_equijoin_conjuncts",
    "structural_hash",
]
