"""Physical operators: domain-generic execution of compiled plans.

Every operator consumes and produces an *annotated row set* — an
insertion-ordered ``dict[Values, annotation]`` whose keys are the distinct
rows (set semantics) and whose values live in the executing
:class:`~repro.engine.domains.AnnotationDomain`.  Running a plan under
:data:`~repro.engine.domains.SET_DOMAIN` yields exactly the rows of the
classic evaluator; under :data:`~repro.engine.domains.PROVENANCE_DOMAIN` the
same code yields Boolean how-provenance.

Two row-level optimisations live here: predicates are compiled into closures
with attribute positions resolved once (instead of a name lookup per row),
and hash joins build their table from the base relation's cached
:meth:`~repro.catalog.instance.Relation.hash_index` when the build side is a
bare scan.
"""

from __future__ import annotations

import math
from operator import itemgetter
from typing import Any, Callable, Mapping, MutableMapping, Sequence

from repro.catalog.instance import DatabaseInstance, Values
from repro.catalog.schema import RelationSchema
from repro.errors import NotApplicableError, QueryEvaluationError, UnknownAttributeError
from repro.engine.domains import AnnotationDomain
from repro.engine.logical import (
    AggregateOp,
    CrossOp,
    DifferenceOp,
    FilterOp,
    IntersectOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SemiJoinOp,
    UnionOp,
)
from repro.ra.ast import AggregateFunction
from repro.ra.predicates import (
    COMPARISON_OPS,
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    Scalar,
    TruePredicate,
)

ParamValues = Mapping[str, Any]
AnnotatedRows = "dict[Values, Any]"

#: Error message kept byte-identical with the historical provenance evaluator.
AGGREGATION_NOT_SUPPORTED = (
    "Boolean how-provenance does not cover aggregation; "
    "use repro.provenance.aggregate for GroupBy queries"
)


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------


def compile_scalar(scalar: Scalar, schema: RelationSchema) -> Callable[[Values, ParamValues], Any]:
    """Compile a scalar into a closure with attribute positions resolved."""
    if isinstance(scalar, Literal):
        value = scalar.value
        return lambda row, params: value
    if isinstance(scalar, ColumnRef):
        try:
            index = schema.index_of(scalar.name)
        except UnknownAttributeError as exc:
            raise QueryEvaluationError(str(exc)) from exc
        return lambda row, params: row[index]
    if isinstance(scalar, Param):
        name = scalar.name

        def read_param(row: Values, params: ParamValues) -> Any:
            if name not in params:
                raise QueryEvaluationError(f"unbound query parameter @{name}")
            return params[name]

        return read_param
    if isinstance(scalar, Arithmetic):
        left = compile_scalar(scalar.left, schema)
        right = compile_scalar(scalar.right, schema)
        op = scalar.op

        def arith(row: Values, params: ParamValues) -> Any:
            a = left(row, params)
            b = right(row, params)
            if a is None or b is None:
                return None
            try:
                if op == "+":
                    return a + b
                if op == "-":
                    return a - b
                if op == "*":
                    return a * b
                return a / b
            except ZeroDivisionError as exc:
                raise QueryEvaluationError("division by zero in scalar expression") from exc

        return arith
    # Unknown scalar subclass: fall back to its own evaluate().
    return lambda row, params: scalar.evaluate(schema, row, params)


def compile_predicate(
    predicate: Predicate, schema: RelationSchema
) -> Callable[[Values, ParamValues], bool]:
    """Compile a predicate into a closure (SQL NULL comparison semantics)."""
    if isinstance(predicate, TruePredicate):
        return lambda row, params: True
    if isinstance(predicate, Comparison):
        left = compile_scalar(predicate.left, schema)
        right = compile_scalar(predicate.right, schema)
        op = COMPARISON_OPS[predicate.op]

        def compare(row: Values, params: ParamValues) -> bool:
            a = left(row, params)
            b = right(row, params)
            if a is None or b is None:
                return False
            return op(a, b)

        return compare
    if isinstance(predicate, And):
        parts = [compile_predicate(p, schema) for p in predicate.operands]
        return lambda row, params: all(p(row, params) for p in parts)
    if isinstance(predicate, Or):
        parts = [compile_predicate(p, schema) for p in predicate.operands]
        return lambda row, params: any(p(row, params) for p in parts)
    if isinstance(predicate, Not):
        inner = compile_predicate(predicate.operand, schema)
        return lambda row, params: not inner(row, params)
    # Unknown predicate subclass: fall back to its own evaluate().
    return lambda row, params: predicate.evaluate(schema, row, params)


def key_function(indexes: tuple[int, ...]) -> Callable[[Values], tuple]:
    """Fast extractor of the value tuple at ``indexes``."""
    if not indexes:
        return lambda row: ()
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: (row[index],)
    getter = itemgetter(*indexes)
    return lambda row: getter(row)


# ---------------------------------------------------------------------------
# Aggregate computation
# ---------------------------------------------------------------------------


def _order_independent_sum(values: Sequence[Any]) -> Any:
    """Sum that does not depend on input order, even for floats.

    ``math.fsum`` is correctly rounded, so any permutation of the inputs
    yields the same bits — a requirement for differential re-evaluation,
    where patched groups see their members in a different order than a cold
    run.  Integer-only inputs keep the exact int result.
    """
    if any(isinstance(v, float) for v in values):
        return math.fsum(values)
    return sum(values)


def apply_aggregate(func: AggregateFunction, values: Sequence[Any]) -> Any:
    """One aggregate over the non-NULL input values of a group."""
    if func is AggregateFunction.COUNT:
        return len(values)
    if not values:
        return None
    if func is AggregateFunction.SUM:
        return _order_independent_sum(values)
    if func is AggregateFunction.AVG:
        return _order_independent_sum(values) / len(values)
    if func is AggregateFunction.MIN:
        return min(values)
    if func is AggregateFunction.MAX:
        return max(values)
    raise QueryEvaluationError(f"unsupported aggregate function {func}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------

#: Plan nodes with a columnar lowering (see :mod:`repro.engine.columnar`).
_COLUMNAR_NODES = (ScanOp, FilterOp, ProjectOp, JoinOp, SemiJoinOp)


def referenced_params(
    plan: PlanNode, cache: MutableMapping[PlanNode, frozenset]
) -> frozenset:
    """Names of the query parameters a subplan's predicates read.

    Shared by the executor's memo keys and the session's backend dispatch so
    both derive identical cache keys for one plan.
    """
    cached = cache.get(plan)
    if cached is None:
        refs: set[str] = set()
        if isinstance(plan, FilterOp):
            refs |= plan.predicate.referenced_params()
        elif isinstance(plan, (JoinOp, CrossOp)):
            for predicate in plan.residual:
                refs |= predicate.referenced_params()
        for child in plan.children():
            refs |= referenced_params(child, cache)
        cached = frozenset(refs)
        cache[plan] = cached
    return cached


def plan_memo_key(
    plan: PlanNode,
    params: ParamValues,
    cache: MutableMapping[PlanNode, frozenset],
) -> tuple | None:
    """Session-memo key for a (plan, parameter binding) pair.

    The binding part is the restriction of ``params`` to the parameters the
    plan references, so param-independent plans share one entry across
    bindings.  Returns ``None`` when a referenced value is unhashable (the
    execution is then simply not cached).
    """
    try:
        refs = referenced_params(plan, cache)
        if refs:
            binding = tuple(
                (name, params[name]) for name in sorted(refs) if name in params
            )
            key = (plan, binding)
        else:
            key = (plan, ())
        hash(key)
    except TypeError:
        return None
    return key


class PlanExecutor:
    """Executes a plan over one instance under one annotation domain.

    ``memo`` maps ``(plan, relevant params)`` to finished annotated row sets;
    because plan nodes compare structurally, equal subplans — within one
    query or across queries in a session — are computed once.  The params
    part of the key is the restriction of the parameter binding to the
    parameters the subplan actually references, so param-independent subplans
    (all scans, most joins) are shared across bindings.  Returned dicts are
    shared with the memo, so operators never mutate their inputs.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        params: ParamValues,
        domain: AnnotationDomain,
        memo: MutableMapping[tuple, "dict[Values, Any]"],
        param_refs: MutableMapping[PlanNode, frozenset] | None = None,
        *,
        use_index: bool = True,
        columnar: bool = False,
        analyzer=None,
    ) -> None:
        self.instance = instance
        self.params = params
        self.domain = domain
        self.memo = memo
        self.param_refs = {} if param_refs is None else param_refs
        self.use_index = use_index
        # Columnar batches carry no annotation structure, so the lowering is
        # restricted to the Set domain regardless of what the caller asked.
        self.columnar = columnar and domain.name == "set"
        # Optional EXPLAIN ANALYZE hook (repro.obs.analyze.PlanAnalyzer): when
        # attached, run_cached routes through it so every operator execution
        # is timed and row-counted with identical memo semantics.
        self.analyzer = analyzer

    def _referenced_params(self, plan: PlanNode) -> frozenset:
        """Names of the query parameters the subplan's predicates read."""
        return referenced_params(plan, self.param_refs)

    def run(self, plan: PlanNode) -> "dict[Values, Any]":
        """Annotated row dict for ``plan`` (memo entries may be columnar)."""
        result = self.run_cached(plan)
        return result if isinstance(result, dict) else result.to_mapping()

    def run_cached(self, plan: PlanNode):
        """Memoized execution returning a dict or a ``ColumnBatch``."""
        if self.analyzer is not None:
            return self.analyzer.run(self, plan)
        key = plan_memo_key(plan, self.params, self.param_refs)
        if key is None:  # unhashable literal/parameter value: skip caching
            return self._execute(plan)
        cached = self.memo.get(key)
        if cached is None:
            cached = self._execute(plan)
            self.memo[key] = cached
        return cached

    # -- dispatch ------------------------------------------------------------

    def _execute(self, plan: PlanNode):
        if self.columnar and isinstance(plan, _COLUMNAR_NODES):
            from repro.engine.columnar import execute_columnar

            return execute_columnar(self, plan)
        if isinstance(plan, ScanOp):
            return self._scan(plan)
        if isinstance(plan, FilterOp):
            return self._filter(plan)
        if isinstance(plan, ProjectOp):
            return self._project(plan)
        if isinstance(plan, JoinOp):
            return self._hash_join(plan)
        if isinstance(plan, SemiJoinOp):
            return self._semi_join(plan)
        if isinstance(plan, CrossOp):
            return self._cross(plan)
        if isinstance(plan, UnionOp):
            return self._union(plan)
        if isinstance(plan, DifferenceOp):
            return self._difference(plan)
        if isinstance(plan, IntersectOp):
            return self._intersect(plan)
        if isinstance(plan, AggregateOp):
            return self._aggregate(plan)
        raise QueryEvaluationError(f"unsupported plan node {type(plan).__name__}")

    # -- operators -----------------------------------------------------------

    def _scan(self, plan: ScanOp) -> "dict[Values, Any]":
        domain = self.domain
        out: dict[Values, Any] = {}
        for tid, values in self.instance.relation(plan.relation).tuples():
            annotation = domain.of_tuple(tid)
            existing = out.get(values)
            out[values] = annotation if existing is None else domain.plus(existing, annotation)
        return out

    def _filter(self, plan: FilterOp) -> "dict[Values, Any]":
        keep = compile_predicate(plan.predicate, plan.schema)
        params = self.params
        return {row: a for row, a in self.run(plan.child).items() if keep(row, params)}

    def _project(self, plan: ProjectOp) -> "dict[Values, Any]":
        domain = self.domain
        extract = key_function(plan.indexes)
        out: dict[Values, Any] = {}
        for row, annotation in self.run(plan.child).items():
            projected = extract(row)
            existing = out.get(projected)
            out[projected] = (
                annotation if existing is None else domain.plus(existing, annotation)
            )
        return out

    def _build_table(
        self, plan: PlanNode, key: tuple[int, ...]
    ) -> "dict[tuple, list[tuple[Values, Any]]]":
        """Group the build input by join key, folding duplicate rows.

        A bare base-relation scan uses the instance's cached hash index, so
        repeated joins on the same key skip the grouping pass entirely.
        """
        domain = self.domain
        table: dict[tuple, list[tuple[Values, Any]]] = {}
        if self.use_index and isinstance(plan, ScanOp):
            if self.analyzer is not None:
                self.analyzer.note(from_index=True)
            index = self.instance.relation(plan.relation).hash_index(key)
            for key_values, entries in index.items():
                folded: dict[Values, Any] = {}
                for tid, values in entries:
                    annotation = domain.of_tuple(tid)
                    existing = folded.get(values)
                    folded[values] = (
                        annotation if existing is None else domain.plus(existing, annotation)
                    )
                table[key_values] = list(folded.items())
            return table
        extract = key_function(key)
        for row, annotation in self.run(plan).items():
            table.setdefault(extract(row), []).append((row, annotation))
        return table

    def _hash_join(self, plan: JoinOp) -> "dict[Values, Any]":
        domain = self.domain
        params = self.params
        build_left = plan.build_left
        if build_left:
            table = self._build_table(plan.left, plan.left_key)
            probe_rows = self.run(plan.right)
            probe_key = key_function(plan.right_key)
        else:
            table = self._build_table(plan.right, plan.right_key)
            probe_rows = self.run(plan.left)
            probe_key = key_function(plan.left_key)
        residual = [compile_predicate(p, plan.schema) for p in plan.residual]
        keep_right = plan.keep_right
        out: dict[Values, Any] = {}
        for probe_row, probe_annotation in probe_rows.items():
            matches = table.get(probe_key(probe_row))
            if not matches:
                continue
            for build_row, build_annotation in matches:
                if build_left:
                    left_row, left_a = build_row, build_annotation
                    right_row, right_a = probe_row, probe_annotation
                else:
                    left_row, left_a = probe_row, probe_annotation
                    right_row, right_a = build_row, build_annotation
                if keep_right is None:
                    combined = left_row + right_row
                else:
                    combined = left_row + tuple(right_row[i] for i in keep_right)
                if residual and not all(p(combined, params) for p in residual):
                    continue
                annotation = domain.times(left_a, right_a)
                existing = out.get(combined)
                out[combined] = (
                    annotation if existing is None else domain.plus(existing, annotation)
                )
        return out

    def _semi_join(self, plan: SemiJoinOp) -> "dict[Values, Any]":
        """Keep left rows (annotations untouched) with a match on the right.

        The right side contributes nothing but a key set, so a bare scan is
        answered straight from the relation's cached hash index.
        """
        if self.use_index and isinstance(plan.right, ScanOp):
            if self.analyzer is not None:
                self.analyzer.note(from_index=True)
            keys = self.instance.relation(plan.right.relation).hash_index(plan.right_key)
        else:
            extract_right = key_function(plan.right_key)
            keys = {extract_right(row) for row in self.run(plan.right)}
        extract = key_function(plan.left_key)
        return {
            row: annotation
            for row, annotation in self.run(plan.left).items()
            if extract(row) in keys
        }

    def _cross(self, plan: CrossOp) -> "dict[Values, Any]":
        domain = self.domain
        params = self.params
        residual = [compile_predicate(p, plan.schema) for p in plan.residual]
        right_rows = self.run(plan.right)
        out: dict[Values, Any] = {}
        for left_row, left_a in self.run(plan.left).items():
            for right_row, right_a in right_rows.items():
                combined = left_row + right_row
                if residual and not all(p(combined, params) for p in residual):
                    continue
                annotation = domain.times(left_a, right_a)
                existing = out.get(combined)
                out[combined] = (
                    annotation if existing is None else domain.plus(existing, annotation)
                )
        return out

    def _union(self, plan: UnionOp) -> "dict[Values, Any]":
        domain = self.domain
        out = dict(self.run(plan.left))
        for row, annotation in self.run(plan.right).items():
            existing = out.get(row)
            out[row] = annotation if existing is None else domain.plus(existing, annotation)
        return out

    def _difference(self, plan: DifferenceOp) -> "dict[Values, Any]":
        domain = self.domain
        right = self.run(plan.right)
        out: dict[Values, Any] = {}
        for row, annotation in self.run(plan.left).items():
            counter = right.get(row)
            if counter is None:
                out[row] = annotation
                continue
            combined = domain.minus(annotation, counter)
            if not domain.is_absent(combined):
                out[row] = combined
        return out

    def _intersect(self, plan: IntersectOp) -> "dict[Values, Any]":
        domain = self.domain
        right = self.run(plan.right)
        out: dict[Values, Any] = {}
        for row, annotation in self.run(plan.left).items():
            counter = right.get(row)
            if counter is not None:
                out[row] = domain.times(annotation, counter)
        return out

    def _aggregate(self, plan: AggregateOp) -> "dict[Values, Any]":
        domain = self.domain
        if not domain.supports_aggregation:
            raise NotApplicableError(AGGREGATION_NOT_SUPPORTED)
        extract = key_function(plan.group_indexes)
        groups: dict[tuple, list[Values]] = {}
        annotations: dict[tuple, Any] = {}
        for row, annotation in self.run(plan.child).items():
            key = extract(row)
            members = groups.get(key)
            if members is None:
                groups[key] = [row]
                annotations[key] = annotation
            else:
                members.append(row)
                annotations[key] = domain.plus(annotations[key], annotation)
        out: dict[Values, Any] = {}
        for key, members in groups.items():
            computed = []
            for spec, index in plan.aggregates:
                if index < 0:
                    computed.append(len(members))
                else:
                    computed.append(
                        apply_aggregate(
                            spec.func,
                            [row[index] for row in members if row[index] is not None],
                        )
                    )
            output_row = key + tuple(computed)
            existing = out.get(output_row)
            annotation = annotations[key]
            out[output_row] = (
                annotation if existing is None else domain.plus(existing, annotation)
            )
        return out
