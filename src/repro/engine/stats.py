"""Catalog statistics for the cost-based optimizer.

The engine keeps no separate statistics store: every number the optimizer
uses is derived from the bound :class:`~repro.catalog.instance.DatabaseInstance`
on demand and cached per relation version.  Row counts come from relation
sizes; per-column distinct-value counts come from
:meth:`~repro.catalog.instance.Relation.distinct_count`, which reuses the
lazy hash indexes equi-joins build anyway.  That keeps the statistics exact
(these are grading instances of at most a few hundred thousand rows, not a
warehouse) and always in sync with the data the plan will actually run over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.instance import DatabaseInstance


@dataclass(frozen=True)
class PlanStats:
    """Estimated output statistics of a plan node.

    ``rows`` is the estimated output cardinality.  ``ndv`` has one entry per
    output column: the estimated number of distinct values in that column, or
    ``None`` when the estimator cannot track the column through the operator
    (e.g. an aggregate output).  ``len(ndv)`` doubles as the plan's output
    arity, which the columnar executor uses to size its batches.
    """

    rows: float
    ndv: tuple[float | None, ...]

    @property
    def width(self) -> int:
        return len(self.ndv)


class StatsCatalog:
    """Per-instance statistics source, cached per relation version."""

    def __init__(self, instance: DatabaseInstance) -> None:
        self.instance = instance
        self._scan_stats: dict[str, tuple[int, PlanStats]] = {}

    def row_count(self, relation_name: str) -> int:
        return len(self.instance.relation(relation_name))

    def distinct_count(self, relation_name: str, key_indexes: tuple[int, ...]) -> int:
        return self.instance.relation(relation_name).distinct_count(key_indexes)

    def scan_stats(self, relation_name: str) -> PlanStats:
        """Rows and per-column distinct counts of a base relation."""
        relation = self.instance.relation(relation_name)
        cached = self._scan_stats.get(relation_name)
        if cached is not None and cached[0] == relation.version:
            return cached[1]
        ndv = tuple(
            float(relation.distinct_count((i,))) for i in range(relation.schema.arity)
        )
        stats = PlanStats(float(len(relation)), ndv)
        self._scan_stats[relation_name] = (relation.version, stats)
        return stats
