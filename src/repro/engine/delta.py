"""Differential maintenance of memoized plan results under instance deltas.

When a bound :class:`~repro.catalog.instance.DatabaseInstance` mutates, the
session used to throw away *every* cached result.  This module implements
the alternative from Berkholz et al.'s work on answering queries under
updates: patch the memoized annotated row sets of the **Set domain** in
place, operator by operator, so the cost of a small edit is proportional to
the delta (plus the touched subplans), not to the database.

The maintenance contract:

* Only memo entries whose plan scans a touched relation are revisited;
  everything else survives verbatim ("maintained").
* Touched entries are processed children-first (by plan size), so every
  parent patch can read its children's already-patched post-states straight
  from the memo and their row-level deltas from this pass's bookkeeping.
* Filter/Project/Join/Aggregate have genuinely differential rules — work
  proportional to the changed rows (joins use the relations' cached hash
  indexes for the unchanged side; aggregates recompute only touched
  groups).  The remaining operators re-execute against their memoized
  (patched) children, which never re-reads base data for untouched inputs.
* Anything that fails to patch — raising predicates on fresh rows, unknown
  child deltas, exotic operators — is simply **dropped** from the memo, so
  the next access recomputes cold and raises (or succeeds) exactly as a
  cold session would.  Dropping is always sound; patching is the fast path.

Order-sensitive domains (Boolean provenance) are *never* patched here: the
session drops their touched entries instead, because replaying a delta
would fold annotations in a different order than the historical evaluator.
"""

from __future__ import annotations

from typing import Any, Mapping, MutableMapping

from repro.catalog.delta import Delta
from repro.catalog.instance import DatabaseInstance, Values
from repro.engine.columnar import as_mapping
from repro.engine.domains import SET_DOMAIN
from repro.engine.logical import (
    AggregateOp,
    FilterOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    plan_operators,
)
from repro.engine.physical import (
    PlanExecutor,
    apply_aggregate,
    compile_predicate,
    key_function,
    plan_memo_key,
)

AnnotatedRows = "dict[Values, Any]"
#: Row-level delta of one memo entry: (added row keys, removed row keys).
NodeDelta = tuple[set, set]


def plan_scan_relations(
    plan: PlanNode, cache: MutableMapping[PlanNode, frozenset] | None = None
) -> frozenset:
    """Names of the base relations a plan reads (its invalidation footprint)."""
    if cache is not None:
        cached = cache.get(plan)
        if cached is not None:
            return cached
    names = frozenset(
        node.relation for node in plan_operators(plan) if isinstance(node, ScanOp)
    )
    if cache is not None:
        cache[plan] = names
    return names


def _plan_size(plan: PlanNode, cache: MutableMapping[PlanNode, int]) -> int:
    size = cache.get(plan)
    if size is None:
        size = sum(1 for _ in plan_operators(plan))
        cache[plan] = size
    return size


class DeltaMaintainer:
    """Patches one Set-domain result memo for a batch of relation deltas.

    ``memo`` is the session's per-domain result cache (an ``LRUCache`` or any
    mapping with ``items``/``get``/``__setitem__``/``__delitem__``); keys are
    the ``(plan, binding)`` pairs produced by
    :func:`~repro.engine.physical.plan_memo_key`.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        memo,
        param_refs: MutableMapping[PlanNode, frozenset],
        *,
        use_index: bool = True,
        scan_cache: MutableMapping[PlanNode, frozenset] | None = None,
    ) -> None:
        self.instance = instance
        self.memo = memo
        self.param_refs = param_refs
        self.use_index = use_index
        self.scan_cache = {} if scan_cache is None else scan_cache
        self._sizes: dict[PlanNode, int] = {}
        self._node_delta: dict[tuple, NodeDelta] = {}
        # LRUCache.get takes record= to keep maintenance reads out of the
        # hit/miss counters; plain dicts (tests) don't.
        kwdefaults = getattr(getattr(memo, "get", None), "__kwdefaults__", None)
        if kwdefaults and "record" in kwdefaults:
            self._peek = lambda key: memo.get(key, record=False)
        else:
            self._peek = memo.get

    # -- public entry point ------------------------------------------------

    def apply(self, delta: Delta) -> dict[str, int]:
        """Patch the memo in place; returns maintained/patched/dropped counts."""
        counters = {"maintained": 0, "patched": 0, "dropped": 0}
        touched = delta.relations
        if not touched:
            counters["maintained"] = len(self.memo)
            return counters
        entries: list[tuple[int, tuple, PlanNode, tuple]] = []
        for key, _value in list(self.memo.items()):
            plan, binding = key
            if plan_scan_relations(plan, self.scan_cache).isdisjoint(touched):
                counters["maintained"] += 1
                continue
            entries.append((_plan_size(plan, self._sizes), key, plan, binding))
        entries.sort(key=lambda entry: entry[0])
        # Snapshot pre-states before any patch overwrites them: parents need
        # their children's pre-state to interpret this pass's row deltas.
        pre: dict[tuple, AnnotatedRows] = {}
        for _size, key, _plan, _binding in entries:
            value = self._peek(key)
            if value is not None:
                pre[key] = as_mapping(value)
        for _size, key, plan, binding in entries:
            old = pre.get(key)
            if old is None:  # evicted mid-pass (shouldn't happen; be safe)
                counters["dropped"] += 1
                continue
            params = dict(binding)
            executor = PlanExecutor(
                self.instance,
                params,
                SET_DOMAIN,
                self.memo,
                self.param_refs,
                use_index=self.use_index,
            )
            try:
                new = self._patch(plan, params, old, executor, touched)
            except Exception:
                new = None
            if new is None:
                if key in self.memo:
                    del self.memo[key]
                counters["dropped"] += 1
                continue
            added = {row for row in new if row not in old}
            removed = {row for row in old if row not in new}
            self._node_delta[key] = (added, removed)
            self.memo[key] = new
            counters["patched"] += 1
        return counters

    # -- child bookkeeping -------------------------------------------------

    def _child_state(
        self,
        child: PlanNode,
        params: Mapping[str, Any],
        executor: PlanExecutor,
        touched: frozenset,
    ) -> tuple[AnnotatedRows, "NodeDelta | None"]:
        """The child's post-state plus its row delta (None when unknown).

        Children are processed before their parents (plan-size order), so a
        touched child that was in the memo has already been patched — its
        delta sits in ``_node_delta``.  A child that was never memoized (or
        was dropped) is recomputed cold through the executor, which memoizes
        the post-state but cannot tell us what changed: the parent then falls
        back to re-execution over memoized children.
        """
        key = plan_memo_key(child, params, self.param_refs)
        if key is None:
            return executor.run(child), None
        if plan_scan_relations(child, self.scan_cache).isdisjoint(touched):
            cached = self._peek(key)
            if cached is None:
                return executor.run(child), (set(), set())
            return as_mapping(cached), (set(), set())
        node_delta = self._node_delta.get(key)
        cached = self._peek(key)
        if node_delta is not None and cached is not None:
            return as_mapping(cached), node_delta
        return executor.run(child), None

    # -- operator rules ----------------------------------------------------

    def _patch(
        self,
        plan: PlanNode,
        params: Mapping[str, Any],
        old: AnnotatedRows,
        executor: PlanExecutor,
        touched: frozenset,
    ) -> AnnotatedRows:
        if isinstance(plan, FilterOp):
            return self._patch_filter(plan, params, old, executor, touched)
        if isinstance(plan, ProjectOp):
            return self._patch_project(plan, params, old, executor, touched)
        if isinstance(plan, JoinOp):
            return self._patch_join(plan, params, old, executor, touched)
        if isinstance(plan, AggregateOp):
            return self._patch_aggregate(plan, params, old, executor, touched)
        # Scan, semi-join, union, difference, intersect, cross: re-execute
        # against memoized (already patched) children — never touches base
        # data for untouched inputs, and a scan rebuild is O(|R|) anyway.
        return executor._execute(plan)

    def _patch_filter(self, plan, params, old, executor, touched):
        child_post, child_delta = self._child_state(plan.child, params, executor, touched)
        if child_delta is None:
            return executor._execute(plan)
        added, removed = child_delta
        keep = compile_predicate(plan.predicate, plan.schema)
        new = dict(old)
        for row in removed:
            new.pop(row, None)
        for row in added:
            if keep(row, params):
                new[row] = child_post[row]
        return new

    def _patch_project(self, plan, params, old, executor, touched):
        child_post, child_delta = self._child_state(plan.child, params, executor, touched)
        if child_delta is None:
            return executor._execute(plan)
        added, removed = child_delta
        domain = SET_DOMAIN
        extract = key_function(plan.indexes)
        new = dict(old)
        for row in added:
            projected = extract(row)
            existing = new.get(projected)
            annotation = child_post[row]
            new[projected] = (
                annotation if existing is None else domain.plus(existing, annotation)
            )
        doomed = {extract(row) for row in removed}
        doomed -= {extract(row) for row in added}
        if doomed:
            # A projection of a removed row survives iff some remaining child
            # row still projects onto it: one membership pass, only when rows
            # actually disappeared.
            surviving = set()
            for row in child_post:
                projected = extract(row)
                if projected in doomed:
                    surviving.add(projected)
                    if len(surviving) == len(doomed):
                        break
            for projected in doomed - surviving:
                new.pop(projected, None)
        return new

    def _rows_by_key(
        self, child: PlanNode, post: AnnotatedRows, key: tuple[int, ...], wanted: set
    ) -> dict:
        """``{join key -> [(row, annotation), ...]}`` restricted to ``wanted``.

        A bare base-relation scan is answered from the relation's cached hash
        index (maintained incrementally by the catalog), so the unchanged
        side of a join costs one dict lookup per touched key instead of a
        pass over the memoized rows.
        """
        domain = SET_DOMAIN
        groups: dict = {}
        if self.use_index and isinstance(child, ScanOp):
            index = self.instance.relation(child.relation).hash_index(key)
            for key_values in wanted:
                entries = index.get(key_values)
                if not entries:
                    continue
                folded: dict[Values, Any] = {}
                for tid, values in entries:
                    annotation = domain.of_tuple(tid)
                    existing = folded.get(values)
                    folded[values] = (
                        annotation
                        if existing is None
                        else domain.plus(existing, annotation)
                    )
                groups[key_values] = list(folded.items())
            return groups
        extract = key_function(key)
        for row, annotation in post.items():
            key_values = extract(row)
            if key_values in wanted:
                groups.setdefault(key_values, []).append((row, annotation))
        return groups

    def _patch_join(self, plan, params, old, executor, touched):
        left_post, left_delta = self._child_state(plan.left, params, executor, touched)
        right_post, right_delta = self._child_state(plan.right, params, executor, touched)
        if left_delta is None or right_delta is None:
            return executor._execute(plan)
        domain = SET_DOMAIN
        left_key = key_function(plan.left_key)
        right_key = key_function(plan.right_key)
        affected = {left_key(row) for rows in left_delta for row in rows}
        affected |= {right_key(row) for rows in right_delta for row in rows}
        if not affected:
            return dict(old)
        # Output rows keep the left columns in positions 0..left_arity-1, so
        # the left-key extractor identifies an output row's join key directly.
        new = {row: a for row, a in old.items() if left_key(row) not in affected}
        residual = [compile_predicate(p, plan.schema) for p in plan.residual]
        keep_right = plan.keep_right
        left_groups = self._rows_by_key(plan.left, left_post, plan.left_key, affected)
        right_groups = self._rows_by_key(plan.right, right_post, plan.right_key, affected)
        for key_values, left_rows in left_groups.items():
            right_rows = right_groups.get(key_values)
            if not right_rows:
                continue
            for left_row, left_a in left_rows:
                for right_row, right_a in right_rows:
                    if keep_right is None:
                        combined = left_row + right_row
                    else:
                        combined = left_row + tuple(right_row[i] for i in keep_right)
                    if residual and not all(p(combined, params) for p in residual):
                        continue
                    annotation = domain.times(left_a, right_a)
                    existing = new.get(combined)
                    new[combined] = (
                        annotation
                        if existing is None
                        else domain.plus(existing, annotation)
                    )
        return new

    def _patch_aggregate(self, plan, params, old, executor, touched):
        child_post, child_delta = self._child_state(plan.child, params, executor, touched)
        if child_delta is None:
            return executor._execute(plan)
        added, removed = child_delta
        if not added and not removed:
            return dict(old)
        domain = SET_DOMAIN
        extract = key_function(plan.group_indexes)
        touched_keys = {extract(row) for rows in (added, removed) for row in rows}
        width = len(plan.group_indexes)
        new = {row: a for row, a in old.items() if row[:width] not in touched_keys}
        groups: dict[tuple, list[Values]] = {}
        annotations: dict[tuple, Any] = {}
        for row, annotation in child_post.items():
            key = extract(row)
            if key not in touched_keys:
                continue
            members = groups.get(key)
            if members is None:
                groups[key] = [row]
                annotations[key] = annotation
            else:
                members.append(row)
                annotations[key] = domain.plus(annotations[key], annotation)
        for key, members in groups.items():
            computed = []
            for spec, index in plan.aggregates:
                if index < 0:
                    computed.append(len(members))
                else:
                    computed.append(
                        apply_aggregate(
                            spec.func,
                            [row[index] for row in members if row[index] is not None],
                        )
                    )
            output_row = key + tuple(computed)
            annotation = annotations[key]
            existing = new.get(output_row)
            new[output_row] = (
                annotation if existing is None else domain.plus(existing, annotation)
            )
        return new


__all__ = ["DeltaMaintainer", "plan_scan_relations"]
