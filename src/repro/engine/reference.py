"""Reference interpreters: the pre-engine tuple-at-a-time evaluators.

These are the original operator-at-a-time interpreters that
``repro.ra.evaluator`` and ``repro.provenance.annotate`` shipped before the
plan-based engine replaced them.  They are kept *only* as

* the independent oracle for the engine's differential tests
  (``tests/test_engine_differential.py``), and
* the "old interpreter" baseline of
  ``benchmarks/bench_engine_speedup.py``.

Production code paths must use :class:`~repro.engine.session.EngineSession`
(or the ``evaluate``/``annotate`` facades built on it); nothing outside tests
and benchmarks should import this module.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.catalog.instance import DatabaseInstance, Values
from repro.engine.logical import resolve_aggregate_input, split_equijoin_conjuncts
from repro.engine.physical import apply_aggregate
from repro.errors import NotApplicableError, QueryEvaluationError
from repro.provenance.boolexpr import FALSE, BoolExpr, Var, band, bnot, bor
from repro.ra.ast import (
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)

ParamValues = Mapping[str, Any]


class ReferenceEvaluator:
    """Set-semantics interpreter, memoised by node identity (the old code)."""

    def __init__(self, instance: DatabaseInstance, params: ParamValues) -> None:
        self.instance = instance
        self.params = params
        self._cache: dict[int, list[Values]] = {}

    def rows(self, node: RAExpression) -> list[Values]:
        key = id(node)
        if key not in self._cache:
            self._cache[key] = self._evaluate(node)
        return self._cache[key]

    def _evaluate(self, node: RAExpression) -> list[Values]:
        if isinstance(node, RelationRef):
            relation = self.instance.relation(node.name)
            return _dedup(values for _, values in relation.tuples())
        if isinstance(node, Selection):
            schema = node.child.output_schema(self.instance.schema)
            predicate = node.predicate
            return [
                row
                for row in self.rows(node.child)
                if predicate.evaluate(schema, row, self.params)
            ]
        if isinstance(node, Projection):
            schema = node.child.output_schema(self.instance.schema)
            indexes = [schema.index_of(c) for c in node.columns]
            return _dedup(tuple(row[i] for i in indexes) for row in self.rows(node.child))
        if isinstance(node, Rename):
            return self.rows(node.child)
        if isinstance(node, Join):
            return self._theta_join(node)
        if isinstance(node, NaturalJoin):
            return self._natural_join(node)
        if isinstance(node, Union):
            return _dedup(self.rows(node.left) + self.rows(node.right))
        if isinstance(node, Difference):
            right = set(self.rows(node.right))
            return [row for row in self.rows(node.left) if row not in right]
        if isinstance(node, Intersection):
            right = set(self.rows(node.right))
            return [row for row in self.rows(node.left) if row in right]
        if isinstance(node, GroupBy):
            return self._group_by(node)
        raise QueryEvaluationError(f"unsupported RA node type {type(node).__name__}")

    def _theta_join(self, node: Join) -> list[Values]:
        left_schema = node.left.output_schema(self.instance.schema)
        right_schema = node.right.output_schema(self.instance.schema)
        combined = node.output_schema(self.instance.schema)
        pairs, residual = split_equijoin_conjuncts(
            node.effective_predicate(), left_schema, right_schema
        )
        left_rows = self.rows(node.left)
        right_rows = self.rows(node.right)
        output: list[Values] = []
        if pairs:
            left_idx = [left_schema.index_of(a) for a, _ in pairs]
            right_idx = [right_schema.index_of(b) for _, b in pairs]
            table: dict[tuple, list[Values]] = {}
            for row in right_rows:
                table.setdefault(tuple(row[i] for i in right_idx), []).append(row)
            for left_row in left_rows:
                key = tuple(left_row[i] for i in left_idx)
                for right_row in table.get(key, ()):
                    output.append(left_row + right_row)
        else:
            for left_row in left_rows:
                for right_row in right_rows:
                    output.append(left_row + right_row)
        if residual:
            output = [
                row
                for row in output
                if all(p.evaluate(combined, row, self.params) for p in residual)
            ]
        return _dedup(output)

    def _natural_join(self, node: NaturalJoin) -> list[Values]:
        left_schema = node.left.output_schema(self.instance.schema)
        right_schema = node.right.output_schema(self.instance.schema)
        shared = node.shared_attributes(self.instance.schema)
        left_rows = self.rows(node.left)
        right_rows = self.rows(node.right)
        if not shared:
            return _dedup(l + r for l in left_rows for r in right_rows)
        left_idx = [left_schema.index_of(name) for name in shared]
        right_idx = [right_schema.index_of(name) for name in shared]
        keep_right = [
            i for i, attr in enumerate(right_schema.attributes) if attr.name not in set(shared)
        ]
        table: dict[tuple, list[Values]] = {}
        for row in right_rows:
            table.setdefault(tuple(row[i] for i in right_idx), []).append(row)
        output = []
        for left_row in left_rows:
            key = tuple(left_row[i] for i in left_idx)
            for right_row in table.get(key, ()):
                output.append(left_row + tuple(right_row[i] for i in keep_right))
        return _dedup(output)

    def _group_by(self, node: GroupBy) -> list[Values]:
        schema = node.child.output_schema(self.instance.schema)
        group_idx = [schema.index_of(name) for name in node.group_by]
        resolved = [(spec, resolve_aggregate_input(spec, schema)) for spec in node.aggregates]
        groups: dict[tuple, list[Values]] = {}
        for row in self.rows(node.child):
            groups.setdefault(tuple(row[i] for i in group_idx), []).append(row)
        output = []
        for key, rows in groups.items():
            aggregates = tuple(
                len(rows)
                if index < 0
                else apply_aggregate(
                    spec.func, [row[index] for row in rows if row[index] is not None]
                )
                for spec, index in resolved
            )
            output.append(key + aggregates)
        return _dedup(output)


class ReferenceProvenanceEvaluator:
    """Bottom-up provenance interpreter mirroring :class:`ReferenceEvaluator`."""

    def __init__(self, instance: DatabaseInstance, params: ParamValues) -> None:
        self.instance = instance
        self.params = params
        self._cache: dict[int, dict[Values, BoolExpr]] = {}

    def annotated(self, node: RAExpression) -> dict[Values, BoolExpr]:
        key = id(node)
        if key not in self._cache:
            self._cache[key] = self._evaluate(node)
        return self._cache[key]

    def _evaluate(self, node: RAExpression) -> dict[Values, BoolExpr]:
        if isinstance(node, RelationRef):
            provenance: dict[Values, BoolExpr] = {}
            for tid, values in self.instance.relation(node.name).tuples():
                existing = provenance.get(values)
                annotation = Var(tid)
                provenance[values] = (
                    annotation if existing is None else bor(existing, annotation)
                )
            return provenance
        if isinstance(node, Selection):
            schema = node.child.output_schema(self.instance.schema)
            return {
                row: expr
                for row, expr in self.annotated(node.child).items()
                if node.predicate.evaluate(schema, row, self.params)
            }
        if isinstance(node, Projection):
            schema = node.child.output_schema(self.instance.schema)
            indexes = [schema.index_of(c) for c in node.columns]
            provenance = {}
            for row, expr in self.annotated(node.child).items():
                projected = tuple(row[i] for i in indexes)
                existing = provenance.get(projected)
                provenance[projected] = expr if existing is None else bor(existing, expr)
            return provenance
        if isinstance(node, Rename):
            return dict(self.annotated(node.child))
        if isinstance(node, Join):
            return self._theta_join(node)
        if isinstance(node, NaturalJoin):
            return self._natural_join(node)
        if isinstance(node, Union):
            provenance = dict(self.annotated(node.left))
            for row, expr in self.annotated(node.right).items():
                existing = provenance.get(row)
                provenance[row] = expr if existing is None else bor(existing, expr)
            return provenance
        if isinstance(node, Difference):
            right = self.annotated(node.right)
            provenance = {}
            for row, expr in self.annotated(node.left).items():
                combined = band(expr, bnot(right[row])) if row in right else expr
                if not isinstance(combined, type(FALSE)):
                    provenance[row] = combined
            return provenance
        if isinstance(node, Intersection):
            right = self.annotated(node.right)
            provenance = {}
            for row, expr in self.annotated(node.left).items():
                if row in right:
                    provenance[row] = band(expr, right[row])
            return provenance
        if isinstance(node, GroupBy):
            raise NotApplicableError(
                "Boolean how-provenance does not cover aggregation; "
                "use repro.provenance.aggregate for GroupBy queries"
            )
        raise QueryEvaluationError(f"unsupported RA node type {type(node).__name__}")

    def _theta_join(self, node: Join) -> dict[Values, BoolExpr]:
        left_schema = node.left.output_schema(self.instance.schema)
        right_schema = node.right.output_schema(self.instance.schema)
        combined_schema = node.output_schema(self.instance.schema)
        pairs, residual = split_equijoin_conjuncts(
            node.effective_predicate(), left_schema, right_schema
        )
        left = self.annotated(node.left)
        right = self.annotated(node.right)
        provenance: dict[Values, BoolExpr] = {}

        def emit(left_row: Values, left_expr: BoolExpr, right_row: Values, right_expr: BoolExpr) -> None:
            combined = left_row + right_row
            if residual and not all(
                p.evaluate(combined_schema, combined, self.params) for p in residual
            ):
                return
            expr = band(left_expr, right_expr)
            existing = provenance.get(combined)
            provenance[combined] = expr if existing is None else bor(existing, expr)

        if pairs:
            left_idx = [left_schema.index_of(a) for a, _ in pairs]
            right_idx = [right_schema.index_of(b) for _, b in pairs]
            table: dict[tuple, list[tuple[Values, BoolExpr]]] = {}
            for row, expr in right.items():
                table.setdefault(tuple(row[i] for i in right_idx), []).append((row, expr))
            for left_row, left_expr in left.items():
                key = tuple(left_row[i] for i in left_idx)
                for right_row, right_expr in table.get(key, ()):
                    emit(left_row, left_expr, right_row, right_expr)
        else:
            for left_row, left_expr in left.items():
                for right_row, right_expr in right.items():
                    emit(left_row, left_expr, right_row, right_expr)
        return provenance

    def _natural_join(self, node: NaturalJoin) -> dict[Values, BoolExpr]:
        left_schema = node.left.output_schema(self.instance.schema)
        right_schema = node.right.output_schema(self.instance.schema)
        shared = node.shared_attributes(self.instance.schema)
        left = self.annotated(node.left)
        right = self.annotated(node.right)
        provenance: dict[Values, BoolExpr] = {}
        left_idx = [left_schema.index_of(name) for name in shared]
        right_idx = [right_schema.index_of(name) for name in shared]
        keep_right = [
            i for i, attr in enumerate(right_schema.attributes) if attr.name not in set(shared)
        ]
        table: dict[tuple, list[tuple[Values, BoolExpr]]] = {}
        for row, expr in right.items():
            table.setdefault(tuple(row[i] for i in right_idx), []).append((row, expr))
        for left_row, left_expr in left.items():
            key = tuple(left_row[i] for i in left_idx)
            for right_row, right_expr in table.get(key, ()):
                combined = left_row + tuple(right_row[i] for i in keep_right)
                expr = band(left_expr, right_expr)
                existing = provenance.get(combined)
                provenance[combined] = expr if existing is None else bor(existing, expr)
        return provenance


def _dedup(rows) -> list[Values]:
    seen: set[Values] = set()
    output: list[Values] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            output.append(row)
    return output
