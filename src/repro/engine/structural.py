"""Structural identity for expression and plan caching.

RA expression nodes and engine plan nodes are frozen dataclasses, so Python's
``==``/``hash`` already compare them *structurally*: two independently built
copies of the same subtree are equal.  Caching by structural key (instead of
``id(node)``) lets shared sub-expressions hit the cache even when they are
distinct objects — the common case for student queries where the same
subquery appears on both sides of a :class:`~repro.ra.ast.Difference`.

Hashing a tree is O(size), so :class:`KeyCache` interns a
:class:`StructuralKey` per *object*: repeat lookups of the same node are O(1),
while structurally equal distinct objects still collide (by design) through
the precomputed hash and deep equality.
"""

from __future__ import annotations

from typing import Any, Hashable


def structural_hash(node: Any) -> int:
    """Hash of a frozen expression/plan node; identity fallback if unhashable.

    The fallback only triggers for exotic trees (e.g. a ``Literal`` holding a
    mutable value); such nodes simply lose cross-object cache sharing.
    """
    try:
        return hash(node)
    except TypeError:
        return id(node)


class StructuralKey:
    """A node wrapped with its precomputed structural hash."""

    __slots__ = ("node", "_hash")

    def __init__(self, node: Any) -> None:
        self.node = node
        self._hash = structural_hash(node)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructuralKey):
            return NotImplemented
        if self.node is other.node:
            return True
        if self._hash != other._hash:
            return False
        try:
            return bool(self.node == other.node)
        except Exception:  # pragma: no cover - defensive: odd __eq__ on literals
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StructuralKey({self.node!r})"


class KeyCache:
    """Interns one :class:`StructuralKey` per live node object.

    Entries hold a strong reference to their node, so ``id`` reuse cannot
    alias a dead node: the guard ``entry.node is node`` stays sound.  Because
    long-lived grading sessions parse a fresh tree per submission (so old
    entries are never looked up again), the cache self-clears when it exceeds
    ``max_entries`` — the cost is one re-hash per retained node, not
    correctness.
    """

    def __init__(self, max_entries: int = 8192) -> None:
        self._by_id: dict[int, StructuralKey] = {}
        self._max_entries = max_entries

    def key(self, node: Hashable) -> StructuralKey:
        entry = self._by_id.get(id(node))
        if entry is None or entry.node is not node:
            if len(self._by_id) >= self._max_entries:
                self._by_id.clear()
            entry = StructuralKey(node)
            self._by_id[id(node)] = entry
        return entry

    def clear(self) -> None:
        self._by_id.clear()

    def __len__(self) -> int:
        return len(self._by_id)
