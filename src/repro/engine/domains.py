"""Annotation domains: the algebra the execution engine is generic over.

Following the provenance-semiring view, every physical operator manipulates
``(row, annotation)`` pairs and only ever combines annotations through the
domain operations below.  Instantiating the same plan with

* :class:`SetDomain` reproduces plain set-semantics evaluation — an
  annotation is just "the row is present", and
* :class:`ProvenanceDomain` reproduces Boolean how-provenance — an annotation
  is a :class:`~repro.provenance.boolexpr.BoolExpr` over input-tuple
  variables,

so any join/dedup/pushdown optimisation bought once speeds up both grading
and counterexample construction.
"""

from __future__ import annotations

from typing import Any

from repro.provenance.boolexpr import FALSE, BoolExpr, FalseExpr, Var, band, bnot, bor


class AnnotationDomain:
    """Operations an annotation domain must provide.

    ``minus`` may return an *absent* annotation (checked via
    :meth:`is_absent`) to signal that the row must be dropped.
    """

    #: Short name used in cache keys and diagnostics.
    name: str = "abstract"
    #: Whether GroupBy/aggregation is defined for this domain.
    supports_aggregation: bool = False
    #: Whether the *structure* of an annotation depends on the order in which
    #: ``plus``/``times`` fold it (Boolean expressions keep operand order, so
    #: physical reorderings such as the hash-join build-side choice would
    #: change provenance bit-for-bit even though the semantics are unchanged).
    #: Order-sensitive domains run on plans whose logical rewrites are applied
    #: but whose operator order stays deterministic.
    order_sensitive: bool = False

    def of_tuple(self, tid: str) -> Any:
        """Annotation of one base tuple identified by ``tid``."""
        raise NotImplementedError

    def plus(self, a: Any, b: Any) -> Any:
        """Alternative derivations (dedup, projection, union)."""
        raise NotImplementedError

    def times(self, a: Any, b: Any) -> Any:
        """Joint derivation (join, intersection)."""
        raise NotImplementedError

    def minus(self, a: Any, b: Any) -> Any:
        """Derivation of ``a`` in the absence of ``b`` (difference)."""
        raise NotImplementedError

    def is_absent(self, a: Any) -> bool:
        """True when the annotation denotes a row that cannot appear."""
        raise NotImplementedError


class SetDomain(AnnotationDomain):
    """Presence booleans: the Boolean instance that yields set semantics."""

    name = "set"
    supports_aggregation = True

    def of_tuple(self, tid: str) -> bool:
        return True

    def plus(self, a: bool, b: bool) -> bool:
        return a or b

    def times(self, a: bool, b: bool) -> bool:
        return a and b

    def minus(self, a: bool, b: bool) -> bool:
        return a and not b

    def is_absent(self, a: bool) -> bool:
        return not a


class ProvenanceDomain(AnnotationDomain):
    """Boolean how-provenance expressions over tuple variables (§2.3)."""

    name = "provenance"
    supports_aggregation = False
    order_sensitive = True

    def of_tuple(self, tid: str) -> BoolExpr:
        return Var(tid)

    def plus(self, a: BoolExpr, b: BoolExpr) -> BoolExpr:
        return bor(a, b)

    def times(self, a: BoolExpr, b: BoolExpr) -> BoolExpr:
        return band(a, b)

    def minus(self, a: BoolExpr, b: BoolExpr) -> BoolExpr:
        return band(a, bnot(b))

    def is_absent(self, a: BoolExpr) -> bool:
        return isinstance(a, FalseExpr) or a is FALSE


SET_DOMAIN = SetDomain()
PROVENANCE_DOMAIN = ProvenanceDomain()
