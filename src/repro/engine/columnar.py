"""Columnar batches: column-wise execution of the Set domain's hot path.

A :class:`ColumnBatch` holds the distinct rows of an intermediate result in
first-seen order — exactly the key order of the row-at-a-time executor's
``dict[Values, annotation]`` — with per-column value lists materialized
lazily, so filters touch only the columns their predicates read.  The batch
converts to the dict representation on demand (:meth:`ColumnBatch.to_mapping`)
and the conversion is cached, so session memos can hold either representation
interchangeably and every downstream consumer (set operations, aggregation,
the public facade) sees the same rows in the same order as before.

Only scan, filter, project, hash join and semijoin are lowered — the
operators dominating warm grading workloads — and only under the Set domain:
provenance and other order-sensitive domains keep the per-dict row path,
whose annotation folding order is part of their contract.

Correctness notes, load-bearing for the differential fuzzer:

* predicates that can raise (parameters, division, ill-typed ordered
  comparisons) are evaluated row-at-a-time with the exact closure the dict
  path uses, so *which* row raises first — and therefore which error a
  student sees — is unchanged;
* non-raising conjuncts are applied column-at-a-time in conjunct order,
  which filters the same rows the per-row ``And`` short-circuit does;
* every conjunct is compiled before any is applied, so unknown-attribute
  errors surface even on empty inputs, like the dict path's up-front
  predicate compilation;
* join outputs are deduplicated (first-seen) only when column-dropping can
  fold rows (``keep_right``), mirroring the dict path's plus-fold.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.catalog.instance import Values
from repro.engine.logical import (
    FilterOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SemiJoinOp,
)
from repro.engine.optimizer import _predicate_can_raise
from repro.engine.physical import compile_predicate, key_function
from repro.errors import QueryEvaluationError, UnknownAttributeError
from repro.ra.predicates import COMPARISON_OPS, ColumnRef, Comparison, Literal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.physical import PlanExecutor


class ColumnBatch:
    """Distinct rows in first-seen order, with lazy per-column views.

    Invariants: rows are distinct, and their order is exactly the insertion
    order the row-at-a-time dict path would produce for the same plan.
    ``annotations`` is ``None`` when every row carries the domain's "present"
    annotation (always the case under the Set domain, the only domain lowered
    to columnar execution); otherwise it is a list parallel to the rows.
    """

    __slots__ = ("width", "annotations", "_rows", "_mapping", "_columns")

    def __init__(
        self,
        width: int,
        *,
        rows: "list[Values] | None" = None,
        mapping: "dict[Values, Any] | None" = None,
        annotations: "list[Any] | None" = None,
    ) -> None:
        self.width = width
        self.annotations = annotations
        self._rows = rows
        self._mapping = mapping
        self._columns: dict[int, list] = {}

    @classmethod
    def from_rows(
        cls, width: int, rows: "list[Values]", annotations: "list[Any] | None" = None
    ) -> "ColumnBatch":
        return cls(width, rows=rows, annotations=annotations)

    @classmethod
    def from_mapping(cls, mapping: "dict[Values, Any]") -> "ColumnBatch":
        rows = list(mapping)
        width = len(rows[0]) if rows else 0
        annotations = None
        if any(annotation is not True for annotation in mapping.values()):
            annotations = list(mapping.values())
        return cls(width, rows=rows, mapping=mapping, annotations=annotations)

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self._mapping)  # type: ignore[arg-type]

    def rows(self) -> "list[Values]":
        if self._rows is None:
            self._rows = list(self._mapping)  # type: ignore[arg-type]
        return self._rows

    def column(self, index: int) -> list:
        """The values of one column, materialized lazily and cached."""
        cached = self._columns.get(index)
        if cached is None:
            cached = [row[index] for row in self.rows()]
            self._columns[index] = cached
        return cached

    def to_mapping(self) -> "dict[Values, Any]":
        """The equivalent annotated row dict (cached; treat as read-only)."""
        if self._mapping is None:
            if self.annotations is None:
                self._mapping = dict.fromkeys(self.rows(), True)
            else:
                self._mapping = dict(zip(self.rows(), self.annotations))
        return self._mapping


def as_mapping(result: "dict[Values, Any] | ColumnBatch") -> "dict[Values, Any]":
    """Normalize an executor/memo result to the annotated-dict representation."""
    if isinstance(result, dict):
        return result
    return result.to_mapping()


def _child_batch(executor: "PlanExecutor", plan: PlanNode) -> ColumnBatch:
    result = executor.run_cached(plan)
    if isinstance(result, ColumnBatch):
        return result
    return ColumnBatch.from_mapping(result)


def _index_of(schema, name: str) -> int:
    try:
        return schema.index_of(name)
    except UnknownAttributeError as exc:
        raise QueryEvaluationError(str(exc)) from exc


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


def execute_columnar(executor: "PlanExecutor", plan: PlanNode) -> ColumnBatch:
    """Columnar evaluation of one plan node (children via the executor memo)."""
    if isinstance(plan, ScanOp):
        return _scan(executor, plan)
    if isinstance(plan, FilterOp):
        return _filter(executor, plan)
    if isinstance(plan, ProjectOp):
        return _project(executor, plan)
    if isinstance(plan, JoinOp):
        return _hash_join(executor, plan)
    if isinstance(plan, SemiJoinOp):
        return _semi_join(executor, plan)
    raise QueryEvaluationError(
        f"plan node {type(plan).__name__} has no columnar lowering"
    )  # pragma: no cover - dispatch is gated on the same isinstance checks


def _scan(executor: "PlanExecutor", plan: ScanOp) -> ColumnBatch:
    relation = executor.instance.relation(plan.relation)
    rows = list(dict.fromkeys(values for _, values in relation.tuples()))
    return ColumnBatch.from_rows(relation.schema.arity, rows)


# A conjunct applier maps (batch, selected row positions | None, params) to
# the surviving row positions; ``None`` means "all rows" and lets the first
# conjunct skip building an index list.
_ConjunctFn = Callable[[ColumnBatch, "list[int] | None", Any], "list[int]"]


def _compile_conjunct(conjunct, schema) -> _ConjunctFn:
    if isinstance(conjunct, Comparison):
        left, right = conjunct.left, conjunct.right
        op = COMPARISON_OPS[conjunct.op]
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            index = _index_of(schema, left.name)
            value = right.value

            def column_literal(batch, selected, params):
                if value is None:
                    return []
                column = batch.column(index)
                positions = range(len(column)) if selected is None else selected
                return [
                    s for s in positions if column[s] is not None and op(column[s], value)
                ]

            return column_literal
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            index = _index_of(schema, right.name)
            value = left.value

            def literal_column(batch, selected, params):
                if value is None:
                    return []
                column = batch.column(index)
                positions = range(len(column)) if selected is None else selected
                return [
                    s for s in positions if column[s] is not None and op(value, column[s])
                ]

            return literal_column
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            left_index = _index_of(schema, left.name)
            right_index = _index_of(schema, right.name)

            def column_column(batch, selected, params):
                a = batch.column(left_index)
                b = batch.column(right_index)
                positions = range(len(a)) if selected is None else selected
                return [
                    s
                    for s in positions
                    if a[s] is not None and b[s] is not None and op(a[s], b[s])
                ]

            return column_column
    keep = compile_predicate(conjunct, schema)

    def generic(batch, selected, params):
        rows = batch.rows()
        positions = range(len(rows)) if selected is None else selected
        return [s for s in positions if keep(rows[s], params)]

    return generic


def _filter(executor: "PlanExecutor", plan: FilterOp) -> ColumnBatch:
    batch = _child_batch(executor, plan.child)
    if _predicate_can_raise(plan.predicate, plan.schema):
        # Row-at-a-time with the dict path's exact closure: which row raises
        # first (and therefore which error the caller sees) must not change.
        keep = compile_predicate(plan.predicate, plan.schema)
        params = executor.params
        rows = [row for row in batch.rows() if keep(row, params)]
        if len(rows) == len(batch):
            return batch
        return ColumnBatch.from_rows(batch.width, rows)
    # Compile every conjunct before applying any: the dict path compiles the
    # whole predicate up front, so e.g. unknown attributes raise even when
    # the input is empty or an earlier conjunct filters everything out.
    appliers = [_compile_conjunct(c, plan.schema) for c in plan.predicate.conjuncts()]
    selected: "list[int] | None" = None
    params = executor.params
    for apply_conjunct in appliers:
        selected = apply_conjunct(batch, selected, params)
        if not selected:
            break
    if selected is None or len(selected) == len(batch):
        return batch
    rows = batch.rows()
    return ColumnBatch.from_rows(batch.width, [rows[s] for s in selected])


def _project(executor: "PlanExecutor", plan: ProjectOp) -> ColumnBatch:
    batch = _child_batch(executor, plan.child)
    extract = key_function(plan.indexes)
    rows = list(dict.fromkeys(map(extract, batch.rows())))
    return ColumnBatch.from_rows(len(plan.indexes), rows)


def _build_table(
    executor: "PlanExecutor", plan: PlanNode, key: tuple[int, ...]
) -> "dict[tuple, list[Values]]":
    """Build-side hash table: key tuple → distinct rows in first-seen order."""
    if executor.use_index and isinstance(plan, ScanOp):
        if executor.analyzer is not None:
            executor.analyzer.note(from_index=True)
        index = executor.instance.relation(plan.relation).hash_index(key)
        return {
            key_values: list(dict.fromkeys(values for _, values in entries))
            for key_values, entries in index.items()
        }
    extract = key_function(key)
    table: dict[tuple, list[Values]] = {}
    for row in _child_batch(executor, plan).rows():
        table.setdefault(extract(row), []).append(row)
    return table


def _hash_join(executor: "PlanExecutor", plan: JoinOp) -> ColumnBatch:
    build_left = plan.build_left
    if build_left:
        build_plan, build_key = plan.left, plan.left_key
        probe_plan, probe_key = plan.right, plan.right_key
    else:
        build_plan, build_key = plan.right, plan.right_key
        probe_plan, probe_key = plan.left, plan.left_key
    table = _build_table(executor, build_plan, build_key)
    probe = _child_batch(executor, probe_plan)
    extract = key_function(probe_key)
    residual = [compile_predicate(p, plan.schema) for p in plan.residual]
    params = executor.params
    keep_right = plan.keep_right
    out: list[Values] = []
    for probe_row in probe.rows():
        matches = table.get(extract(probe_row))
        if not matches:
            continue
        for build_row in matches:
            if build_left:
                left_row, right_row = build_row, probe_row
            else:
                left_row, right_row = probe_row, build_row
            if keep_right is None:
                combined = left_row + right_row
            else:
                combined = left_row + tuple(right_row[i] for i in keep_right)
            if residual and not all(p(combined, params) for p in residual):
                continue
            out.append(combined)
    if keep_right is not None:
        # Dropping shared columns can fold distinct input pairs onto one
        # output row; full concatenation (keep_right None) never can.
        out = list(dict.fromkeys(out))
    return ColumnBatch.from_rows(plan.schema.arity, out)


def _semi_join(executor: "PlanExecutor", plan: SemiJoinOp) -> ColumnBatch:
    left = _child_batch(executor, plan.left)
    if executor.use_index and isinstance(plan.right, ScanOp):
        if executor.analyzer is not None:
            executor.analyzer.note(from_index=True)
        keys = executor.instance.relation(plan.right.relation).hash_index(plan.right_key)
    else:
        extract_right = key_function(plan.right_key)
        keys = {extract_right(row) for row in _child_batch(executor, plan.right).rows()}
    extract = key_function(plan.left_key)
    rows = [row for row in left.rows() if extract(row) in keys]
    if len(rows) == len(left):
        return left
    return ColumnBatch.from_rows(left.width, rows)
