"""Plan optimization: pushdown, join reordering, semijoins, build sides.

The optimizer has two stages:

1. **AST rewrites** reuse :mod:`repro.ra.rewrite` — the selection-pushdown
   pass built for Optσ is exactly the rewrite a general engine wants, so
   :func:`optimize_expression` applies it to every subtree where it is safe
   (predicates that can raise act as barriers, see below).
2. **Plan rewrites** work on the compiled plan and use statistics from the
   bound instance (:class:`~repro.engine.stats.StatsCatalog`):

   * :func:`reorder_joins` flattens maximal regions of commutative equi-joins
     and cross products and greedily rebuilds them left-deep in increasing
     estimated-cardinality order, restoring the original column order with a
     final permutation projection;
   * :func:`apply_semijoin_reduction` filters the larger input of a
     foreign-key join by a semijoin against the other side when the
     estimate says enough rows die;
   * :func:`choose_build_sides` builds each hash join's table on the input
     with the smaller estimated cardinality.

   All estimates flow through one memoized :class:`CardinalityEstimator`
   per pass, so optimization time stays linear in plan size.

Both stages are semantics-preserving for every annotation domain, but only
stage 1 is *structure*-preserving for order-sensitive annotations: flipping
a hash join's build side (or reordering joins) changes how Boolean
provenance is folded.  Sessions therefore apply stage 1 to every domain,
stage 2 only to order-insensitive ones, and exact mode (which reproduces
the historical output bit-for-bit) skips both.  Which stage-2 passes run is
controlled by :class:`OptimizerConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.engine.logical import (
    AggregateOp,
    CrossOp,
    DifferenceOp,
    FilterOp,
    IntersectOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SemiJoinOp,
    UnionOp,
)
from repro.engine.stats import PlanStats, StatsCatalog
from repro.catalog.types import DataType, comparable, is_numeric
from repro.ra.ast import RAExpression, Selection
from repro.ra.predicates import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    TruePredicate,
)
from repro.ra.rewrite import push_selections_down

#: Selectivity fallbacks for predicates the statistics cannot see through
#: (System-R style constants).
_EQUALITY_SELECTIVITY = 0.15
_ORDERED_SELECTIVITY = 0.3
_DEFAULT_SELECTIVITY = 0.4
_MIN_SELECTIVITY = 0.001


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of the cost-based pipeline; the default turns everything on.

    ``semijoin_factor`` is the largest estimated surviving fraction for
    which a foreign-key join input is still worth semijoin-reducing — a
    semijoin that keeps nearly every row just adds a pass.
    """

    pushdown: bool = True
    reorder_joins: bool = True
    semijoin_reduction: bool = True
    choose_build_sides: bool = True
    columnar: bool = True
    semijoin_factor: float = 0.5


DEFAULT_OPTIMIZER_CONFIG = OptimizerConfig()

#: What the optimizer did before the cost-based passes existed: selection
#: pushdown plus the build-side flip, row-at-a-time execution.  Kept as the
#: baseline configuration the benchmarks compare against.
LEGACY_OPTIMIZER_CONFIG = OptimizerConfig(
    reorder_joins=False, semijoin_reduction=False, columnar=False
)


def _scalar_dtype(scalar, schema) -> DataType | None:
    """Static type of a scalar against ``schema``; ``None`` when unknown."""
    if isinstance(scalar, ColumnRef):
        if schema.has_attribute(scalar.name):
            return schema.attribute(scalar.name).dtype
        return None
    if isinstance(scalar, Literal):
        value = scalar.value
        if isinstance(value, bool):
            return DataType.BOOL
        if isinstance(value, (int, float)):
            return DataType.FLOAT
        if isinstance(value, str):
            return DataType.STRING
        return None
    if isinstance(scalar, Arithmetic):
        left = _scalar_dtype(scalar.left, schema)
        right = _scalar_dtype(scalar.right, schema)
        if left is not None and right is not None and is_numeric(left) and is_numeric(right):
            return DataType.FLOAT
        return None
    return None  # parameters and unknown scalar types


def _scalar_can_raise(scalar, schema) -> bool:
    if isinstance(scalar, Param):
        # An unbound parameter raises only when the predicate is evaluated,
        # so its selection must keep seeing exactly the original rows.
        return True
    if isinstance(scalar, Arithmetic):
        if scalar.op == "/":
            return True  # division by zero
        if _scalar_can_raise(scalar.left, schema) or _scalar_can_raise(scalar.right, schema):
            return True
        # Non-numeric operands make +,-,* raise TypeError when evaluated.
        return _scalar_dtype(scalar, schema) is None
    return False


def _predicate_can_raise(predicate: Predicate, schema) -> bool:
    """True when evaluating the predicate may abort on some rows.

    Division and ill-typed expressions (a string column ordered against a
    number — typical of malformed student queries) raise only on the rows
    they are evaluated over; pushing such a predicate below a join would
    evaluate it on rows the join eliminates, turning a query the historical
    interpreter answered into an error.
    """
    if isinstance(predicate, Comparison):
        if _scalar_can_raise(predicate.left, schema) or _scalar_can_raise(predicate.right, schema):
            return True
        if predicate.op in _ORDERED_OPS:
            left = _scalar_dtype(predicate.left, schema)
            right = _scalar_dtype(predicate.right, schema)
            return left is None or right is None or not comparable(left, right)
        return False  # = and != never raise between mismatched Python types
    operands = getattr(predicate, "operands", None)
    if operands is not None:
        return any(_predicate_can_raise(p, schema) for p in operands)
    operand = getattr(predicate, "operand", None)
    if operand is not None:
        return _predicate_can_raise(operand, schema)
    return False


_ORDERED_OPS = frozenset({"<", "<=", ">", ">="})


def optimize_expression(expression: RAExpression, db: DatabaseSchema) -> RAExpression:
    """AST-level rewrites: push selections down wherever that is safe.

    A selection whose predicate can raise must see exactly the rows the
    unoptimized plan feeds it, so the subtree rooted at such a selection is
    left untouched — but every sibling branch (the other side of a union,
    say) still optimizes, and nothing is ever moved into or out of the
    frozen subtree.
    """
    flags: dict[int, bool] = {}

    def has_raising(node: RAExpression) -> bool:
        cached = flags.get(id(node))
        if cached is None:
            cached = (
                isinstance(node, Selection)
                and _predicate_can_raise(node.predicate, node.child.output_schema(db))
            ) or any(has_raising(child) for child in node.children())
            flags[id(node)] = cached
        return cached

    def rewrite(node: RAExpression) -> RAExpression:
        if not has_raising(node):
            return push_selections_down(node, db)
        return node.with_children(tuple(rewrite(child) for child in node.children()))

    return rewrite(expression)


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------


def _clamped(rows: float, ndv: tuple[float | None, ...]) -> PlanStats:
    rows = max(rows, 0.0)
    return PlanStats(rows, tuple(None if n is None else min(n, max(rows, 1.0)) for n in ndv))


def _distinct_bound(rows: float, ndv: tuple[float | None, ...]) -> float:
    """Upper bound on distinct tuples over the columns in ``ndv``."""
    bound = 1.0
    for n in ndv:
        if n is None:
            return rows
        bound *= max(n, 1.0)
        if bound >= rows:
            return rows
    return min(bound, rows)


class CardinalityEstimator:
    """Memoized, statistics-backed cardinality estimation over one instance.

    One estimator is shared across a whole optimization pass, so every
    distinct plan node is costed exactly once (plan nodes compare
    structurally, so repeated subtrees share one memo entry).  The previous
    free function re-walked the entire subtree at every join node, which
    made optimization quadratic-to-exponential on deep join chains.

    The dispatch in :meth:`_compute` is exhaustive: an unknown node type
    raises :class:`TypeError` instead of silently defaulting, so a new
    operator cannot be mis-costed without a signal.
    """

    def __init__(self, instance: DatabaseInstance, stats: StatsCatalog | None = None) -> None:
        self.instance = instance
        self.stats = stats if stats is not None else StatsCatalog(instance)
        self._memo: dict[PlanNode, PlanStats] = {}

    def estimate(self, plan: PlanNode) -> float:
        """Estimated output cardinality of ``plan``."""
        return self.plan_stats(plan).rows

    def plan_stats(self, plan: PlanNode) -> PlanStats:
        """Estimated rows and per-column distinct counts of ``plan``."""
        cached = self._memo.get(plan)
        if cached is None:
            cached = self._compute(plan)
            self._memo[plan] = cached
        return cached

    # -- dispatch ------------------------------------------------------------

    def _compute(self, plan: PlanNode) -> PlanStats:
        if isinstance(plan, ScanOp):
            return self.stats.scan_stats(plan.relation)
        if isinstance(plan, FilterOp):
            child = self.plan_stats(plan.child)
            selectivity = self._predicate_selectivity(plan.predicate, plan.schema, child)
            return _clamped(child.rows * selectivity, child.ndv)
        if isinstance(plan, ProjectOp):
            child = self.plan_stats(plan.child)
            ndv = tuple(child.ndv[i] for i in plan.indexes)
            return _clamped(_distinct_bound(child.rows, ndv), ndv)
        if isinstance(plan, JoinOp):
            return self._join_stats(plan)
        if isinstance(plan, SemiJoinOp):
            left = self.plan_stats(plan.left)
            right = self.plan_stats(plan.right)
            fraction = _semijoin_fraction(left, right, plan.left_key, plan.right_key)
            return _clamped(left.rows * fraction, left.ndv)
        if isinstance(plan, CrossOp):
            left = self.plan_stats(plan.left)
            right = self.plan_stats(plan.right)
            ndv = left.ndv + right.ndv
            rows = left.rows * right.rows
            combined = PlanStats(rows, ndv)
            for predicate in plan.residual:
                rows *= self._predicate_selectivity(predicate, plan.schema, combined)
            return _clamped(rows, ndv)
        if isinstance(plan, UnionOp):
            left = self.plan_stats(plan.left)
            right = self.plan_stats(plan.right)
            rows = left.rows + right.rows
            ndv = tuple(
                None if a is None or b is None else a + b
                for a, b in zip(left.ndv, right.ndv)
            )
            return _clamped(rows, ndv)
        if isinstance(plan, DifferenceOp):
            # Upper bound: the right side removes an unknown number of rows.
            return self.plan_stats(plan.left)
        if isinstance(plan, IntersectOp):
            left = self.plan_stats(plan.left)
            right = self.plan_stats(plan.right)
            return _clamped(min(left.rows, right.rows), left.ndv)
        if isinstance(plan, AggregateOp):
            child = self.plan_stats(plan.child)
            group_ndv = tuple(child.ndv[i] for i in plan.group_indexes)
            if not plan.group_indexes:
                rows = min(child.rows, 1.0)
            elif all(n is not None for n in group_ndv):
                rows = _distinct_bound(child.rows, group_ndv)
            else:
                rows = max(child.rows * 0.25, 1.0)
            ndv = group_ndv + (None,) * len(plan.aggregates)
            return _clamped(rows, ndv)
        raise TypeError(
            f"no cardinality estimate for plan node {type(plan).__name__}; "
            "add a dispatch entry to CardinalityEstimator._compute"
        )

    # -- operators -----------------------------------------------------------

    def _join_stats(self, plan: JoinOp) -> PlanStats:
        left = self.plan_stats(plan.left)
        right = self.plan_stats(plan.right)
        selectivity = 1.0
        known = True
        for a, b in zip(plan.left_key, plan.right_key):
            candidates = [n for n in (left.ndv[a], right.ndv[b]) if n is not None]
            if not candidates:
                known = False
                break
            selectivity /= max(max(candidates), 1.0)
        if known:
            rows = left.rows * right.rows * selectivity
        else:
            # Stats-free fallback: FK-style equi-joins return about as many
            # rows as the larger input.
            rows = max(left.rows, right.rows)
        if plan.keep_right is None:
            ndv = left.ndv + right.ndv
        else:
            ndv = left.ndv + tuple(right.ndv[i] for i in plan.keep_right)
        combined = PlanStats(rows, ndv)
        for predicate in plan.residual:
            rows *= self._predicate_selectivity(predicate, plan.schema, combined)
        return _clamped(rows, ndv)

    # -- selectivity ---------------------------------------------------------

    def _predicate_selectivity(
        self, predicate: Predicate, schema: RelationSchema, stats: PlanStats
    ) -> float:
        selectivity = 1.0
        for conjunct in predicate.conjuncts():
            selectivity *= self._conjunct_selectivity(conjunct, schema, stats)
        return min(max(selectivity, _MIN_SELECTIVITY), 1.0)

    def _conjunct_selectivity(
        self, conjunct: Predicate, schema: RelationSchema, stats: PlanStats
    ) -> float:
        if isinstance(conjunct, TruePredicate):
            return 1.0
        if isinstance(conjunct, Comparison):
            if conjunct.op in ("=", "!="):
                equality = self._equality_selectivity(conjunct, schema, stats)
                if conjunct.op == "=":
                    return equality
                return min(max(1.0 - equality, _MIN_SELECTIVITY), 1.0)
            return _ORDERED_SELECTIVITY
        if isinstance(conjunct, And):
            return self._predicate_selectivity(conjunct, schema, stats)
        if isinstance(conjunct, Or):
            miss = 1.0
            for operand in conjunct.operands:
                miss *= 1.0 - self._conjunct_selectivity(operand, schema, stats)
            return min(max(1.0 - miss, _MIN_SELECTIVITY), 1.0)
        if isinstance(conjunct, Not):
            inner = self._conjunct_selectivity(conjunct.operand, schema, stats)
            return min(max(1.0 - inner, _MIN_SELECTIVITY), 1.0)
        return _DEFAULT_SELECTIVITY

    def _equality_selectivity(
        self, comparison: Comparison, schema: RelationSchema, stats: PlanStats
    ) -> float:
        candidates = [
            n
            for scalar in (comparison.left, comparison.right)
            for n in (self._column_ndv(scalar, schema, stats),)
            if n
        ]
        if candidates:
            return 1.0 / max(max(candidates), 1.0)
        return _EQUALITY_SELECTIVITY

    @staticmethod
    def _column_ndv(scalar, schema: RelationSchema, stats: PlanStats) -> float | None:
        if isinstance(scalar, ColumnRef) and schema.has_attribute(scalar.name):
            index = schema.index_of(scalar.name)
            if index < len(stats.ndv):
                return stats.ndv[index]
        return None


def _semijoin_fraction(
    left: PlanStats,
    right: PlanStats,
    left_key: tuple[int, ...],
    right_key: tuple[int, ...],
) -> float:
    """Estimated fraction of left rows surviving a semijoin against right."""
    fraction = 1.0
    known = False
    for a, b in zip(left_key, right_key):
        ndv_l = left.ndv[a]
        ndv_r = right.ndv[b]
        if ndv_l is not None and ndv_r is not None and ndv_l > 0:
            known = True
            fraction *= min(1.0, ndv_r / ndv_l)
    return fraction if known else 0.5


def estimate_rows(
    plan: PlanNode, instance: DatabaseInstance, estimator: CardinalityEstimator | None = None
) -> float:
    """Estimated output cardinality of a plan over ``instance``.

    Thin wrapper over :class:`CardinalityEstimator`; pass an estimator to
    share its memo across calls.  Raises :class:`TypeError` on plan node
    types without an estimation rule.
    """
    if estimator is None:
        estimator = CardinalityEstimator(instance)
    return estimator.estimate(plan)


# ---------------------------------------------------------------------------
# Build-side choice
# ---------------------------------------------------------------------------


def choose_build_sides(
    plan: PlanNode, instance: DatabaseInstance, estimator: CardinalityEstimator | None = None
) -> PlanNode:
    """Rebuild the plan with each hash join building on its smaller input."""
    if estimator is None:
        estimator = CardinalityEstimator(instance)
    return _choose_build_sides(plan, estimator)


def _choose_build_sides(plan: PlanNode, estimator: CardinalityEstimator) -> PlanNode:
    if isinstance(plan, JoinOp):
        left = _choose_build_sides(plan.left, estimator)
        right = _choose_build_sides(plan.right, estimator)
        build_left = estimator.estimate(left) < estimator.estimate(right)
        return replace(plan, left=left, right=right, build_left=build_left)
    if isinstance(plan, (FilterOp, ProjectOp, AggregateOp)):
        return replace(plan, child=_choose_build_sides(plan.child, estimator))
    if isinstance(plan, (SemiJoinOp, CrossOp, UnionOp, DifferenceOp, IntersectOp)):
        return replace(
            plan,
            left=_choose_build_sides(plan.left, estimator),
            right=_choose_build_sides(plan.right, estimator),
        )
    return plan


# ---------------------------------------------------------------------------
# Join reordering
# ---------------------------------------------------------------------------


@dataclass
class _RegionLeaf:
    """One non-flattenable input of a join region, with its statistics."""

    plan: PlanNode
    offset: int  # position of its first column in the region's output
    width: int
    rows: float
    ndv: tuple[float | None, ...]


def _flattenable(plan: PlanNode) -> bool:
    """True for joins that may be commuted/reassociated with their neighbours.

    Natural joins drop columns (``keep_right``), so they keep their shape and
    act as region leaves; a residual predicate that can raise must see
    exactly its historical rows, so it pins its join in place too.
    """
    if isinstance(plan, JoinOp):
        if plan.keep_right is not None:
            return False
    elif not isinstance(plan, CrossOp):
        return False
    return not any(_predicate_can_raise(p, plan.schema) for p in plan.residual)


def reorder_joins(
    plan: PlanNode, instance: DatabaseInstance, estimator: CardinalityEstimator | None = None
) -> PlanNode:
    """Reorder commutative-associative equi-join regions by estimated cost.

    Each maximal region of theta joins and cross products is flattened into
    leaves, equality edges and residual predicates, greedily rebuilt as a
    left-deep tree — starting from the connected pair with the smallest
    estimated joint cardinality, always extending with the connected leaf
    minimizing the running estimate (cross products only as a last resort),
    attaching every residual at the first join where its columns exist — and
    finished with a permutation projection restoring the original column
    order.  Semantics-preserving for order-insensitive domains only.
    """
    if estimator is None:
        estimator = CardinalityEstimator(instance)
    return _reorder(plan, estimator)


def _reorder(plan: PlanNode, estimator: CardinalityEstimator) -> PlanNode:
    if _flattenable(plan):
        return _reorder_region(plan, estimator)
    if isinstance(plan, (FilterOp, ProjectOp, AggregateOp)):
        return replace(plan, child=_reorder(plan.child, estimator))
    if isinstance(plan, (JoinOp, CrossOp, SemiJoinOp, UnionOp, DifferenceOp, IntersectOp)):
        return replace(
            plan,
            left=_reorder(plan.left, estimator),
            right=_reorder(plan.right, estimator),
        )
    return plan


def _reorder_region(root: PlanNode, estimator: CardinalityEstimator) -> PlanNode:
    leaves: list[_RegionLeaf] = []
    edges: list[tuple[int, int]] = []  # equi-join pairs as global column ids
    residuals: list[Predicate] = []
    residual_cols: list[set[int]] = []  # global columns each residual reads
    attrs = root.schema.attributes

    def flatten(node: PlanNode, offset: int) -> int:
        if _flattenable(node):
            left_width = flatten(node.left, offset)
            right_width = flatten(node.right, offset + left_width)
            if isinstance(node, JoinOp):
                for a, b in zip(node.left_key, node.right_key):
                    edges.append((offset + a, offset + left_width + b))
            for predicate in node.residual:
                # Resolve names against the schema the residual was compiled
                # for, then rewrite them to the region root's names for the
                # same positions: compiled-away Renames mean inner schemas
                # can use different names for the very same columns.
                mapping: dict[str, str] = {}
                cols: set[int] = set()
                for name in predicate.referenced_columns():
                    column = offset + node.schema.index_of(name)
                    mapping[name] = attrs[column].name
                    cols.add(column)
                residuals.append(_rename_predicate_columns(predicate, mapping))
                residual_cols.append(cols)
            return left_width + right_width
        leaf_plan = _reorder(node, estimator)
        stats = estimator.plan_stats(leaf_plan)
        leaves.append(
            _RegionLeaf(leaf_plan, offset, stats.width, max(stats.rows, 1e-3), stats.ndv)
        )
        return stats.width

    total = flatten(root, 0)
    if total != root.schema.arity or len(leaves) < 3:
        # Nothing to reorder (or the width bookkeeping disagrees with the
        # compiled schema — bail out to the safe original shape).
        return _reorder_intact(root, estimator)

    col_leaf: dict[int, int] = {}
    col_ndv: dict[int, float | None] = {}
    for index, leaf in enumerate(leaves):
        for c in range(leaf.width):
            col_leaf[leaf.offset + c] = index
            col_ndv[leaf.offset + c] = leaf.ndv[c]

    def edge_selectivity(edge: tuple[int, int]) -> float:
        a, b = edge
        candidates = [n for n in (col_ndv[a], col_ndv[b]) if n]
        if candidates:
            return 1.0 / max(max(candidates), 1.0)
        return 1.0 / max(leaves[col_leaf[a]].rows, leaves[col_leaf[b]].rows, 1.0)

    by_pair: dict[tuple[int, int], list[int]] = {}
    for edge_id, (a, b) in enumerate(edges):
        i, j = col_leaf[a], col_leaf[b]
        if i > j:
            i, j = j, i
        by_pair.setdefault((i, j), []).append(edge_id)

    # -- greedy ordering ----------------------------------------------------
    order: list[int]
    if by_pair:
        best: tuple[float, int, int] | None = None
        for (i, j), edge_ids in sorted(by_pair.items()):
            joint = leaves[i].rows * leaves[j].rows
            for edge_id in edge_ids:
                joint *= edge_selectivity(edges[edge_id])
            if best is None or joint < best[0]:
                best = (joint, i, j)
        current_rows, i, j = best
        order = [i, j]
    else:
        start = min(range(len(leaves)), key=lambda k: (leaves[k].rows, k))
        order = [start]
        current_rows = leaves[start].rows
    placed = set(order)
    while len(order) < len(leaves):
        best_choice: tuple[float, int] | None = None
        for k in range(len(leaves)):
            if k in placed:
                continue
            candidate = current_rows * leaves[k].rows
            connected = False
            for a, b in edges:
                i, j = col_leaf[a], col_leaf[b]
                if (i == k and j in placed) or (j == k and i in placed):
                    connected = True
                    candidate *= edge_selectivity((a, b))
            if not connected:
                continue
            if best_choice is None or candidate < best_choice[0]:
                best_choice = (candidate, k)
        if best_choice is None:  # no connected leaf left: cheapest cross product
            k = min(
                (k for k in range(len(leaves)) if k not in placed),
                key=lambda k: (leaves[k].rows, k),
            )
            best_choice = (current_rows * leaves[k].rows, k)
        current_rows, k = best_choice
        order.append(k)
        placed.add(k)

    # -- rebuild left-deep ---------------------------------------------------
    first = leaves[order[0]]
    current = first.plan
    placed_cols = [first.offset + c for c in range(first.width)]
    placed_set = set(placed_cols)
    position = {g: p for p, g in enumerate(placed_cols)}
    used_edges: set[int] = set()
    attached: set[int] = set()
    for leaf_index in order[1:]:
        leaf = leaves[leaf_index]
        leaf_cols = [leaf.offset + c for c in range(leaf.width)]
        left_key: list[int] = []
        right_key: list[int] = []
        for edge_id, (a, b) in enumerate(edges):
            if edge_id in used_edges:
                continue
            if col_leaf[a] == leaf_index and b in placed_set:
                left_key.append(position[b])
                right_key.append(a - leaf.offset)
                used_edges.add(edge_id)
            elif col_leaf[b] == leaf_index and a in placed_set:
                left_key.append(position[a])
                right_key.append(b - leaf.offset)
                used_edges.add(edge_id)
        new_cols = placed_cols + leaf_cols
        new_set = placed_set | set(leaf_cols)
        step_residuals = tuple(
            residuals[r]
            for r in range(len(residuals))
            if r not in attached and residual_cols[r] <= new_set
        )
        attached.update(
            r
            for r in range(len(residuals))
            if r not in attached and residual_cols[r] <= new_set
        )
        schema = RelationSchema(root.schema.name, tuple(attrs[g] for g in new_cols))
        if left_key:
            current = JoinOp(
                current,
                leaf.plan,
                tuple(left_key),
                tuple(right_key),
                step_residuals,
                schema,
            )
        else:
            current = CrossOp(current, leaf.plan, step_residuals, schema)
        placed_cols = new_cols
        placed_set = new_set
        position = {g: p for p, g in enumerate(placed_cols)}
    if placed_cols != list(range(total)):
        # Bijective column permutation: restores the compiled output order
        # without ever folding rows.
        current = ProjectOp(current, tuple(position[g] for g in range(total)))
    return current


def _rename_scalar_columns(scalar, mapping: dict[str, str]):
    if isinstance(scalar, ColumnRef):
        renamed = mapping.get(scalar.name)
        if renamed is not None and renamed != scalar.name:
            return ColumnRef(renamed)
        return scalar
    if isinstance(scalar, Arithmetic):
        return Arithmetic(
            scalar.op,
            _rename_scalar_columns(scalar.left, mapping),
            _rename_scalar_columns(scalar.right, mapping),
        )
    return scalar


def _rename_predicate_columns(predicate: Predicate, mapping: dict[str, str]) -> Predicate:
    """Rewrite column references to the equivalent names of another schema."""
    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.op,
            _rename_scalar_columns(predicate.left, mapping),
            _rename_scalar_columns(predicate.right, mapping),
        )
    if isinstance(predicate, And):
        return And(tuple(_rename_predicate_columns(p, mapping) for p in predicate.operands))
    if isinstance(predicate, Or):
        return Or(tuple(_rename_predicate_columns(p, mapping) for p in predicate.operands))
    if isinstance(predicate, Not):
        return Not(_rename_predicate_columns(predicate.operand, mapping))
    return predicate


def _reorder_intact(plan: PlanNode, estimator: CardinalityEstimator) -> PlanNode:
    """Recurse into a region's children without reshaping the region itself."""
    return replace(
        plan,
        left=_reorder(plan.left, estimator),
        right=_reorder(plan.right, estimator),
    )


# ---------------------------------------------------------------------------
# Semijoin reduction
# ---------------------------------------------------------------------------


def apply_semijoin_reduction(
    plan: PlanNode,
    instance: DatabaseInstance,
    estimator: CardinalityEstimator | None = None,
    *,
    factor: float = 0.5,
) -> PlanNode:
    """Semijoin-reduce the larger input of foreign-key equi-joins.

    A join whose key columns trace back (through filters, projections and
    joins) to the child/parent columns of a declared
    :class:`~repro.catalog.constraints.ForeignKeyConstraint` is an FK join;
    its larger input is filtered by a semijoin against the other side before
    the join proper.  The reduction is applied only when the estimated
    surviving fraction is at most ``factor``, and never to a bare scan —
    wrapping one would destroy the cached hash-index build path, which is
    cheaper than any semijoin.  The semijoin's filter side is the join's
    other input *verbatim*, so the executor memo computes it once and the
    semijoin costs one extra key-set pass, not a re-evaluation.
    """
    if estimator is None:
        estimator = CardinalityEstimator(instance)
    fk_pairs = _foreign_key_pairs(instance.schema)
    if not fk_pairs:
        return plan
    origins: dict[PlanNode, tuple] = {}
    return _reduce(plan, estimator, fk_pairs, origins, factor)


def _foreign_key_pairs(db: DatabaseSchema) -> list[frozenset]:
    """Each FK as a frozenset of ((child_rel, col), (parent_rel, col)) pairs."""
    pairs = []
    for fk in db.foreign_keys():
        child = db.relations[fk.child]
        parent = db.relations[fk.parent]
        pairs.append(
            frozenset(
                ((fk.child, child.index_of(ca)), (fk.parent, parent.index_of(pa)))
                for ca, pa in zip(fk.child_attributes, fk.parent_attributes)
            )
        )
    return pairs


def _column_origins(
    plan: PlanNode, estimator: CardinalityEstimator, memo: dict[PlanNode, tuple]
) -> tuple:
    """Per output column: the ``(relation, column)`` it copies, or ``None``."""
    cached = memo.get(plan)
    if cached is not None:
        return cached
    if isinstance(plan, ScanOp):
        arity = estimator.instance.relation(plan.relation).schema.arity
        origins = tuple((plan.relation, i) for i in range(arity))
    elif isinstance(plan, (FilterOp, SemiJoinOp)):
        child = plan.child if isinstance(plan, FilterOp) else plan.left
        origins = _column_origins(child, estimator, memo)
    elif isinstance(plan, ProjectOp):
        child = _column_origins(plan.child, estimator, memo)
        origins = tuple(child[i] for i in plan.indexes)
    elif isinstance(plan, JoinOp):
        left = _column_origins(plan.left, estimator, memo)
        right = _column_origins(plan.right, estimator, memo)
        if plan.keep_right is None:
            origins = left + right
        else:
            origins = left + tuple(right[i] for i in plan.keep_right)
    elif isinstance(plan, CrossOp):
        origins = _column_origins(plan.left, estimator, memo) + _column_origins(
            plan.right, estimator, memo
        )
    else:
        # Set operations merge rows from two origins and aggregates compute
        # fresh values; neither traces back to a single base column.
        origins = (None,) * estimator.plan_stats(plan).width
    memo[plan] = origins
    return origins


def _reduce(
    plan: PlanNode,
    estimator: CardinalityEstimator,
    fk_pairs: list[frozenset],
    origins: dict[PlanNode, tuple],
    factor: float,
) -> PlanNode:
    if isinstance(plan, (FilterOp, ProjectOp, AggregateOp)):
        return replace(plan, child=_reduce(plan.child, estimator, fk_pairs, origins, factor))
    if isinstance(plan, (CrossOp, SemiJoinOp, UnionOp, DifferenceOp, IntersectOp)):
        return replace(
            plan,
            left=_reduce(plan.left, estimator, fk_pairs, origins, factor),
            right=_reduce(plan.right, estimator, fk_pairs, origins, factor),
        )
    if not isinstance(plan, JoinOp):
        return plan
    left = _reduce(plan.left, estimator, fk_pairs, origins, factor)
    right = _reduce(plan.right, estimator, fk_pairs, origins, factor)
    node = replace(plan, left=left, right=right)
    left_origins = _column_origins(node.left, estimator, origins)
    right_origins = _column_origins(node.right, estimator, origins)
    key_pairs = set()
    for a, b in zip(node.left_key, node.right_key):
        if left_origins[a] is None or right_origins[b] is None:
            return node
        key_pairs.add((left_origins[a], right_origins[b]))
    swapped = {(b, a) for a, b in key_pairs}
    if not any(fk <= key_pairs or fk <= swapped for fk in fk_pairs):
        return node
    left_stats = estimator.plan_stats(node.left)
    right_stats = estimator.plan_stats(node.right)
    if left_stats.rows >= right_stats.rows:
        target, other = node.left, node.right
        target_key, other_key = node.left_key, node.right_key
        target_stats, other_stats = left_stats, right_stats
    else:
        target, other = node.right, node.left
        target_key, other_key = node.right_key, node.left_key
        target_stats, other_stats = right_stats, left_stats
    if isinstance(target, ScanOp):
        return node
    fraction = _semijoin_fraction(target_stats, other_stats, target_key, other_key)
    if fraction > factor:
        return node
    reduced = SemiJoinOp(target, other, target_key, other_key)
    if target is node.left:
        return replace(node, left=reduced)
    return replace(node, right=reduced)
