"""Plan optimization: selection pushdown and join-input ordering.

The optimizer has two stages:

1. **AST rewrites** reuse :mod:`repro.ra.rewrite` — the selection-pushdown
   pass built for Optσ is exactly the rewrite a general engine wants, so
   :func:`optimize_expression` simply applies it to the whole query before
   compilation.
2. **Plan rewrites** work on the compiled plan: each hash join builds its
   table on the input with the *smaller* estimated cardinality
   (:func:`choose_build_sides`), using base-relation sizes from the bound
   instance and textbook selectivity guesses for the operators above them.

Both stages are semantics-preserving for every annotation domain, but only
stage 1 is *structure*-preserving for order-sensitive annotations: flipping a
hash join's build side reorders how Boolean provenance is folded.  Sessions
therefore apply stage 1 to every domain, stage 2 only to order-insensitive
ones, and exact mode (which reproduces the historical output bit-for-bit)
skips both.
"""

from __future__ import annotations

from dataclasses import replace

from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import DatabaseSchema
from repro.engine.logical import (
    AggregateOp,
    CrossOp,
    DifferenceOp,
    FilterOp,
    IntersectOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    UnionOp,
)
from repro.catalog.types import DataType, comparable, is_numeric
from repro.ra.ast import RAExpression, Selection
from repro.ra.predicates import Arithmetic, ColumnRef, Comparison, Literal, Param, Predicate
from repro.ra.rewrite import push_selections_down

#: Selectivity guesses for filter predicates (System-R style constants).
_EQUALITY_SELECTIVITY = 0.15
_DEFAULT_SELECTIVITY = 0.4

_ORDERED_OPS = frozenset({"<", "<=", ">", ">="})


def _scalar_dtype(scalar, schema) -> DataType | None:
    """Static type of a scalar against ``schema``; ``None`` when unknown."""
    if isinstance(scalar, ColumnRef):
        if schema.has_attribute(scalar.name):
            return schema.attribute(scalar.name).dtype
        return None
    if isinstance(scalar, Literal):
        value = scalar.value
        if isinstance(value, bool):
            return DataType.BOOL
        if isinstance(value, (int, float)):
            return DataType.FLOAT
        if isinstance(value, str):
            return DataType.STRING
        return None
    if isinstance(scalar, Arithmetic):
        left = _scalar_dtype(scalar.left, schema)
        right = _scalar_dtype(scalar.right, schema)
        if left is not None and right is not None and is_numeric(left) and is_numeric(right):
            return DataType.FLOAT
        return None
    return None  # parameters and unknown scalar types


def _scalar_can_raise(scalar, schema) -> bool:
    if isinstance(scalar, Param):
        # An unbound parameter raises only when the predicate is evaluated,
        # so its selection must keep seeing exactly the original rows.
        return True
    if isinstance(scalar, Arithmetic):
        if scalar.op == "/":
            return True  # division by zero
        if _scalar_can_raise(scalar.left, schema) or _scalar_can_raise(scalar.right, schema):
            return True
        # Non-numeric operands make +,-,* raise TypeError when evaluated.
        return _scalar_dtype(scalar, schema) is None
    return False


def _predicate_can_raise(predicate: Predicate, schema) -> bool:
    """True when evaluating the predicate may abort on some rows.

    Division and ill-typed expressions (a string column ordered against a
    number — typical of malformed student queries) raise only on the rows
    they are evaluated over; pushing such a predicate below a join would
    evaluate it on rows the join eliminates, turning a query the historical
    interpreter answered into an error.
    """
    if isinstance(predicate, Comparison):
        if _scalar_can_raise(predicate.left, schema) or _scalar_can_raise(predicate.right, schema):
            return True
        if predicate.op in _ORDERED_OPS:
            left = _scalar_dtype(predicate.left, schema)
            right = _scalar_dtype(predicate.right, schema)
            return left is None or right is None or not comparable(left, right)
        return False  # = and != never raise between mismatched Python types
    operands = getattr(predicate, "operands", None)
    if operands is not None:
        return any(_predicate_can_raise(p, schema) for p in operands)
    operand = getattr(predicate, "operand", None)
    if operand is not None:
        return _predicate_can_raise(operand, schema)
    return False


def optimize_expression(expression: RAExpression, db: DatabaseSchema) -> RAExpression:
    """AST-level rewrites: push every selection as far down as possible.

    Skipped entirely when any selection predicate can raise on evaluation:
    moving such a predicate changes which rows it sees, and therefore
    whether it raises at all.
    """
    for node in expression.walk():
        if isinstance(node, Selection) and _predicate_can_raise(
            node.predicate, node.child.output_schema(db)
        ):
            return expression
    return push_selections_down(expression, db)


def _predicate_selectivity(predicate: Predicate) -> float:
    selectivity = 1.0
    for conjunct in predicate.conjuncts():
        if isinstance(conjunct, Comparison) and conjunct.op == "=":
            selectivity *= _EQUALITY_SELECTIVITY
        else:
            selectivity *= _DEFAULT_SELECTIVITY
    return max(selectivity, 0.001)


def estimate_rows(plan: PlanNode, instance: DatabaseInstance) -> float:
    """Estimated output cardinality of a plan over ``instance``."""
    if isinstance(plan, ScanOp):
        return float(len(instance.relation(plan.relation)))
    if isinstance(plan, FilterOp):
        return estimate_rows(plan.child, instance) * _predicate_selectivity(plan.predicate)
    if isinstance(plan, ProjectOp):
        return estimate_rows(plan.child, instance)
    if isinstance(plan, JoinOp):
        # FK-style equi-joins return about as many rows as the larger input.
        return max(estimate_rows(plan.left, instance), estimate_rows(plan.right, instance))
    if isinstance(plan, CrossOp):
        left = estimate_rows(plan.left, instance)
        right = estimate_rows(plan.right, instance)
        product = left * right
        if plan.residual:
            for predicate in plan.residual:
                product *= _predicate_selectivity(predicate)
        return product
    if isinstance(plan, UnionOp):
        return estimate_rows(plan.left, instance) + estimate_rows(plan.right, instance)
    if isinstance(plan, DifferenceOp):
        return estimate_rows(plan.left, instance)
    if isinstance(plan, IntersectOp):
        return min(estimate_rows(plan.left, instance), estimate_rows(plan.right, instance))
    if isinstance(plan, AggregateOp):
        return max(estimate_rows(plan.child, instance) * 0.25, 1.0)
    return 1.0


def choose_build_sides(plan: PlanNode, instance: DatabaseInstance) -> PlanNode:
    """Rebuild the plan with each hash join building on its smaller input."""
    if isinstance(plan, JoinOp):
        left = choose_build_sides(plan.left, instance)
        right = choose_build_sides(plan.right, instance)
        build_left = estimate_rows(left, instance) < estimate_rows(right, instance)
        return replace(plan, left=left, right=right, build_left=build_left)
    if isinstance(plan, (FilterOp, ProjectOp, AggregateOp)):
        return replace(plan, child=choose_build_sides(plan.child, instance))
    if isinstance(plan, (CrossOp, UnionOp, DifferenceOp, IntersectOp)):
        return replace(
            plan,
            left=choose_build_sides(plan.left, instance),
            right=choose_build_sides(plan.right, instance),
        )
    return plan
