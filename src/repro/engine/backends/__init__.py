"""Pluggable execution backends for set-semantics plan evaluation.

The engine's default backend runs compiled plans through the in-process
Python operators (:mod:`repro.engine.physical`).  This package adds
alternatives that execute the *same* optimized logical plans elsewhere —
today :class:`~repro.engine.backends.sqlite.SqliteBackend`, which compiles
plans to SQLite SQL and runs them on a cached ``:memory:`` database, the
way the original RATest ran its rewritten queries on SQL Server.

Backends are deliberately narrow: they only cover plain set-semantics
evaluation.  Provenance annotation (and anything else a backend cannot
express) falls back to the Python operators via
:class:`BackendUnsupportedError`, which
:class:`~repro.engine.session.EngineSession` treats as "run it in-process
instead" — never as a user-visible failure.
"""

from repro.engine.backends.sqlite import (
    BackendUnsupportedError,
    CompiledPlan,
    SqliteBackend,
    compile_plan_to_sql,
    connect_instance,
    load_instance,
    prepare_connection,
)

#: Names accepted by ``EngineSession``/``DatasetRegistry``/``GradingService``.
BACKEND_NAMES = ("python", "sqlite")

__all__ = [
    "BACKEND_NAMES",
    "BackendUnsupportedError",
    "CompiledPlan",
    "SqliteBackend",
    "compile_plan_to_sql",
    "connect_instance",
    "load_instance",
    "prepare_connection",
]
