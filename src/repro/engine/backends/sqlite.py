"""SQLite execution backend: optimized logical plans compiled to SQL.

The original RATest translated relational algebra into SQL CTEs and ran them
on SQL Server; this module does the same against SQLite — the one production
engine every Python install ships with.  A :class:`SqliteBackend` owns a
cached ``:memory:`` database per bound instance (reloaded whenever the
instance's ``data_version`` changes) and executes compiled
:class:`~repro.engine.logical.PlanNode` trees as a ``WITH`` chain, one CTE
per operator, returning exactly the annotated row dict the Python operators
would produce under the set domain.

Faithfulness to the in-process engine is the whole point, so the generated
SQL mirrors its semantics rather than idiomatic SQL (the scalar/predicate
rules live in :mod:`repro.sqltext`, shared with the AST-level writer in
:mod:`repro.parser.sql_writer`):

* set semantics via ``SELECT DISTINCT`` on scans and projections and plain
  ``UNION``/``EXCEPT``/``INTERSECT`` for the set operators;
* hoisted equi-join keys compare with ``IS`` (null-safe), because the hash
  join's dictionary lookup treats ``NULL`` as equal to ``NULL``;
* every CTE exposes positional columns ``c1..cN``, sidestepping quoting and
  duplicate-name questions for plan-internal columns (renames compile away
  in plans; callers re-attach the expression's output schema);
* parameters bind as ``:p_<name>``, and bindings whose runtime type would
  change a comparison's meaning (a string where a number is compared) are
  refused so the Python operators can raise their usual ``TypeError``.

Anything the dialect cannot express faithfully raises
:class:`~repro.sqltext.BackendUnsupportedError`; the session falls back to
the Python operators, so a backend gap is a performance event, never a
wrong answer.
"""

from __future__ import annotations

import math
import sqlite3
import threading
from dataclasses import dataclass
from typing import Any, Mapping

from repro.catalog.instance import DatabaseInstance, Values
from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.catalog.types import DataType
from repro.engine.logical import (
    AggregateOp,
    CrossOp,
    DifferenceOp,
    FilterOp,
    IntersectOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SemiJoinOp,
    UnionOp,
)
from repro.errors import QueryEvaluationError
from repro.ra.ast import AggregateFunction
from repro.ra.predicates import Param, Predicate
from repro.sqltext import (
    BackendUnsupportedError,
    comparable_in_sql,
    literal_type,
    quote_identifier,
    render_predicate,
    sql_literal,
)

ParamValues = Mapping[str, Any]


class _PythonDivision:
    """``repro_div`` UDF: Python true-division semantics inside SQLite.

    sqlite3 flattens every UDF exception into an opaque
    ``OperationalError("user-defined function raised exception")``, so the
    callable records the real exception for the backend to re-raise — a
    division by zero must surface as the engine's error, and anything else
    (say, a string-typed parameter value) as the same exception the Python
    operators would have raised.
    """

    def __init__(self) -> None:
        self.last_error: BaseException | None = None

    def __call__(self, a: Any, b: Any) -> Any:
        if a is None or b is None:
            return None
        try:
            return a / b
        except BaseException as exc:
            self.last_error = exc
            raise

    def take_error(self) -> BaseException | None:
        error, self.last_error = self.last_error, None
        return error


def prepare_connection(
    conn: sqlite3.Connection, *, division: _PythonDivision | None = None
) -> sqlite3.Connection:
    """Register the engine-compatibility functions on a connection.

    ``division`` lets a backend supply its own recorder instance so UDF
    failures can be re-raised as their real exceptions.
    """
    conn.create_function(
        "repro_div", 2, division or _PythonDivision(), deterministic=True
    )
    return conn


_SQL_TYPES = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STRING: "TEXT",
    DataType.BOOL: "INTEGER",
}


def create_table_sql(schema: RelationSchema) -> str:
    """``CREATE TABLE`` statement for one relation schema."""
    columns = ", ".join(
        f"{quote_identifier(attr.name)} {_SQL_TYPES[attr.dtype]}"
        for attr in schema.attributes
    )
    return f"CREATE TABLE {quote_identifier(schema.name)} ({columns})"


def load_instance(conn: sqlite3.Connection, instance: DatabaseInstance) -> None:
    """Create and populate one table per relation of ``instance``.

    Raises :class:`BackendUnsupportedError` when a value cannot be stored
    faithfully (integers beyond 64 bits; NaN, which sqlite3 would silently
    bind as ``NULL``).
    """

    def checked_rows(relation):
        for _, values in relation.tuples():
            for value in values:
                if isinstance(value, float) and math.isnan(value):
                    raise BackendUnsupportedError(
                        f"relation {relation.schema.name!r} contains NaN, "
                        "which SQLite stores as NULL"
                    )
            yield values

    for name, relation in instance.relations.items():
        conn.execute(create_table_sql(relation.schema))
        placeholders = ", ".join("?" * relation.schema.arity)
        insert = f"INSERT INTO {quote_identifier(name)} VALUES ({placeholders})"
        try:
            conn.executemany(insert, checked_rows(relation))
        except (OverflowError, sqlite3.Error) as exc:
            raise BackendUnsupportedError(
                f"cannot load relation {name!r} into SQLite: {exc}"
            ) from exc
    conn.commit()


def connect_instance(instance: DatabaseInstance) -> sqlite3.Connection:
    """A fresh prepared ``:memory:`` connection with ``instance`` loaded.

    Used by tests and tooling that execute SQL text directly (e.g. the
    round-trip tests for :mod:`repro.parser.sql_writer`); the backend itself
    keeps a cached connection keyed by the instance's data version.
    """
    conn = sqlite3.connect(":memory:", check_same_thread=False)
    prepare_connection(conn)
    load_instance(conn, instance)
    return conn


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledPlan:
    """A plan compiled to one executable statement.

    ``params`` are the query-parameter names the statement binds (as
    ``:p_<name>``); ``param_types`` records, per parameter, the column/
    literal types it is compared or combined with (bindings of an
    incompatible runtime type are refused at execution time); ``dtypes``
    are the positional output types, used to convert fetched rows back to
    engine values (``BOOL`` columns come back from SQLite as 0/1 integers).
    """

    sql: str
    params: tuple[str, ...]
    dtypes: tuple[DataType, ...]
    param_types: tuple[tuple[str, tuple[DataType, ...]], ...] = ()


_AGGREGATE_SQL = {
    AggregateFunction.COUNT: "COUNT",
    AggregateFunction.SUM: "SUM",
    AggregateFunction.AVG: "AVG",
    AggregateFunction.MIN: "MIN",
    AggregateFunction.MAX: "MAX",
}


class _PlanCompiler:
    """Single-use compiler turning one plan tree into a CTE chain."""

    def __init__(self, db: DatabaseSchema) -> None:
        self.db = db
        self.ctes: list[str] = []
        self.params: dict[str, None] = {}  # ordered set of parameter names
        self.param_types: dict[str, set[DataType]] = {}
        self._counter = 0

    # -- CTE plumbing ------------------------------------------------------

    def _add_cte(self, body: str, arity: int) -> str:
        self._counter += 1
        name = f"s{self._counter}"
        columns = ", ".join(f"c{i + 1}" for i in range(arity))
        self.ctes.append(f"{name}({columns}) AS (\n  {body}\n)")
        return name

    @staticmethod
    def _column_list(arity: int) -> str:
        return ", ".join(f"c{i + 1}" for i in range(arity))

    # -- scalar / predicate rendering --------------------------------------

    def _param_sql(self, param: Param) -> str:
        if not param.name.isidentifier():
            raise BackendUnsupportedError(
                f"parameter name {param.name!r} is not bindable in SQLite"
            )
        self.params[param.name] = None
        return f":p_{param.name}"

    def _expect(self, name: str, dtype: DataType) -> None:
        self.param_types.setdefault(name, set()).add(dtype)

    def _predicate(
        self, predicate: Predicate, schema: RelationSchema, positions: list[str]
    ) -> str:
        def resolve(name: str) -> tuple[str, DataType | None]:
            index = schema.index_of(name)
            return positions[index], schema.attributes[index].dtype

        return render_predicate(predicate, resolve, self._param_sql, self._expect)

    # -- operators ---------------------------------------------------------

    def emit(self, plan: PlanNode) -> tuple[str, tuple[DataType, ...]]:
        """Emit CTEs for ``plan``; returns (cte name, positional dtypes)."""
        if isinstance(plan, ScanOp):
            return self._scan(plan)
        if isinstance(plan, FilterOp):
            return self._filter(plan)
        if isinstance(plan, ProjectOp):
            return self._project(plan)
        if isinstance(plan, JoinOp):
            return self._join(plan)
        if isinstance(plan, SemiJoinOp):
            return self._semi_join(plan)
        if isinstance(plan, CrossOp):
            return self._cross(plan)
        if isinstance(plan, (UnionOp, DifferenceOp, IntersectOp)):
            return self._set_op(plan)
        if isinstance(plan, AggregateOp):
            return self._aggregate(plan)
        raise BackendUnsupportedError(
            f"cannot compile plan node of type {type(plan).__name__}"
        )

    def _scan(self, plan: ScanOp) -> tuple[str, tuple[DataType, ...]]:
        schema = self.db.relation(plan.relation)
        columns = ", ".join(quote_identifier(a.name, force=True) for a in schema.attributes)
        body = f"SELECT DISTINCT {columns} FROM {quote_identifier(plan.relation, force=True)}"
        name = self._add_cte(body, schema.arity)
        return name, tuple(a.dtype for a in schema.attributes)

    def _filter(self, plan: FilterOp) -> tuple[str, tuple[DataType, ...]]:
        child, dtypes = self.emit(plan.child)
        positions = [f"c{i + 1}" for i in range(len(dtypes))]
        condition = self._predicate(plan.predicate, plan.schema, positions)
        body = (
            f"SELECT {self._column_list(len(dtypes))} FROM {child} WHERE {condition}"
        )
        return self._add_cte(body, len(dtypes)), dtypes

    def _project(self, plan: ProjectOp) -> tuple[str, tuple[DataType, ...]]:
        child, dtypes = self.emit(plan.child)
        selected = ", ".join(
            f"c{index + 1} AS c{out + 1}" for out, index in enumerate(plan.indexes)
        )
        body = f"SELECT DISTINCT {selected} FROM {child}"
        return (
            self._add_cte(body, len(plan.indexes)),
            tuple(dtypes[i] for i in plan.indexes),
        )

    def _join(self, plan: JoinOp) -> tuple[str, tuple[DataType, ...]]:
        left, left_types = self.emit(plan.left)
        right, right_types = self.emit(plan.right)
        keep = (
            tuple(range(len(right_types))) if plan.keep_right is None else plan.keep_right
        )
        positions = [f"L.c{i + 1}" for i in range(len(left_types))] + [
            f"R.c{j + 1}" for j in keep
        ]
        selected = ", ".join(f"{expr} AS c{i + 1}" for i, expr in enumerate(positions))
        for a, b in zip(plan.left_key, plan.right_key):
            if not comparable_in_sql(left_types[a], right_types[b]):
                raise BackendUnsupportedError(
                    "equi-join key types diverge from dict-key equality in SQLite"
                )
        # IS, not =: the hash join matches keys through dict equality, where
        # NULL == NULL holds.
        condition = " AND ".join(
            f"L.c{a + 1} IS R.c{b + 1}" for a, b in zip(plan.left_key, plan.right_key)
        )
        body = f"SELECT {selected} FROM {left} AS L JOIN {right} AS R ON {condition}"
        if plan.residual:
            residual = " AND ".join(
                self._predicate(p, plan.schema, positions) for p in plan.residual
            )
            body += f" WHERE {residual}"
        dtypes = left_types + tuple(right_types[j] for j in keep)
        return self._add_cte(body, len(dtypes)), dtypes

    def _semi_join(self, plan: SemiJoinOp) -> tuple[str, tuple[DataType, ...]]:
        left, left_types = self.emit(plan.left)
        right, right_types = self.emit(plan.right)
        for a, b in zip(plan.left_key, plan.right_key):
            if not comparable_in_sql(left_types[a], right_types[b]):
                raise BackendUnsupportedError(
                    "semijoin key types diverge from dict-key equality in SQLite"
                )
        # IS, not =: the semijoin's key-set membership test goes through dict
        # equality, where NULL == NULL holds.
        condition = " AND ".join(
            f"R.c{b + 1} IS L.c{a + 1}" for a, b in zip(plan.left_key, plan.right_key)
        )
        columns = ", ".join(f"L.c{i + 1}" for i in range(len(left_types)))
        body = (
            f"SELECT {columns} FROM {left} AS L "
            f"WHERE EXISTS (SELECT 1 FROM {right} AS R WHERE {condition})"
        )
        return self._add_cte(body, len(left_types)), left_types

    def _cross(self, plan: CrossOp) -> tuple[str, tuple[DataType, ...]]:
        left, left_types = self.emit(plan.left)
        right, right_types = self.emit(plan.right)
        positions = [f"L.c{i + 1}" for i in range(len(left_types))] + [
            f"R.c{j + 1}" for j in range(len(right_types))
        ]
        selected = ", ".join(f"{expr} AS c{i + 1}" for i, expr in enumerate(positions))
        body = f"SELECT {selected} FROM {left} AS L CROSS JOIN {right} AS R"
        if plan.residual:
            residual = " AND ".join(
                self._predicate(p, plan.schema, positions) for p in plan.residual
            )
            body += f" WHERE {residual}"
        dtypes = left_types + right_types
        return self._add_cte(body, len(dtypes)), dtypes

    def _set_op(self, plan: PlanNode) -> tuple[str, tuple[DataType, ...]]:
        operator = {
            UnionOp: "UNION",
            DifferenceOp: "EXCEPT",
            IntersectOp: "INTERSECT",
        }[type(plan)]
        left, left_types = self.emit(plan.left)  # type: ignore[attr-defined]
        right, _ = self.emit(plan.right)  # type: ignore[attr-defined]
        columns = self._column_list(len(left_types))
        body = f"SELECT {columns} FROM {left} {operator} SELECT {columns} FROM {right}"
        return self._add_cte(body, len(left_types)), left_types

    def _aggregate(self, plan: AggregateOp) -> tuple[str, tuple[DataType, ...]]:
        child, child_types = self.emit(plan.child)
        selected: list[str] = []
        dtypes: list[DataType] = []
        for out, index in enumerate(plan.group_indexes):
            selected.append(f"T.c{index + 1} AS c{out + 1}")
            dtypes.append(child_types[index])
        offset = len(plan.group_indexes)
        for out, (spec, index) in enumerate(plan.aggregates):
            if index < 0:
                expression = "COUNT(*)"
                dtypes.append(DataType.INT)
            else:
                expression = f"{_AGGREGATE_SQL[spec.func]}(T.c{index + 1})"
                if spec.func is AggregateFunction.COUNT:
                    dtypes.append(DataType.INT)
                elif spec.func is AggregateFunction.AVG:
                    dtypes.append(DataType.FLOAT)
                else:
                    dtypes.append(child_types[index])
            selected.append(f"{expression} AS c{offset + out + 1}")
        if plan.group_indexes:
            group = ", ".join(f"T.c{i + 1}" for i in plan.group_indexes)
        else:
            # A constant expression groups every row into one group while an
            # empty input yields *no* groups — matching the engine, where an
            # ungrouped aggregate over an empty input produces no output row
            # (unlike SQL's plain ungrouped aggregate, which produces one).
            group = "1 + 0"
        body = f"SELECT {', '.join(selected)} FROM {child} AS T GROUP BY {group}"
        return self._add_cte(body, len(dtypes)), tuple(dtypes)


def compile_plan_to_sql(plan: PlanNode, db: DatabaseSchema) -> CompiledPlan:
    """Compile a logical plan into one SQLite statement.

    Raises :class:`BackendUnsupportedError` for constructs the dialect
    cannot express faithfully.
    """
    compiler = _PlanCompiler(db)
    final, dtypes = compiler.emit(plan)
    ctes = ",\n".join(compiler.ctes)
    columns = ", ".join(f"c{i + 1}" for i in range(len(dtypes)))
    sql = f"WITH {ctes}\nSELECT {columns} FROM {final}"
    return CompiledPlan(
        sql=sql,
        params=tuple(compiler.params),
        dtypes=dtypes,
        param_types=tuple(
            (name, tuple(sorted(types, key=lambda t: t.value)))
            for name, types in compiler.param_types.items()
        ),
    )


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

_BINDABLE_TYPES = (bool, int, float, str)


class SqliteBackend:
    """Execute compiled plans against a cached ``:memory:`` SQLite database.

    One backend binds one :class:`~repro.catalog.instance.DatabaseInstance`;
    the database is (re)loaded lazily whenever the instance's
    ``data_version`` changes, and compiled SQL is cached per plan node —
    plans hash structurally, so a grading session re-running the same
    reference query never recompiles it.  All public methods are
    thread-safe (a single lock serializes compilation and execution, which
    also satisfies sqlite3's cross-thread connection rules).
    """

    name = "sqlite"

    #: Soft bound on cached compiled statements, mirroring the session's
    #: bounded plan cache — a long-lived service fielding a stream of
    #: structurally distinct submissions must not grow without limit.
    max_compiled_plans = 10_000

    def __init__(self, instance: DatabaseInstance) -> None:
        self.instance = instance
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._division = _PythonDivision()
        self._loaded_version: int | None = None
        self._load_failed_version: int | None = None
        self._compiled: dict[PlanNode, CompiledPlan | None] = {}
        self.stats = {"loads": 0, "statements": 0, "compile_misses": 0}

    # -- database lifecycle ------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """The loaded connection for the instance's current data version."""
        version = self.instance.data_version
        if version == self._load_failed_version:
            raise BackendUnsupportedError(
                "instance data cannot be represented in SQLite"
            )
        if self._conn is None or version != self._loaded_version:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
            # Compiled SQL depends only on the schema, never on the data, so
            # reloads keep the compilation cache.
            conn = sqlite3.connect(":memory:", check_same_thread=False)
            prepare_connection(conn, division=self._division)
            try:
                load_instance(conn, self.instance)
            except BackendUnsupportedError:
                conn.close()
                self._load_failed_version = version
                raise
            self._conn = conn
            self._loaded_version = version
            self.stats["loads"] += 1
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
                self._loaded_version = None

    # -- execution ---------------------------------------------------------

    def _compile(self, plan: PlanNode) -> CompiledPlan:
        compiled = self._compiled.get(plan, _MISSING)
        if compiled is _MISSING:
            self.stats["compile_misses"] += 1
            if len(self._compiled) >= self.max_compiled_plans:
                self._compiled.clear()
            try:
                compiled = compile_plan_to_sql(plan, self.instance.schema)
            except BackendUnsupportedError:
                self._compiled[plan] = None
                raise
            self._compiled[plan] = compiled
        if compiled is None:
            raise BackendUnsupportedError("plan previously found uncompilable")
        return compiled

    def compiled_sql(self, plan: PlanNode) -> str:
        """The SQL text a plan executes as (diagnostics and tests)."""
        with self._lock:
            return self._compile(plan).sql

    def _binding(self, compiled: CompiledPlan, params: ParamValues) -> dict[str, Any]:
        """Named-parameter binding, refusing type-unfaithful values.

        A *missing* parameter is a fallback, not an error: the Python
        operators resolve parameters lazily, so a plan whose predicate never
        runs (empty input) evaluates fine unbound — only they can tell.
        Likewise a value whose runtime type would change a comparison's
        meaning (a string where numbers are compared) falls back so Python
        can raise its usual ``TypeError``.
        """
        expected = dict(compiled.param_types)
        binding: dict[str, Any] = {}
        for name in compiled.params:
            if name not in params:
                raise BackendUnsupportedError(
                    f"parameter @{name} is unbound; only the Python operators "
                    "know whether it is ever evaluated"
                )
            value = params[name]
            if value is not None:
                if not isinstance(value, _BINDABLE_TYPES):
                    raise BackendUnsupportedError(
                        f"parameter @{name} value {value!r} is not a SQLite scalar"
                    )
                value_type = literal_type(value)
                for dtype in expected.get(name, ()):
                    if not comparable_in_sql(value_type, dtype):
                        raise BackendUnsupportedError(
                            f"parameter @{name} bound to a {value_type.value} where "
                            f"a {dtype.value} is expected; SQLite would coerce"
                        )
            binding[f"p_{name}"] = value
        return binding

    def execute_plan(self, plan: PlanNode, params: ParamValues | None = None) -> "dict[Values, bool]":
        """Run ``plan`` and return the set-domain annotated row dict.

        Raises :class:`BackendUnsupportedError` when the plan or its
        parameter binding cannot run faithfully on SQLite (callers fall
        back to the Python operators) and re-raises genuine query failures
        exactly as the Python engine would (division by zero surfaces as
        :class:`QueryEvaluationError`).
        """
        params = params or {}
        with self._lock:
            compiled = self._compile(plan)
            binding = self._binding(compiled, params)
            conn = self._connection()
            self._division.take_error()  # drop any stale record
            try:
                rows = conn.execute(compiled.sql, binding).fetchall()
            except sqlite3.Error as exc:
                recorded = self._division.take_error()
                if isinstance(recorded, ZeroDivisionError):
                    raise QueryEvaluationError(
                        "division by zero in scalar expression"
                    ) from recorded
                if recorded is not None:
                    # Surface exactly what the Python operators would have
                    # raised (e.g. TypeError for a string-typed parameter).
                    raise recorded
                raise BackendUnsupportedError(str(exc)) from exc
            self.stats["statements"] += 1
        bool_columns = [
            i for i, dtype in enumerate(compiled.dtypes) if dtype is DataType.BOOL
        ]
        if bool_columns:
            converted: dict[Values, bool] = {}
            for row in rows:
                values = list(row)
                for i in bool_columns:
                    if values[i] is not None:
                        values[i] = bool(values[i])
                converted[tuple(values)] = True
            return converted
        return {tuple(row): True for row in rows}


_MISSING = object()
