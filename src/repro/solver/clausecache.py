"""Cross-submission reuse of provenance CNF encodings and learned clauses.

Grading a classroom means solving many *near-duplicate* min-ones problems:
two students who wrote the same wrong query modulo attribute renaming
produce structurally identical provenance constraints (renames compile away
before provenance is computed, so the ``BoolExpr`` trees — frozen, hashable
dataclasses over tuple identifiers — are *equal*).  This cache keys a
finished encoding by the problem structure so the second submission skips
the Tseitin transformation entirely and starts its CDCL search from the
first submission's clause database.

What is stored — and why it is sound to reuse:

* the solver's clause list **snapshotted after the first model, before any
  cardinality ladder or blocking clause is added**.  Every clause in that
  snapshot is either part of the base CNF or was *learned from it by
  resolution*, hence implied by the base CNF alone and safe to hand to any
  future solver for the same problem;
* the variable pool's name table, so auxiliary numbering stays consistent
  with the snapshot and fresh variables (the next run's cardinality
  registers) never collide;
* the cost-variable ids, and the first model's phases (seeding
  phase-saving toward the previous solution makes the warm first solve
  converge quickly).

Clauses derived *after* a cardinality bound was attached are never
exported: they are implied only by "base CNF ∧ bound", and a post-minimize
solver object is permanently UNSAT — reusing the object (rather than the
snapshot) would be unsound, which is exactly why the cache stores data, not
solvers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lru import LRUCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.solver.minones import MinOnesProblem


@dataclass(frozen=True)
class ClauseCacheEntry:
    """A reusable encoding: clause snapshot + pool state + solve hints."""

    clauses: tuple[tuple[int, ...], ...]
    units: tuple[int, ...]
    names: tuple[tuple[str, int], ...]
    next_var: int
    cost_ids: tuple[tuple[str, int], ...]
    phases: tuple[tuple[int, bool], ...]


class ClauseCache:
    """Thread-safe LRU of :class:`ClauseCacheEntry` keyed by problem structure."""

    def __init__(self, max_entries: int = 128) -> None:
        self._entries = LRUCache(max_entries)
        self._lock = threading.Lock()

    @staticmethod
    def key_for(problem: "MinOnesProblem"):
        """Structural cache key, or ``None`` if the problem is unhashable.

        Constraints are ``BoolExpr`` trees over tuple identifiers; renamed
        near-duplicate queries share one plan (renames compile away) and
        therefore equal constraint trees, which is what makes this key work
        "modulo renaming" without any explicit canonicalization.
        """
        try:
            key = (
                tuple(problem.constraints),
                tuple(sorted((fk.child, fk.parents) for fk in problem.foreign_keys)),
                frozenset(problem.cost_variables),
            )
            hash(key)
        except TypeError:
            return None
        return key

    def get(self, key) -> ClauseCacheEntry | None:
        with self._lock:
            return self._entries.get(key)

    def put(self, key, entry: ClauseCacheEntry) -> None:
        with self._lock:
            self._entries[key] = entry

    @property
    def hits(self) -> int:
        return self._entries.hits

    @property
    def misses(self) -> int:
        return self._entries.misses

    def __len__(self) -> int:
        return len(self._entries)

    def cache_info(self) -> dict[str, int]:
        with self._lock:
            return self._entries.stats()


__all__ = ["ClauseCache", "ClauseCacheEntry"]
