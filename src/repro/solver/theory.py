"""Branch-and-bound solver for aggregate provenance constraints ("SMT-lite").

Aggregate counterexamples (§5) need more than Boolean satisfiability: the
constraint mixes tuple variables, symbolic aggregate values computed from the
kept tuples, and — for the parameterized variant (Definition 3) — free integer
parameters standing for the constants of HAVING predicates.

Z3's optimizing solver is unavailable offline, so this module provides a
cardinality-minimising branch-and-bound search:

* variables are the tuple variables occurring in the constraint (plus any
  foreign-key parents they drag in);
* the search explores "exclude the tuple" before "include the tuple" and
  prunes branches that cannot beat the best solution found so far;
* at every candidate assignment, parameter values are synthesised from the
  finitely many *breakpoints* of the aggregate expressions (an integer
  parameter compared against aggregates only changes the constraint's truth
  value at those breakpoints, so trying breakpoint±1 values is complete);
* a node/time budget turns pathological instances (huge groups) into a
  "timed out, best effort" answer — mirroring the paper's observation that
  the SMT solver does not scale to large groups.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import UnsatisfiableError
from repro.provenance.aggregate import (
    AggAnd,
    AggComparison,
    AggConstraint,
    AggNot,
    AggOr,
    NumExpr,
    NumParam,
    ValuesDiffer,
)
from repro.provenance.boolexpr import assignment_from_true_set
from repro.solver.minones import ForeignKeyClause
from repro.solver.models import AggregateSolveResult


@dataclass
class AggregateProblem:
    """An aggregate min-ones instance."""

    constraint: AggConstraint
    cost_variables: set[str] = field(default_factory=set)
    foreign_keys: list[ForeignKeyClause] = field(default_factory=list)
    parameters: set[str] = field(default_factory=set)
    #: Known good values per parameter (the original constants / the caller's
    #: binding).  Always tried as candidates; for non-numeric parameters they
    #: are the *only* trustworthy candidates, since breakpoint synthesis is
    #: integer arithmetic.
    parameter_seeds: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cost_variables |= self.constraint.variables()
        self.parameters |= self.constraint.parameters()

    def seed_parameters(self, values: Mapping[str, Any]) -> None:
        """Record known-good values for any of the constraint's parameters."""
        for name, value in values.items():
            if name in self.parameters:
                self.parameter_seeds[name] = value

    def add_foreign_key(self, child: str, parents: Iterable[str]) -> None:
        parents = tuple(parents)
        self.foreign_keys.append(ForeignKeyClause(child, parents))
        if child in self.cost_variables:
            self.cost_variables.update(parents)


@dataclass
class AggregateSolverConfig:
    """Budgets for the branch-and-bound search."""

    max_nodes: int = 200_000
    time_budget: float | None = 30.0


class AggregateSolver:
    """Minimise the number of kept tuples subject to an aggregate constraint."""

    def __init__(self, problem: AggregateProblem, config: AggregateSolverConfig | None = None) -> None:
        self.problem = problem
        self.config = config or AggregateSolverConfig()
        self._variables = sorted(problem.cost_variables)
        # One clause per (child, foreign key): a child relation may carry
        # several foreign keys (Likes.drinker → Drinker *and* Likes.beer →
        # Beer), and each must hold independently — keying by child alone
        # would keep only the last clause.  A clause with no parents means the
        # child's reference is dangling in the full instance; such a tuple can
        # never be part of a witness (the min-ones encoding adds ``¬child``).
        self._fk_clauses: list[tuple[str, tuple[str, ...]]] = [
            (fk.child, fk.parents)
            for fk in problem.foreign_keys
            if fk.child in problem.cost_variables
        ]

    # -- public API -----------------------------------------------------------

    def solve(self) -> AggregateSolveResult:
        started = time.perf_counter()
        best: tuple[frozenset[str], Mapping[str, Any]] | None = None

        # Seed the upper bound with the full variable set (greedily shrunk),
        # so that branch-and-bound always has something to prune against.  The
        # greedy pass is quadratic in the variable count, so it is skipped for
        # very large constraints — those are the instances where the paper
        # observes the SMT-based approach timing out anyway.
        full = frozenset(self._variables)
        params = self._satisfies(full)
        if params is not None:
            if len(full) <= 250:
                shrunk = self._greedy_shrink(full, started)
                shrunk_params = self._satisfies(shrunk)
                best = (shrunk, shrunk_params if shrunk_params is not None else params)
            else:
                best = (full, params)

        nodes = 0
        timed_out = False
        order = self._variable_order()

        # Iterative deepening-flavoured DFS: exclude-first, include-second.
        stack: list[tuple[int, frozenset[str]]] = [(0, frozenset())]
        while stack:
            if nodes >= self.config.max_nodes:
                timed_out = True
                break
            if (
                self.config.time_budget is not None
                and time.perf_counter() - started > self.config.time_budget
            ):
                timed_out = True
                break
            index, included = stack.pop()
            nodes += 1
            if best is not None and len(included) >= len(best[0]):
                continue
            if index == len(order):
                params = self._satisfies(included)
                if params is not None and (best is None or len(included) < len(best[0])):
                    best = (included, params)
                continue
            variable = order[index]
            # Include branch pushed first so the exclude branch is explored
            # first (LIFO), biasing the search towards small witnesses.
            stack.append((index + 1, included | {variable}))
            stack.append((index + 1, included))

        if best is None:
            if timed_out:
                return AggregateSolveResult(
                    frozenset(), {}, 0, optimal=False, nodes_explored=nodes, timed_out=True
                )
            raise UnsatisfiableError("aggregate constraint is unsatisfiable over the instance")
        witness, parameter_values = best
        return AggregateSolveResult(
            true_variables=witness,
            parameter_values=dict(parameter_values),
            cost=len(witness),
            optimal=not timed_out,
            nodes_explored=nodes,
            timed_out=timed_out,
        )

    # -- internals ------------------------------------------------------------

    def _variable_order(self) -> list[str]:
        """Order variables so frequently-constrained tuples are decided first."""
        weights: dict[str, int] = {name: 0 for name in self._variables}
        for occurrence in _variable_occurrences(self.problem.constraint):
            if occurrence in weights:
                weights[occurrence] += 1
        return sorted(self._variables, key=lambda name: (-weights[name], name))

    def _respects_foreign_keys(self, included: frozenset[str]) -> bool:
        for child, parents in self._fk_clauses:
            if child in included and not any(p in included for p in parents):
                return False
        return True

    def _satisfies(self, included: frozenset[str]) -> Mapping[str, Any] | None:
        """Parameter values making the constraint true, or None."""
        if not self._respects_foreign_keys(included):
            return None
        assignment = assignment_from_true_set(included)
        if not self.problem.parameters:
            return {} if self._constraint_holds(assignment, {}) else None
        for candidate in self._parameter_candidates(included):
            if self._constraint_holds(assignment, candidate):
                return candidate
        return None

    def _constraint_holds(self, assignment, parameter_values) -> bool:
        """Evaluate the constraint; ill-typed candidates simply do not satisfy it.

        Synthesised parameter candidates are integers (breakpoints ± 1); when
        the parameter actually ranges over strings the comparison raises
        ``TypeError``, which means "this candidate value is no good", not
        "abort the search".
        """
        try:
            return bool(self.problem.constraint.evaluate(assignment, parameter_values))
        except TypeError:
            return False

    def _parameter_candidates(self, included: frozenset[str]) -> Iterable[dict[str, Any]]:
        """Candidate parameter assignments derived from aggregate breakpoints.

        Every parameter's known-good seed value (the original constant) is
        always among the candidates; the integer probes 0/1 are only added
        when nothing suggests the parameter is non-numeric.
        """
        assignment = assignment_from_true_set(included)
        per_parameter: dict[str, set[Any]] = {}
        for name in self.problem.parameters:
            seed = self.problem.parameter_seeds.get(name)
            if seed is not None and not isinstance(seed, (int, float)):
                per_parameter[name] = {seed}
            elif seed is not None:
                per_parameter[name] = {0, 1, seed}
            else:
                per_parameter[name] = {0, 1}
        for comparison in _comparisons(self.problem.constraint):
            sides = [comparison.left, comparison.right]
            for this, other in (sides, sides[::-1]):
                if isinstance(this, NumParam):
                    value = _safe_evaluate(other, assignment)
                    if value is None or not isinstance(value, (int, float)):
                        continue
                    base = int(value)
                    per_parameter[this.name].update({base - 1, base, base + 1})
        names = sorted(per_parameter)
        # Candidate sets may mix types (integer probes next to a string seed);
        # order deterministically without relying on cross-type comparison.
        value_lists = [
            sorted(per_parameter[name], key=lambda v: (type(v).__name__, str(v)))
            for name in names
        ]
        for combination in itertools.product(*value_lists):
            yield dict(zip(names, combination))

    def _greedy_shrink(self, included: frozenset[str], started: float) -> frozenset[str]:
        """Remove tuples one at a time while the constraint stays satisfiable."""
        current = set(included)
        for name in sorted(included):
            if (
                self.config.time_budget is not None
                and time.perf_counter() - started > self.config.time_budget / 2
            ):
                break
            trial = frozenset(current - {name})
            if self._satisfies(trial) is not None:
                current.discard(name)
        return frozenset(current)


def _variable_occurrences(constraint: AggConstraint) -> Iterable[str]:
    """Yield tuple variables once per syntactic occurrence (for the branching order)."""
    from repro.provenance.aggregate import AggAnd as _And, AggNot as _Not, AggOr as _Or, BoolCondition

    if isinstance(constraint, BoolCondition):
        yield from constraint.expression.variables()
    elif isinstance(constraint, (AggComparison, ValuesDiffer)):
        yield from constraint.left.variables()
        yield from constraint.right.variables()
    elif isinstance(constraint, (_And, _Or)):
        for operand in constraint.operands:
            yield from _variable_occurrences(operand)
    elif isinstance(constraint, _Not):
        yield from _variable_occurrences(constraint.operand)


def _comparisons(constraint: AggConstraint) -> Iterable[AggComparison]:
    if isinstance(constraint, AggComparison):
        yield constraint
    elif isinstance(constraint, (AggAnd, AggOr)):
        for operand in constraint.operands:
            yield from _comparisons(operand)
    elif isinstance(constraint, AggNot):
        yield from _comparisons(constraint.operand)
    elif isinstance(constraint, ValuesDiffer):
        yield AggComparison("=", constraint.left, constraint.right)


def _safe_evaluate(expression: NumExpr, assignment) -> Any:
    try:
        return expression.evaluate(assignment, {})
    except Exception:  # parameters on both sides, or unbound parameter
        return None


def solve_aggregate(
    constraint: AggConstraint,
    *,
    foreign_keys: Sequence[ForeignKeyClause] = (),
    config: AggregateSolverConfig | None = None,
) -> AggregateSolveResult:
    """Convenience wrapper building an :class:`AggregateProblem` and solving it."""
    problem = AggregateProblem(constraint=constraint)
    for fk in foreign_keys:
        problem.add_foreign_key(fk.child, fk.parents)
    return AggregateSolver(problem, config).solve()
