"""CNF representation and Tseitin encoding of provenance expressions.

Literals follow the DIMACS convention: variables are positive integers and a
negative integer denotes the negation of that variable.  The
:class:`VariablePool` maps provenance variable names (tuple identifiers) to
solver variables and mints fresh auxiliary variables for the Tseitin
transformation and the cardinality encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import SolverError
from repro.provenance.boolexpr import (
    AndExpr,
    BoolExpr,
    FalseExpr,
    NotExpr,
    OrExpr,
    TrueExpr,
    Var,
)

Clause = tuple[int, ...]


@dataclass
class VariablePool:
    """Bidirectional mapping between names and solver variable numbers."""

    _by_name: dict[str, int] = field(default_factory=dict)
    _by_index: dict[int, str] = field(default_factory=dict)
    _next: int = 1

    def variable(self, name: str) -> int:
        """The solver variable for ``name``, creating it on first use."""
        if name not in self._by_name:
            index = self._next
            self._next += 1
            self._by_name[name] = index
            self._by_index[index] = name
        return self._by_name[name]

    def fresh(self, hint: str = "aux") -> int:
        """A fresh auxiliary variable (named ``_{hint}{n}`` internally)."""
        index = self._next
        self._next += 1
        name = f"_{hint}{index}"
        self._by_name[name] = index
        self._by_index[index] = name
        return index

    def name_of(self, variable: int) -> str:
        return self._by_index[abs(variable)]

    def has_name(self, name: str) -> bool:
        return name in self._by_name

    def lookup(self, name: str) -> int | None:
        return self._by_name.get(name)

    @property
    def num_variables(self) -> int:
        return self._next - 1

    def named_variables(self) -> dict[str, int]:
        """All non-auxiliary variables (those not starting with ``_``)."""
        return {name: idx for name, idx in self._by_name.items() if not name.startswith("_")}


@dataclass
class CNF:
    """A conjunction of clauses plus the pool naming its variables."""

    pool: VariablePool = field(default_factory=VariablePool)
    clauses: list[Clause] = field(default_factory=list)

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        if not clause:
            raise SolverError("attempted to add the empty clause directly")
        self.clauses.append(clause)

    def add_unit(self, literal: int) -> None:
        self.clauses.append((literal,))

    def add_implication(self, antecedent: int, consequents: Sequence[int]) -> None:
        """``antecedent -> (c1 ∨ c2 ∨ ...)`` as a single clause."""
        self.clauses.append((-antecedent, *consequents))

    @property
    def num_variables(self) -> int:
        return self.pool.num_variables

    def copy(self) -> "CNF":
        duplicate = CNF(pool=self.pool)
        duplicate.clauses = list(self.clauses)
        return duplicate


def tseitin(expression: BoolExpr, cnf: CNF) -> int:
    """Encode ``expression`` into ``cnf`` and return its root literal.

    The encoding is equisatisfiability-preserving in the strong (Plaisted–
    Greenbaum-free) sense: the returned literal is true in a model of the
    added clauses *iff* the expression is true under the assignment of its
    named variables, so the literal can be reused both positively and
    negatively.
    """
    pool = cnf.pool

    def encode(node: BoolExpr) -> int:
        if isinstance(node, Var):
            return pool.variable(node.name)
        if isinstance(node, TrueExpr):
            aux = pool.fresh("true")
            cnf.add_unit(aux)
            return aux
        if isinstance(node, FalseExpr):
            aux = pool.fresh("false")
            cnf.add_unit(-aux)
            return aux
        if isinstance(node, NotExpr):
            return -encode(node.operand)
        if isinstance(node, AndExpr):
            literals = [encode(op) for op in node.operands]
            aux = pool.fresh("and")
            for literal in literals:
                cnf.add_clause((-aux, literal))
            cnf.add_clause((aux, *(-lit for lit in literals)))
            return aux
        if isinstance(node, OrExpr):
            literals = [encode(op) for op in node.operands]
            aux = pool.fresh("or")
            for literal in literals:
                cnf.add_clause((aux, -literal))
            cnf.add_clause((-aux, *literals))
            return aux
        raise SolverError(f"cannot encode expression node {type(node).__name__}")

    return encode(expression)


def assert_expression(expression: BoolExpr, cnf: CNF) -> None:
    """Add clauses forcing ``expression`` to be true."""
    root = tseitin(expression, cnf)
    cnf.add_unit(root)


def sequential_counter(cnf: CNF, variables: Sequence[int], width: int) -> list[int]:
    """Sinz sequential-counter registers over ``variables``.

    Returns ``outputs`` where ``outputs[j]`` (0-based) is implied true whenever
    at least ``j + 1`` of the variables are true (counts beyond ``width``
    saturate at the last register).  The clauses only constrain the registers
    upward, so the encoding itself never restricts the variables; callers
    enforce ``sum(variables) <= b`` by adding the unit clause
    ``-outputs[b]`` — and can *tighten* the bound later by adding further unit
    clauses, which is how the min-ones optimizer descends without re-encoding.
    """
    n = len(variables)
    if width <= 0:
        raise SolverError("cardinality width must be positive")
    if n == 0:
        return []
    width = min(width, n)
    # registers[i][j]: among the first i+1 variables, at least j+1 are true.
    registers: list[list[int]] = []
    for i in range(n):
        registers.append([cnf.pool.fresh(f"card{i}_") for _ in range(width)])

    cnf.add_clause((-variables[0], registers[0][0]))
    for i in range(1, n):
        cnf.add_clause((-variables[i], registers[i][0]))
        cnf.add_clause((-registers[i - 1][0], registers[i][0]))
        for j in range(1, width):
            cnf.add_clause((-variables[i], -registers[i - 1][j - 1], registers[i][j]))
            cnf.add_clause((-registers[i - 1][j], registers[i][j]))
    return registers[n - 1]
