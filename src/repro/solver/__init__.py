"""Constraint solving: SAT, cardinality minimisation, aggregate branch-and-bound."""

from repro.solver.clausecache import ClauseCache, ClauseCacheEntry
from repro.solver.cnf import CNF, VariablePool, assert_expression, sequential_counter, tseitin
from repro.solver.minones import (
    ForeignKeyClause,
    MinOnesProblem,
    MinOnesSolver,
    solve_min_ones,
)
from repro.solver.models import AggregateSolveResult, EnumerationResult, MinOnesResult
from repro.solver.sat import SATSolver, SolveStats
from repro.solver.theory import (
    AggregateProblem,
    AggregateSolver,
    AggregateSolverConfig,
    solve_aggregate,
)

__all__ = [
    "AggregateProblem",
    "AggregateSolveResult",
    "AggregateSolver",
    "AggregateSolverConfig",
    "CNF",
    "ClauseCache",
    "ClauseCacheEntry",
    "EnumerationResult",
    "ForeignKeyClause",
    "MinOnesProblem",
    "MinOnesResult",
    "MinOnesSolver",
    "SATSolver",
    "SolveStats",
    "VariablePool",
    "assert_expression",
    "sequential_counter",
    "solve_aggregate",
    "solve_min_ones",
    "tseitin",
]
