"""A CDCL SAT solver (the MiniSAT-style engine behind the min-ones optimizer).

The paper solves the smallest-witness problem by handing the provenance
formula to MiniSAT / Z3.  Neither is available offline, so this module
implements a self-contained conflict-driven clause-learning solver with
two-literal watching, first-UIP learning, VSIDS-like activities and
phase saving (biased towards *false*, which nudges initial models towards
few kept tuples).

The solver is incremental in the simple sense used by the optimizer: clauses
may be added between :meth:`SATSolver.solve` calls and learned clauses are
retained; every solve restarts the search from decision level zero.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import BudgetExceededError, SolverError
from repro.obs.trace import add_span_metrics

#: How many conflicts may pass between two deadline checks.  Conflicts are
#: the unit of CDCL progress, so checking every few of them bounds a solve's
#: overrun to a handful of propagation rounds while keeping ``perf_counter``
#: off the unit-propagation hot path.
_DEADLINE_CHECK_INTERVAL = 16


@dataclass
class SolveStats:
    """Counters accumulated across all ``solve`` calls of one solver instance."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    solve_calls: int = 0
    restarts: int = 0


@dataclass
class SATSolver:
    """Conflict-driven clause-learning SAT solver over integer literals."""

    max_conflicts_per_solve: int | None = None
    #: Phase chosen for a variable that has never been flipped; ``False``
    #: biases first models towards keeping few tuples, ``True`` mimics an
    #: "arbitrary model" solver (used for the Naive-* baseline of Figure 5).
    default_phase: bool = False
    #: Absolute ``time.perf_counter()`` timestamp after which :meth:`solve`
    #: aborts with :class:`BudgetExceededError`.  Callers that own a wall-clock
    #: budget (the min-ones optimizer) set this so a *single* long SAT call can
    #: no longer blow past the budget — previously the budget was only checked
    #: between models.  Checked every few conflicts and at every decision.
    deadline: float | None = None

    _clauses: list[list[int]] = field(default_factory=list)
    _watches: dict[int, list[int]] = field(default_factory=lambda: defaultdict(list))
    _units: list[int] = field(default_factory=list)
    _unsat: bool = False

    _assign: dict[int, bool] = field(default_factory=dict)
    _level: dict[int, int] = field(default_factory=dict)
    _reason: dict[int, int | None] = field(default_factory=dict)
    _trail: list[int] = field(default_factory=list)
    _trail_lim: list[int] = field(default_factory=list)

    _activity: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    _phase: dict[int, bool] = field(default_factory=dict)
    _var_inc: float = 1.0
    _variables: set[int] = field(default_factory=set)
    _propagated: int = 0

    stats: SolveStats = field(default_factory=SolveStats)

    # ------------------------------------------------------------------ API

    def add_clause(self, literals) -> None:
        """Add a clause; tautologies are dropped, duplicates within it merged."""
        clause: list[int] = []
        seen: set[int] = set()
        for literal in literals:
            if literal == 0:
                raise SolverError("0 is not a valid literal")
            if -literal in seen:
                return  # tautology: x ∨ ¬x
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
        for literal in clause:
            self._variables.add(abs(literal))
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches[clause[0]].append(index)
        self._watches[clause[1]].append(index)

    def add_clauses(self, clauses) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def export_clauses(self) -> tuple[tuple[tuple[int, ...], ...], tuple[int, ...]]:
        """Immutable snapshot of the clause database: ``(clauses, units)``.

        Includes clauses learned so far.  Taken *before* any assumption-like
        clause (cardinality bound, model-blocking) is added, every snapshotted
        clause is implied by the original input alone, so the snapshot can
        warm-start a fresh solver for the same problem.  The copy is deep:
        later in-place watch swaps or appends never leak into it.
        """
        return tuple(tuple(clause) for clause in self._clauses), tuple(self._units)

    def warm_start(
        self,
        clauses,
        units=(),
        phases=(),
    ) -> None:
        """Load a previously exported clause set plus optional phase hints.

        Must be called on a fresh solver (before the first :meth:`solve`).
        ``phases`` is an iterable of ``(variable, bool)`` pairs seeding the
        phase-saving heuristic toward a known model, so the warm first solve
        re-derives a nearby solution with few conflicts.
        """
        for clause in clauses:
            self.add_clause(clause)
        for unit in units:
            self.add_clause((unit,))
        for var, phase in phases:
            self._phase[var] = phase

    def solve(self) -> dict[int, bool] | None:
        """Return a satisfying assignment (var -> bool) or ``None`` if UNSAT.

        Variables never mentioned in any clause are absent from the model;
        callers treat missing variables as *false* (tuple not kept).

        Per-solve counter deltas are reported onto the ambient trace span
        (a no-op when nothing is traced), so counterexample spans carry SAT
        conflicts/decisions/propagations/restarts without the solver knowing
        anything about the server.
        """
        before = (
            self.stats.conflicts,
            self.stats.decisions,
            self.stats.propagations,
            self.stats.restarts,
        )
        try:
            return self._solve_impl()
        finally:
            add_span_metrics(
                sat_solve_calls=1,
                sat_conflicts=self.stats.conflicts - before[0],
                sat_decisions=self.stats.decisions - before[1],
                sat_propagations=self.stats.propagations - before[2],
                sat_restarts=self.stats.restarts - before[3],
            )

    def _solve_impl(self) -> dict[int, bool] | None:
        self.stats.solve_calls += 1
        if self._unsat:
            return None
        self._restart_state()

        # Level-0 units.
        for literal in self._units:
            if not self._enqueue(literal, None):
                self._unsat = True
                return None
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return None

        conflicts_this_call = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_call += 1
                if self.max_conflicts_per_solve is not None and (
                    conflicts_this_call > self.max_conflicts_per_solve
                ):
                    raise BudgetExceededError(
                        f"SAT solver exceeded {self.max_conflicts_per_solve} conflicts"
                    )
                if (
                    self.deadline is not None
                    and conflicts_this_call % _DEADLINE_CHECK_INTERVAL == 0
                    and time.perf_counter() > self.deadline
                ):
                    raise BudgetExceededError("SAT solve exceeded its time budget")
                if self._decision_level() == 0:
                    self._unsat = True
                    return None
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                self._attach_learned(learned)
                self.stats.learned_clauses += 1
                if self._unsat:
                    return None
            else:
                if self.deadline is not None and time.perf_counter() > self.deadline:
                    raise BudgetExceededError("SAT solve exceeded its time budget")
                literal = self._pick_branch_literal()
                if literal is None:
                    return dict(self._assign)
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(literal, None)

    def is_permanently_unsat(self) -> bool:
        """True once the clause set has been proven unsatisfiable."""
        return self._unsat

    # ----------------------------------------------------------- internals

    def _restart_state(self) -> None:
        self._assign.clear()
        self._level.clear()
        self._reason.clear()
        self._trail.clear()
        self._trail_lim.clear()
        self._propagated = 0
        self.stats.restarts += 1

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _value(self, literal: int) -> bool | None:
        value = self._assign.get(abs(literal))
        if value is None:
            return None
        return value if literal > 0 else not value

    def _enqueue(self, literal: int, reason: int | None) -> bool:
        current = self._value(literal)
        if current is not None:
            return current
        var = abs(literal)
        self._assign[var] = literal > 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(literal)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or ``None``."""
        while self._propagated < len(self._trail):
            literal = self._trail[self._propagated]
            self._propagated += 1
            self.stats.propagations += 1
            falsified = -literal
            watch_list = self._watches[falsified]
            new_watch_list: list[int] = []
            i = 0
            conflict: list[int] | None = None
            while i < len(watch_list):
                clause_index = watch_list[i]
                i += 1
                clause = self._clauses[clause_index]
                # Ensure the falsified literal is in position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a new literal to watch.
                replaced = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause_index)
                        replaced = True
                        break
                if replaced:
                    continue
                new_watch_list.append(clause_index)
                if self._value(first) is False:
                    # Conflict: keep the remaining watches and report.
                    new_watch_list.extend(watch_list[i:])
                    conflict = clause
                    break
                self._enqueue(first, clause_index)
            self._watches[falsified] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backjump level)."""
        learned: list[int] = []
        seen: set[int] = set()
        counter = 0
        literal: int | None = None
        clause = conflict
        index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for lit in clause:
                if literal is not None and lit == -literal:
                    continue
                var = abs(lit)
                if var in seen or self._level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump_activity(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find the next literal to resolve on (most recent seen on trail).
            while True:
                literal = self._trail[index]
                index -= 1
                if abs(literal) in seen:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason[abs(literal)]
            if reason_index is None:  # pragma: no cover - defensive
                break
            clause = self._clauses[reason_index]
        assert literal is not None
        learned.insert(0, -literal)
        if len(learned) == 1:
            backjump_level = 0
        else:
            backjump_level = max(self._level[abs(lit)] for lit in learned[1:])
        self._decay_activities()
        return learned, backjump_level

    def _attach_learned(self, learned: list[int]) -> None:
        if len(learned) == 1:
            self._units.append(learned[0])
            if not self._enqueue(learned[0], None):
                self._unsat = True
            return
        # Put a literal from the backjump level in the second watch position.
        backjump_level = max(self._level[abs(lit)] for lit in learned[1:])
        for k in range(1, len(learned)):
            if self._level[abs(learned[k])] == backjump_level:
                learned[1], learned[k] = learned[k], learned[1]
                break
        index = len(self._clauses)
        self._clauses.append(learned)
        self._watches[learned[0]].append(index)
        self._watches[learned[1]].append(index)
        self._enqueue(learned[0], index)

    def _backtrack(self, level: int) -> None:
        while self._decision_level() > level:
            boundary = self._trail_lim.pop()
            while len(self._trail) > boundary:
                literal = self._trail.pop()
                var = abs(literal)
                self._phase[var] = self._assign[var]
                del self._assign[var]
                del self._level[var]
                del self._reason[var]
            self._propagated = min(self._propagated, len(self._trail))

    def _pick_branch_literal(self) -> int | None:
        best_var: int | None = None
        best_activity = -1.0
        for var in self._variables:
            if var in self._assign:
                continue
            activity = self._activity[var]
            if activity > best_activity:
                best_activity = activity
                best_var = var
        if best_var is None:
            return None
        phase = self._phase.get(best_var, self.default_phase)
        return best_var if phase else -best_var

    def _bump_activity(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for key in list(self._activity):
                self._activity[key] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= 0.95
