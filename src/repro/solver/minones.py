"""Min-ones satisfiability over Boolean provenance (§4 of the paper).

Given a provenance formula, find a satisfying assignment with as few tuple
variables set to true as possible.  Two solving modes mirror the paper:

* :meth:`MinOnesSolver.enumerate_models` — the *Basic / Naive-M* strategy of
  Algorithm 1: repeatedly ask a plain SAT solver for a model, block it, and
  keep the smallest one seen after at most ``M`` models.
* :meth:`MinOnesSolver.minimize` — the *Opt* strategy: after an initial model
  of cost ``k``, attach a sequential-counter cardinality ladder and descend
  (or binary-search) on the bound until unsatisfiable, proving optimality.

Foreign-key constraints are passed as implications ``child ⇒ parent₁ ∨ …``
(§4.3) and are enforced in every mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from repro.errors import BudgetExceededError, SolverError, UnsatisfiableError
from repro.provenance.boolexpr import BoolExpr
from repro.solver.clausecache import ClauseCache, ClauseCacheEntry
from repro.solver.cnf import CNF, VariablePool, assert_expression, sequential_counter
from repro.solver.models import EnumerationResult, MinOnesResult
from repro.solver.sat import SATSolver

Strategy = Literal["descend", "binary"]


@dataclass(frozen=True)
class ForeignKeyClause:
    """``child ⇒ parent₁ ∨ parent₂ ∨ …`` over tuple variables."""

    child: str
    parents: tuple[str, ...]


@dataclass
class MinOnesProblem:
    """A min-ones instance: constraints plus the variables whose count matters."""

    constraints: list[BoolExpr] = field(default_factory=list)
    cost_variables: set[str] = field(default_factory=set)
    foreign_keys: list[ForeignKeyClause] = field(default_factory=list)

    def add_constraint(self, expression: BoolExpr) -> None:
        self.constraints.append(expression)
        self.cost_variables.update(expression.variables())

    def add_foreign_key(self, child: str, parents: Iterable[str]) -> None:
        parents = tuple(parents)
        self.foreign_keys.append(ForeignKeyClause(child, parents))
        self.cost_variables.add(child)
        self.cost_variables.update(parents)

    def all_variables(self) -> set[str]:
        names = set(self.cost_variables)
        for constraint in self.constraints:
            names |= constraint.variables()
        for fk in self.foreign_keys:
            names.add(fk.child)
            names.update(fk.parents)
        return names


class MinOnesSolver:
    """Solve a :class:`MinOnesProblem` with a CDCL SAT engine underneath."""

    def __init__(
        self,
        problem: MinOnesProblem,
        *,
        default_phase: bool = False,
        clause_cache: ClauseCache | None = None,
    ) -> None:
        if not problem.constraints:
            raise SolverError("a min-ones problem needs at least one constraint")
        self.problem = problem
        self.default_phase = default_phase
        self.clause_cache = clause_cache
        self._cache_key = None
        self._warm_started = False

    # -- shared construction -------------------------------------------------

    def _build(self) -> tuple[SATSolver, CNF, dict[str, int]]:
        if self.clause_cache is not None:
            self._cache_key = ClauseCache.key_for(self.problem)
            if self._cache_key is not None:
                entry = self.clause_cache.get(self._cache_key)
                if entry is not None:
                    self._warm_started = True
                    return self._build_from_entry(entry)
        cnf = CNF()
        for constraint in self.problem.constraints:
            assert_expression(constraint, cnf)
        cost_ids = {name: cnf.pool.variable(name) for name in sorted(self.problem.cost_variables)}
        for fk in self.problem.foreign_keys:
            child = cnf.pool.variable(fk.child)
            parents = [cnf.pool.variable(p) for p in fk.parents]
            if parents:
                cnf.add_implication(child, parents)
            else:
                # A child with no possible parent can never be kept.
                cnf.add_unit(-child)
        solver = SATSolver(default_phase=self.default_phase)
        solver.add_clauses(cnf.clauses)
        return solver, cnf, cost_ids

    def _build_from_entry(
        self, entry: ClauseCacheEntry
    ) -> tuple[SATSolver, CNF, dict[str, int]]:
        """Rebuild a fresh warm solver from a cached encoding.

        The CNF's pool is restored to the snapshot's name table and counter,
        so cardinality registers minted afterwards never collide with the
        snapshot's auxiliary variables.  The solver object itself is always
        fresh — cached *data* is reused, never a (possibly permanently-UNSAT)
        solver instance.
        """
        by_name = dict(entry.names)
        pool = VariablePool(
            _by_name=by_name,
            _by_index={index: name for name, index in by_name.items()},
            _next=entry.next_var,
        )
        cnf = CNF(pool=pool)
        cnf.clauses = [tuple(clause) for clause in entry.clauses]
        solver = SATSolver(default_phase=self.default_phase)
        solver.warm_start(entry.clauses, entry.units, entry.phases)
        return solver, cnf, dict(entry.cost_ids)

    def _maybe_export(
        self,
        solver: SATSolver,
        cnf: CNF,
        cost_ids: dict[str, int],
        model: dict[int, bool],
    ) -> None:
        """Store the post-first-solve clause snapshot for future problems.

        Called strictly before any cardinality ladder or blocking clause is
        attached, so everything exported is implied by the base CNF alone.
        """
        if (
            self.clause_cache is None
            or self._cache_key is None
            or self._warm_started
        ):
            return
        clauses, units = solver.export_clauses()
        self.clause_cache.put(
            self._cache_key,
            ClauseCacheEntry(
                clauses=clauses,
                units=units,
                names=tuple(cnf.pool._by_name.items()),
                next_var=cnf.pool._next,
                cost_ids=tuple(cost_ids.items()),
                phases=tuple((var, value) for var, value in model.items()),
            ),
        )

    def _model_cost_vars(self, model: dict[int, bool], cost_ids: dict[str, int]) -> frozenset[str]:
        return frozenset(name for name, var in cost_ids.items() if model.get(var, False))

    # -- Opt: true minimisation ----------------------------------------------

    def minimize(self, *, strategy: Strategy = "descend", time_budget: float | None = None) -> MinOnesResult:
        """Find a minimum-cardinality model (the paper's *Opt* strategy)."""
        if strategy == "binary":
            return self._minimize_binary(time_budget)
        return self._minimize_descend(time_budget)

    def _minimize_descend(self, time_budget: float | None) -> MinOnesResult:
        started = time.perf_counter()
        deadline = None if time_budget is None else started + time_budget
        solver, cnf, cost_ids = self._build()
        # The deadline is threaded into the SAT engine itself, so a single
        # long solve aborts mid-search instead of blowing past the budget.
        # If it fires before the *first* model there is no best-so-far to
        # return, and the BudgetExceededError (a SolverError) propagates.
        solver.deadline = deadline
        model = solver.solve()
        if model is None:
            raise UnsatisfiableError("provenance constraints are unsatisfiable")
        self._maybe_export(solver, cnf, cost_ids, model)
        best = self._model_cost_vars(model, cost_ids)
        calls = 1
        if len(best) <= 1 or not cost_ids:
            return MinOnesResult(best, len(best), True, calls)

        counter_inputs = [cost_ids[name] for name in sorted(cost_ids)]
        counter_cnf = CNF(pool=cnf.pool)
        outputs = sequential_counter(counter_cnf, counter_inputs, width=len(best))
        solver.add_clauses(counter_cnf.clauses)

        optimal = False
        while True:
            bound = len(best) - 1
            if bound < 0:
                optimal = True
                break
            if deadline is not None and time.perf_counter() > deadline:
                break
            # Forbid "at least bound+1 true" => require cost <= bound.
            solver.add_clause((-outputs[bound],))
            try:
                model = solver.solve()
            except BudgetExceededError:
                # Mid-solve timeout: the model found so far is still valid,
                # just not proven minimal.
                break
            calls += 1
            if model is None:
                optimal = True
                break
            candidate = self._model_cost_vars(model, cost_ids)
            if len(candidate) >= len(best):  # pragma: no cover - defensive
                optimal = True
                break
            best = candidate
        return MinOnesResult(best, len(best), optimal, calls)

    def _minimize_binary(self, time_budget: float | None) -> MinOnesResult:
        """Binary search on the bound, rebuilding the solver per probe.

        Used as an ablation comparator for the incremental descend strategy.
        """
        started = time.perf_counter()
        deadline = None if time_budget is None else started + time_budget
        solver, cnf, cost_ids = self._build()
        solver.deadline = deadline
        model = solver.solve()
        if model is None:
            raise UnsatisfiableError("provenance constraints are unsatisfiable")
        self._maybe_export(solver, cnf, cost_ids, model)
        best = self._model_cost_vars(model, cost_ids)
        calls = 1
        low, high = 0, len(best) - 1
        optimal = True
        while low <= high:
            if deadline is not None and time.perf_counter() > deadline:
                optimal = False
                break
            middle = (low + high) // 2
            probe_solver, probe_cnf, probe_ids = self._build()
            probe_solver.deadline = deadline
            inputs = [probe_ids[name] for name in sorted(probe_ids)]
            if inputs:
                counter_cnf = CNF(pool=probe_cnf.pool)
                outputs = sequential_counter(counter_cnf, inputs, width=middle + 1)
                probe_solver.add_clauses(counter_cnf.clauses)
                if middle < len(inputs):
                    probe_solver.add_clause((-outputs[middle],))
            try:
                model = probe_solver.solve()
            except BudgetExceededError:
                optimal = False
                break
            calls += 1
            if model is None:
                low = middle + 1
            else:
                candidate = self._model_cost_vars(model, probe_ids)
                if len(candidate) < len(best):
                    best = candidate
                high = len(best) - 1 if len(best) - 1 < middle else middle - 1
        return MinOnesResult(best, len(best), optimal, calls)

    # -- Naive-M: model enumeration -------------------------------------------

    def enumerate_models(
        self, max_models: int, *, time_budget: float | None = None
    ) -> EnumerationResult:
        """The Basic strategy (Algorithm 1): enumerate up to ``max_models`` models.

        Each found model is blocked on the cost variables, so subsequent calls
        return a different *witness* (the paper blocks the full model; blocking
        on tuple variables only makes the baseline slightly stronger, never
        weaker).  ``time_budget`` bounds the whole enumeration in seconds;
        when it fires mid-solve the models found so far are returned with
        ``exhausted=False`` (an empty-handed timeout re-raises).
        """
        if max_models <= 0:
            raise SolverError("max_models must be positive")
        solver, cnf, cost_ids = self._build()
        if time_budget is not None:
            solver.deadline = time.perf_counter() + time_budget
        result = EnumerationResult()
        for _ in range(max_models):
            try:
                model = solver.solve()
            except BudgetExceededError:
                if result.best is None:
                    raise
                break
            result.solver_calls += 1
            if model is None:
                result.exhausted = True
                break
            if result.solver_calls == 1:
                # First model: the clause database holds only base-CNF-implied
                # clauses (no blocking clause yet), so it is exportable.
                self._maybe_export(solver, cnf, cost_ids, model)
            witness = self._model_cost_vars(model, cost_ids)
            result.models.append(witness)
            if result.best is None or len(witness) < len(result.best):
                result.best = witness
            blocking = []
            for name, var in cost_ids.items():
                blocking.append(-var if name in witness else var)
            if not blocking:
                result.exhausted = True
                break
            solver.add_clause(blocking)
        if result.best is None:
            raise UnsatisfiableError("provenance constraints are unsatisfiable")
        return result


def solve_min_ones(
    constraints: Sequence[BoolExpr],
    *,
    cost_variables: Iterable[str] | None = None,
    foreign_keys: Sequence[ForeignKeyClause] = (),
    strategy: Strategy = "descend",
    time_budget: float | None = None,
    clause_cache: ClauseCache | None = None,
) -> MinOnesResult:
    """Convenience wrapper: build a problem and minimise it in one call."""
    problem = MinOnesProblem()
    for constraint in constraints:
        problem.add_constraint(constraint)
    if cost_variables is not None:
        problem.cost_variables.update(cost_variables)
    for fk in foreign_keys:
        problem.add_foreign_key(fk.child, fk.parents)
    return MinOnesSolver(problem, clause_cache=clause_cache).minimize(
        strategy=strategy, time_budget=time_budget
    )
