"""Result types returned by the min-ones and aggregate solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class MinOnesResult:
    """Outcome of a min-ones optimisation over Boolean provenance.

    ``true_variables`` are the provenance variables (tuple identifiers) set to
    true in the best model found; ``optimal`` records whether the solver
    proved that no smaller model exists.
    """

    true_variables: frozenset[str]
    cost: int
    optimal: bool
    solver_calls: int
    models_examined: int = 1

    @property
    def size(self) -> int:
        return self.cost


@dataclass(frozen=True)
class AggregateSolveResult:
    """Outcome of the aggregate (SMT-lite) branch-and-bound solver."""

    true_variables: frozenset[str]
    parameter_values: Mapping[str, Any]
    cost: int
    optimal: bool
    nodes_explored: int
    timed_out: bool = False

    @property
    def size(self) -> int:
        return self.cost


@dataclass
class EnumerationResult:
    """Outcome of Naive-* model enumeration (Algorithm 1 / Figure 5)."""

    models: list[frozenset[str]] = field(default_factory=list)
    best: frozenset[str] | None = None
    exhausted: bool = False
    solver_calls: int = 0

    @property
    def best_cost(self) -> int | None:
        return None if self.best is None else len(self.best)
