"""A small instrumented LRU mapping shared by the long-lived caches.

A grading *process* could tolerate unbounded memoisation — it dies with the
batch.  A grading *server* cannot: the per-session result memo and the
dataset-registry handle cache both live for weeks and see submitter-chosen
keys, so each is bounded by an :class:`LRUCache` with a ``max_entries`` knob
and hit/miss/eviction counters (surfaced by ``cache_info()`` methods and the
server's ``/metrics`` endpoint).

The class deliberately implements only the operations those caches use —
``get``/``__setitem__``/``__delitem__``/iteration/``clear`` — rather than the
full ``MutableMapping`` protocol, so every read path is explicit about
whether it counts toward the hit ratio (``get(..., record=False)`` for
double-checked lookups that would otherwise double-count).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class LRUCache:
    """Insertion-ordered dict bounded to ``max_entries``, evicting oldest first.

    ``max_entries`` may be changed at any time; the bound is enforced on the
    next insertion.  A bound of ``None`` (or a negative value) disables
    eviction.  Reads through :meth:`get` refresh recency and update the
    ``hits``/``misses`` counters; evictions update ``evictions``.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        self.max_entries = max_entries
        self._data: dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Any, default: Any = None, *, record: bool = True) -> Any:
        """The cached value (refreshed to most-recently-used) or ``default``.

        ``record=False`` leaves the hit/miss counters untouched — for
        double-checked locking patterns where the same logical lookup runs
        twice.
        """
        try:
            value = self._data.pop(key)
        except KeyError:
            if record:
                self.misses += 1
            return default
        self._data[key] = value
        if record:
            self.hits += 1
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        self._data.pop(key, None)
        self._data[key] = value
        if self.max_entries is not None and self.max_entries >= 0:
            while len(self._data) > self.max_entries:
                oldest = next(iter(self._data))
                del self._data[oldest]
                self.evictions += 1

    def __delitem__(self, key: Any) -> None:
        del self._data[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def keys(self) -> Iterable[Any]:
        return self._data.keys()

    def values(self) -> Iterable[Any]:
        return self._data.values()

    def items(self) -> Iterable[tuple[Any, Any]]:
        return self._data.items()

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive clears)."""
        self._data.clear()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
