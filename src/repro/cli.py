"""Command-line interface for the RATest reproduction.

Three subcommands cover the common workflows:

``demo``
    Run the paper's running example end to end and print the counterexample.

``explain``
    Read a reference query and a test query (RA DSL text, from files or
    inline), evaluate them on one of the built-in datasets and print the
    smallest-counterexample report.

``experiments``
    Re-run the paper's tables and figures at a chosen scale profile and write
    the markdown report.

Examples::

    python -m repro.cli demo
    python -m repro.cli explain --dataset university:200 \
        --correct correct.ra --test submission.ra
    python -m repro.cli experiments --profile quick --output results.md
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.catalog.instance import DatabaseInstance
from repro.datagen import (
    beers_instance,
    toy_beers_instance,
    toy_university_instance,
    tpch_instance,
    university_instance,
)
from repro.errors import ReproError
from repro.ratest import RATest


def load_dataset(spec: str, *, seed: int = 0) -> DatabaseInstance:
    """Build a dataset instance from a spec like ``university:500`` or ``tpch:0.1``.

    Supported datasets: ``toy-university``, ``university[:num_students]``,
    ``toy-beers``, ``beers[:num_drinkers]``, ``tpch[:scale]``.
    """
    name, _, argument = spec.partition(":")
    if name == "toy-university":
        return toy_university_instance()
    if name == "university":
        return university_instance(int(argument or 50), seed=seed)
    if name == "toy-beers":
        return toy_beers_instance()
    if name == "beers":
        return beers_instance(num_drinkers=int(argument or 40), seed=seed)
    if name == "tpch":
        return tpch_instance(float(argument or 0.1), seed=seed)
    raise ReproError(
        f"unknown dataset {spec!r}; expected toy-university, university[:N], "
        "toy-beers, beers[:N] or tpch[:scale]"
    )


def _read_query(value: str) -> str:
    """Treat the argument as a file path when it exists, otherwise as DSL text."""
    path = Path(value)
    if path.exists():
        return path.read_text()
    return value


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.workload import course_questions

    instance = toy_university_instance()
    question = course_questions()[1]
    tool = RATest(instance)
    outcome = tool.check(question.correct_query, question.handwritten_wrong_queries[0])
    print(f"Question: {question.prompt}\n")
    print(outcome.render())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    instance = load_dataset(args.dataset, seed=args.seed)
    tool = RATest(instance)
    correct = _read_query(args.correct)
    test = _read_query(args.test)
    outcome = tool.check(correct, test, algorithm=args.algorithm)
    print(outcome.render())
    if outcome.correct:
        return 0
    return 1 if outcome.report is not None else 2


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import generate_report, run_all_experiments

    results = run_all_experiments(args.profile)
    report = generate_report(results)
    if args.output == "-":
        print(report)
    else:
        Path(args.output).write_text(report)
        print(f"wrote {args.output} ({sum(len(r.rows) for r in results.values())} rows)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RATest reproduction: smallest counterexamples for wrong queries"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the paper's running example")
    demo.set_defaults(func=_cmd_demo)

    explain = subparsers.add_parser("explain", help="explain why two queries differ")
    explain.add_argument("--dataset", default="toy-university", help="dataset spec, e.g. university:200")
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--correct", required=True, help="reference query (RA DSL text or file path)")
    explain.add_argument("--test", required=True, help="test query (RA DSL text or file path)")
    explain.add_argument("--algorithm", default="auto", help="auto, basic, optsigma, agg-basic, agg-opt, ...")
    explain.set_defaults(func=_cmd_explain)

    experiments = subparsers.add_parser("experiments", help="re-run the paper's tables and figures")
    experiments.add_argument("--profile", default="quick", choices=["quick", "paper"])
    experiments.add_argument("--output", default="-", help="output markdown file, or - for stdout")
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
