"""Command-line interface for the RATest reproduction.

Five subcommands cover the common workflows:

``demo``
    Run the paper's running example end to end and print the counterexample.

``explain``
    Read a reference query and a test query (RA DSL text, from files or
    inline), evaluate them on one of the built-in datasets and print the
    smallest-counterexample report (``--json`` for the machine-readable
    outcome instead of ASCII).

``batch``
    Grade a JSONL stream of submissions concurrently through the
    :class:`~repro.api.service.GradingService` and write one JSON grade per
    line.  Each input line is a :class:`~repro.api.service.SubmissionRequest`
    payload, e.g.::

        {"id": "alice/q1", "dataset": "university:200",
         "correct": "\\project_{name} Student", "test": "Student"}

    With ``--server URL`` the same stream is graded by a running grading
    daemon instead of in process (the CLI client mode); each grade then also
    records whether it was served from the daemon's persistent result store.

``serve``
    Run the grading daemon: an HTTP frontend over a pool of worker processes
    and a persistent SQLite result store (see :mod:`repro.server`).  With
    ``--cluster-self NAME`` and repeated ``--peer NAME=URL`` flags the daemon
    joins a shared-nothing cluster: requests for ``(dataset, seed)`` keys it
    does not own are proxied to the owning peer (see :mod:`repro.cluster`).

``cluster``
    Boot and supervise N ``serve`` daemons on this host as one cluster —
    the one-command way to run a multi-shard grading service locally.

``experiments``
    Re-run the paper's tables and figures at a chosen scale profile and write
    the markdown report.

Examples::

    python -m repro.cli demo
    python -m repro.cli explain --dataset university:200 \
        --correct correct.ra --test submission.ra
    python -m repro.cli batch --input submissions.jsonl --workers 8
    python -m repro.cli serve --port 8080 --workers 4 --store grades.sqlite3
    python -m repro.cli batch --server http://127.0.0.1:8080 \
        --input submissions.jsonl
    python -m repro.cli cluster --shards 4 --base-port 9000 --workers 2
    python -m repro.cli experiments --profile quick --output results.md
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import __version__
from repro.api import GradingService, SubmissionRequest, default_registry
from repro.catalog.instance import DatabaseInstance
from repro.engine.backends import BACKEND_NAMES
from repro.errors import ReproError
from repro.ratest import RATest


def load_dataset(spec: str, *, seed: int = 0) -> DatabaseInstance:
    """Build a dataset instance from a spec like ``university:500`` or ``tpch:0.1``.

    Supported datasets: ``toy-university``, ``university[:num_students]``,
    ``toy-beers``, ``beers[:num_drinkers]``, ``tpch[:scale]`` — plus anything
    registered on the default :class:`~repro.api.registry.DatasetRegistry`.
    Returns a fresh, caller-owned instance (the grading service resolves
    shared cached handles instead).
    """
    return default_registry().build(spec, seed=seed)


def _read_query(value: str) -> str:
    """Treat the argument as a file path when it exists, otherwise as DSL text."""
    path = Path(value)
    if path.exists():
        return path.read_text()
    return value


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.datagen import toy_university_instance
    from repro.workload import course_questions

    instance = toy_university_instance()
    question = course_questions()[1]
    tool = RATest(instance)
    outcome = tool.check(question.correct_query, question.handwritten_wrong_queries[0])
    print(f"Question: {question.prompt}\n")
    print(outcome.render())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    instance = load_dataset(args.dataset, seed=args.seed)
    tool = RATest(instance, backend=args.backend)
    correct = _read_query(args.correct)
    test = _read_query(args.test)
    analyses: dict[str, object] = {}
    if args.analyze:
        # Analyze before grading: the session memo is still cold, so the
        # operator tree shows real per-operator rows and timings instead of
        # one cached root.  Queries that fail to parse or validate are
        # reported by the grade outcome below, not here.
        for label, text in (("reference", correct), ("submission", test)):
            try:
                analyses[label] = tool.session.explain_analyze(tool.parse(text))
            except Exception as exc:  # noqa: BLE001 — keep grading anyway
                analyses[label] = f"not analyzable: {exc}"
    outcome = tool.check(correct, test, algorithm=args.algorithm)
    if args.json:
        payload = outcome.to_dict()
        if args.analyze:
            payload["analyze"] = {
                label: analysis.to_dict() if hasattr(analysis, "to_dict") else str(analysis)
                for label, analysis in analyses.items()
            }
        print(json.dumps(payload, indent=2))
    else:
        print(outcome.render())
        for label, analysis in analyses.items():
            print(f"\nEXPLAIN ANALYZE ({label} query):")
            print(analysis.render() if hasattr(analysis, "render") else f"  {analysis}")
    if outcome.correct:
        return 0
    return 1 if outcome.report is not None else 2


#: Error kinds that mean the *tool or request* failed, not the submission —
#: a batch run containing one exits nonzero so pipelines notice.
OPERATIONAL_ERROR_KINDS = {
    "invalid_request",
    "internal_error",
    "solver_error",
    "not_applicable",
    "overloaded",
    "unavailable",
}


def _read_requests(args: argparse.Namespace) -> list[SubmissionRequest]:
    if args.input == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            lines = Path(args.input).read_text().splitlines()
        except OSError as exc:
            raise ReproError(f"cannot read {args.input}: {exc}") from None
    requests = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{args.input}:{number}: not valid JSON: {exc}") from None
        try:
            requests.append(SubmissionRequest.from_dict(payload))
        except ReproError as exc:
            raise ReproError(f"{args.input}:{number}: {exc}") from None
    return requests


def _write_jsonl(args: argparse.Namespace, payloads: list[dict]) -> None:
    out_lines = [json.dumps(payload, sort_keys=True) for payload in payloads]
    text = "\n".join(out_lines) + ("\n" if out_lines else "")
    if args.output == "-":
        sys.stdout.write(text)
    else:
        try:
            Path(args.output).write_text(text)
        except OSError as exc:
            raise ReproError(f"cannot write {args.output}: {exc}") from None


def _cmd_batch(args: argparse.Namespace) -> int:
    requests = _read_requests(args)

    if args.server:
        # CLI client mode: grade through a running daemon instead of in
        # process, so repeated workloads hit its persistent result store.
        from repro.server.client import GradingClient

        with GradingClient(args.server) as client:
            envelopes = client.grade_batch(requests)
        _write_jsonl(args, envelopes)
        num_correct = sum(1 for envelope in envelopes if envelope["correct"])
        num_error = sum(
            1 for envelope in envelopes if envelope["outcome"].get("error") is not None
        )
        num_hits = sum(1 for envelope in envelopes if envelope.get("store") == "hit")
        print(
            f"graded {len(envelopes)} submissions via {args.server}: "
            f"{num_correct} correct, {len(envelopes) - num_correct - num_error} wrong, "
            f"{num_error} errors, {num_hits} served from the result store",
            file=sys.stderr,
        )
        error_kinds = {envelope["outcome"].get("error_kind") for envelope in envelopes}
        return 1 if error_kinds & OPERATIONAL_ERROR_KINDS else 0

    service = GradingService(
        default_dataset=args.dataset, default_seed=args.seed, backend=args.backend
    )
    graded = service.submit_batch(requests, workers=args.workers)
    _write_jsonl(args, [result.to_dict() for result in graded])
    num_correct = sum(1 for result in graded if result.correct)
    num_error = sum(1 for result in graded if result.outcome.error is not None)
    print(
        f"graded {len(graded)} submissions with {args.workers} worker(s): "
        f"{num_correct} correct, {len(graded) - num_correct - num_error} wrong, "
        f"{num_error} errors",
        file=sys.stderr,
    )
    # Submission-level failures (a student's unparsable query) are grades,
    # not tool failures; operational failures (unknown dataset, internal
    # error) make the run exit nonzero so pipelines notice.
    if any(result.outcome.error_kind in OPERATIONAL_ERROR_KINDS for result in graded):
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import GradingServer, ServerConfig

    if bool(args.cluster_self) != bool(args.peer):
        raise ReproError("--cluster-self and --peer must be used together")
    if args.log_json:
        from repro.obs.logging import configure_json_logging

        configure_json_logging()
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        default_dataset=args.dataset,
        default_seed=args.seed,
        store_path=None if args.store == ":memory:" else args.store,
        warm_datasets=tuple(args.warm),
        max_queue=args.max_queue,
        verbose=args.verbose,
        cluster_self=args.cluster_self,
        cluster_peers=tuple(args.peer),
        cluster_virtual_nodes=args.virtual_nodes,
        cluster_heartbeat_interval=args.heartbeat_interval,
        cluster_forward=not args.no_forward,
        slow_request_seconds=args.slow_request,
    )
    server = GradingServer(config)
    cluster_note = (
        f", cluster={args.cluster_self}/{len(args.peer)} peers" if args.cluster_self else ""
    )
    print(
        f"repro-serve {__version__} listening on http://{server.host}:{server.port} "
        f"(workers={config.workers}, backend={config.backend}, store={args.store}"
        f"{cluster_note})",
        file=sys.stderr,
        flush=True,
    )
    server.serve_forever(install_signal_handlers=True)
    print("repro-serve drained and stopped", file=sys.stderr)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.cluster.supervisor import ClusterSupervisor

    ports = None
    if args.base_port:
        ports = [args.base_port + index for index in range(args.shards)]
    supervisor = ClusterSupervisor(
        args.shards,
        host=args.host,
        ports=ports,
        workers=args.workers,
        backend=args.backend,
        store_dir=args.store_dir,
        warm_datasets=tuple(args.warm),
        max_queue=args.max_queue,
        restart=not args.no_restart,
        verbose=args.verbose,
    )
    print(
        f"repro-cluster {__version__}: booting {args.shards} shard(s) "
        f"({', '.join(supervisor.peer_specs)})",
        file=sys.stderr,
        flush=True,
    )
    try:
        supervisor.start(wait_healthy=True, timeout=args.boot_timeout)
    except ReproError:
        supervisor.stop()
        raise
    print("repro-cluster: all shards healthy", file=sys.stderr, flush=True)
    # SIGTERM must tear the shards down too — the supervisor's children are
    # independent process trees and would outlive a killed supervisor.
    # (Background jobs in shell scripts ignore SIGINT, so TERM is the signal
    # deployment scripts actually send.)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    try:
        while not stop.wait(timeout=1.0):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
        print("repro-cluster stopped", file=sys.stderr)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import generate_report, run_all_experiments

    results = run_all_experiments(args.profile)
    report = generate_report(results)
    if args.output == "-":
        print(report)
    else:
        Path(args.output).write_text(report)
        print(f"wrote {args.output} ({sum(len(r.rows) for r in results.values())} rows)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RATest reproduction: smallest counterexamples for wrong queries"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the paper's running example")
    demo.set_defaults(func=_cmd_demo)

    explain = subparsers.add_parser("explain", help="explain why two queries differ")
    explain.add_argument("--dataset", default="toy-university", help="dataset spec, e.g. university:200")
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--correct", required=True, help="reference query (RA DSL text or file path)")
    explain.add_argument("--test", required=True, help="test query (RA DSL text or file path)")
    explain.add_argument("--algorithm", default="auto", help="auto, basic, optsigma, agg-basic, agg-opt, ...")
    explain.add_argument(
        "--backend",
        default="python",
        choices=list(BACKEND_NAMES),
        help="execution backend for set-semantics evaluation",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="also print EXPLAIN ANALYZE for both queries: per-operator actual "
        "vs estimated rows (q-error), wall time and cache/index attribution",
    )
    explain.add_argument("--json", action="store_true", help="print the outcome as JSON instead of ASCII")
    explain.set_defaults(func=_cmd_explain)

    batch = subparsers.add_parser("batch", help="grade a JSONL stream of submissions")
    batch.add_argument("--input", default="-", help="JSONL submissions file, or - for stdin")
    batch.add_argument("--output", default="-", help="JSONL grades file, or - for stdout")
    batch.add_argument("--workers", type=int, default=1, help="concurrent grading workers")
    batch.add_argument(
        "--dataset", default="toy-university", help="dataset spec for lines without one"
    )
    batch.add_argument("--seed", type=int, default=0, help="seed for lines without one")
    batch.add_argument(
        "--backend",
        default="python",
        choices=list(BACKEND_NAMES),
        help="execution backend for set-semantics evaluation",
    )
    batch.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="grade through a running 'repro serve' daemon at URL instead of in process "
        "(--workers/--dataset/--seed/--backend then follow the daemon's configuration)",
    )
    batch.set_defaults(func=_cmd_batch)

    serve = subparsers.add_parser(
        "serve", help="run the grading daemon (worker pool + persistent result store)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="listen port (0 picks a free one)"
    )
    serve.add_argument("--workers", type=int, default=2, help="grading worker processes")
    serve.add_argument(
        "--store",
        default="repro-store.sqlite3",
        help="path of the persistent SQLite result store (':memory:' disables durability)",
    )
    serve.add_argument(
        "--dataset", default="toy-university", help="default dataset spec for requests without one"
    )
    serve.add_argument("--seed", type=int, default=0, help="default seed for requests without one")
    serve.add_argument(
        "--backend",
        default="python",
        choices=list(BACKEND_NAMES),
        help="execution backend for set-semantics evaluation",
    )
    serve.add_argument(
        "--warm",
        action="append",
        default=[],
        metavar="SPEC",
        help="extra dataset spec each worker warms at startup (repeatable)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, help="in-flight requests before answering 429"
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request to stderr"
    )
    serve.add_argument(
        "--slow-request",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="requests slower than this land in the slow-request log "
        "(GET /v1/debug/traces)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log lines (with trace/span ids) to stderr",
    )
    serve.add_argument(
        "--cluster-self",
        default=None,
        metavar="NAME",
        help="this daemon's logical peer name (e.g. shard-0); enables clustering",
    )
    serve.add_argument(
        "--peer",
        action="append",
        default=[],
        metavar="NAME=URL",
        help="a cluster peer (repeatable; must include --cluster-self and be "
        "identical on every peer)",
    )
    serve.add_argument(
        "--virtual-nodes", type=int, default=64, help="ring points per peer"
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=0.5, help="peer probe period (s)"
    )
    serve.add_argument(
        "--no-forward",
        action="store_true",
        help="grade non-owned keys locally instead of proxying to their owner "
        "(the cross-shard store tier stays active)",
    )
    serve.set_defaults(func=_cmd_serve)

    cluster = subparsers.add_parser(
        "cluster", help="boot and supervise N grading daemons on this host"
    )
    cluster.add_argument("--shards", type=int, default=3, help="number of daemons")
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--base-port",
        type=int,
        default=9000,
        metavar="PORT",
        help="shard i listens on PORT+i (0 picks free ephemeral ports)",
    )
    cluster.add_argument(
        "--workers", type=int, default=2, help="grading worker processes per shard"
    )
    cluster.add_argument(
        "--backend", default="python", choices=list(BACKEND_NAMES),
        help="execution backend for set-semantics evaluation",
    )
    cluster.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="directory for per-shard SQLite stores (omit for in-memory stores)",
    )
    cluster.add_argument(
        "--warm", action="append", default=[], metavar="SPEC",
        help="extra dataset spec each worker warms at startup (repeatable)",
    )
    cluster.add_argument(
        "--max-queue", type=int, default=64,
        help="per-shard in-flight requests before answering 429",
    )
    cluster.add_argument(
        "--boot-timeout", type=float, default=60.0,
        help="seconds to wait for every shard to become healthy",
    )
    cluster.add_argument(
        "--no-restart", action="store_true", help="do not respawn shards that die"
    )
    cluster.add_argument(
        "--verbose", action="store_true", help="pass --verbose to every shard"
    )
    cluster.set_defaults(func=_cmd_cluster)

    experiments = subparsers.add_parser("experiments", help="re-run the paper's tables and figures")
    experiments.add_argument("--profile", default="quick", choices=["quick", "paper"])
    experiments.add_argument("--output", default="-", help="output markdown file, or - for stdout")
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
