"""RATest reproduction: explaining wrong queries using small counterexamples.

This package reproduces the system described in "Explaining Wrong Queries
Using Small Examples" (Miao, Roy, Yang — SIGMOD 2019): given a reference
query, a test query and a database instance on which they disagree, find the
smallest sub-instance on which they still disagree.

Typical usage, one submission at a time::

    from repro import RATest
    from repro.datagen import university_instance

    instance = university_instance(num_students=50, seed=7)
    tool = RATest(instance)
    outcome = tool.check(correct_query, student_query)
    print(outcome.render())

or as a service grading whole batches concurrently::

    from repro import GradingService, SubmissionRequest

    service = GradingService(default_dataset="university:200")
    graded = service.submit_batch(
        [SubmissionRequest(reference_text, submission_text, id="alice/q1"), ...],
        workers=8,
    )
    print(graded[0].to_dict())   # versioned, JSON-serializable result schema
"""

from repro.api import (
    SCHEMA_VERSION,
    DatasetRegistry,
    GradedSubmission,
    GradingService,
    SubmissionRequest,
)
from repro.core import (
    CounterexampleResult,
    SmallestCounterexampleFinder,
    find_smallest_counterexample,
    find_smallest_witness,
)
from repro.engine import EngineSession
from repro.ratest import AutoGrader, Question, RATest, RATestReport, SubmissionOutcome

#: Single source of truth for the package version: ``setup.py`` parses this
#: assignment, ``repro --version`` prints it, and the server's ``/healthz``
#: reports it, so a deployment can always be traced back to a build.
__version__ = "1.3.0"

__all__ = [
    "AutoGrader",
    "CounterexampleResult",
    "DatasetRegistry",
    "EngineSession",
    "GradedSubmission",
    "GradingService",
    "Question",
    "RATest",
    "RATestReport",
    "SCHEMA_VERSION",
    "SmallestCounterexampleFinder",
    "SubmissionOutcome",
    "SubmissionRequest",
    "find_smallest_counterexample",
    "find_smallest_witness",
    "__version__",
]
