"""RATest reproduction: explaining wrong queries using small counterexamples.

This package reproduces the system described in "Explaining Wrong Queries
Using Small Examples" (Miao, Roy, Yang — SIGMOD 2019): given a reference
query, a test query and a database instance on which they disagree, find the
smallest sub-instance on which they still disagree.

Typical usage::

    from repro import RATest
    from repro.datagen import university_instance

    instance = university_instance(num_students=50, seed=7)
    tool = RATest(instance)
    outcome = tool.check(correct_query, student_query)
    print(outcome.render())
"""

from repro.core import (
    CounterexampleResult,
    SmallestCounterexampleFinder,
    find_smallest_counterexample,
    find_smallest_witness,
)
from repro.engine import EngineSession
from repro.ratest import AutoGrader, Question, RATest, RATestReport

__version__ = "1.1.0"

__all__ = [
    "AutoGrader",
    "CounterexampleResult",
    "EngineSession",
    "Question",
    "RATest",
    "RATestReport",
    "SmallestCounterexampleFinder",
    "find_smallest_counterexample",
    "find_smallest_witness",
    "__version__",
]
