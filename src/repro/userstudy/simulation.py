"""Stochastic simulation of the user study cohort (§8).

The paper reports a user study with ~170 students who optionally used RATest
for five of ten relational-algebra homework problems.  Real students are not
available to a reproduction, so this module simulates a cohort whose
behavioural model encodes the paper's qualitative findings and whose
parameters are calibrated to its reported marginals:

* most students (≈80%) try RATest at least once, and more diligent students
  use it more;
* easy problems are solved by nearly everyone regardless of tooling;
* on the hard problems (g) and (i), iterating against counterexample feedback
  raises the chance of ending with a correct query;
* skill acquired by debugging (i) with RATest *transfers* to the similar
  problem (h) but not to the dissimilar problem (j);
* procrastinators (first use one day before the deadline) get less benefit.

The analysis pipeline in :mod:`repro.userstudy.analysis` recomputes the
paper's Figure 8, Table 5, Figure 9 and Figure 10 from the simulated cohort.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.workload.beers_questions import beers_problems

#: Problems for which RATest was available in the study.
RATEST_AVAILABLE = ("b", "d", "e", "g", "i")
#: All graded problems we track (the paper's analysis focuses on these).
TRACKED_PROBLEMS = ("b", "d", "e", "g", "h", "i", "j")

_DIFFICULTY = {"b": 1, "d": 2, "e": 3, "g": 4, "h": 4, "i": 5, "j": 5}
_SIMILAR_TO_I = "h"
_DISSIMILAR_TO_I = "j"


@dataclass(frozen=True)
class StudentProfile:
    """Latent per-student traits driving the simulation."""

    student_id: int
    ability: float          # 0..1, query-writing skill
    diligence: float        # 0..1, willingness to iterate
    uses_ratest: bool       # opted in to the optional tool
    days_before_due: int    # when the student started the hard problems (1..7)


@dataclass
class ProblemOutcome:
    """Simulated outcome of one student on one problem."""

    problem: str
    used_ratest: bool
    attempts: int
    attempts_before_correct: int | None
    correct: bool
    score: float


@dataclass
class StudentRecord:
    profile: StudentProfile
    outcomes: dict[str, ProblemOutcome] = field(default_factory=dict)


@dataclass
class SurveyResponse:
    """One anonymous questionnaire response (Figure 10)."""

    counterexamples_helped: str      # Likert: strongly agree .. strongly disagree
    would_use_again: str
    most_helpful_problems: tuple[str, ...]


@dataclass
class CohortResult:
    """The full simulated study: per-student records plus survey responses."""

    students: list[StudentRecord]
    survey: list[SurveyResponse]
    problems: tuple[str, ...] = TRACKED_PROBLEMS

    @property
    def num_students(self) -> int:
        return len(self.students)


def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + math.exp(-x))


def _solve_probability(ability: float, difficulty: int) -> float:
    """Chance of getting the problem right in a single unaided attempt."""
    return _sigmoid(3.5 * ability - 1.15 * difficulty + 2.3)


def simulate_cohort(num_students: int = 169, *, seed: int = 2018) -> CohortResult:
    """Simulate the full cohort; deterministic for a given seed."""
    rng = random.Random(seed)
    students: list[StudentRecord] = []
    problem_difficulty = dict(_DIFFICULTY)
    for problem in beers_problems():
        problem_difficulty.setdefault(problem.key, problem.difficulty)

    for student_id in range(num_students):
        ability = rng.betavariate(5, 2)
        diligence = rng.betavariate(4, 2)
        uses_ratest = rng.random() < 0.45 + 0.5 * diligence
        days_before_due = rng.choices((7, 5, 4, 3, 2, 1), weights=(15, 22, 20, 12, 10, 21))[0]
        profile = StudentProfile(student_id, ability, diligence, uses_ratest, days_before_due)
        record = StudentRecord(profile)

        transfer_bonus = 0.0
        # Simulate (i) before (h) so the learning-transfer effect of debugging
        # (i) with RATest can influence the similar problem (h).
        simulation_order = ("b", "d", "e", "g", "i", "h", "j")
        for problem_key in simulation_order:
            difficulty = problem_difficulty[problem_key]
            available = problem_key in RATEST_AVAILABLE
            effective_ability = ability
            if problem_key == _SIMILAR_TO_I and "i" in record.outcomes:
                # Learning effect: debugging (i) with RATest helps on the similar (h).
                transfer_bonus = 0.18 if record.outcomes["i"].used_ratest else 0.0
                effective_ability = min(1.0, ability + transfer_bonus)
            outcome = _simulate_problem(
                rng, profile, problem_key, difficulty, available, effective_ability
            )
            record.outcomes[problem_key] = outcome
        students.append(record)

    survey = _simulate_survey(rng, students)
    return CohortResult(students=students, survey=survey)


def _simulate_problem(
    rng: random.Random,
    profile: StudentProfile,
    problem_key: str,
    difficulty: int,
    ratest_available: bool,
    ability: float,
) -> ProblemOutcome:
    single_try = _solve_probability(ability, difficulty)
    uses_tool = ratest_available and profile.uses_ratest and rng.random() < (
        0.55 + 0.1 * difficulty
    )

    if not uses_tool:
        # One or two blind attempts against the sample database.
        attempts = 1 + (rng.random() < 0.4)
        correct = rng.random() < 1 - (1 - single_try) ** attempts
        score = _score(rng, correct, ability, difficulty)
        return ProblemOutcome(problem_key, False, attempts, 1 if correct else None, correct, score)

    # RATest users iterate: each attempt that fails yields a counterexample and
    # a boosted retry.  Procrastinators run out of attempts.
    max_attempts = max(2, round(2 + 2.5 * difficulty * profile.diligence))
    if profile.days_before_due <= 1:
        max_attempts = 2
    elif profile.days_before_due == 2:
        max_attempts = max(2, max_attempts // 2)
    boost_per_attempt = max(0.10, 0.38 - 0.055 * difficulty)
    attempts = 0
    correct = False
    attempts_before_correct: int | None = None
    probability = single_try
    while attempts < max_attempts:
        attempts += 1
        if rng.random() < probability:
            correct = True
            attempts_before_correct = attempts
            break
        probability = min(0.97, probability + boost_per_attempt)
    # Some students keep poking at the tool after succeeding (observed in the log).
    extra_pokes = rng.choices((0, 1, 2, 5), weights=(70, 18, 8, 4))[0]
    score = _score(rng, correct, ability, difficulty, used_ratest=True)
    return ProblemOutcome(
        problem_key, True, attempts + extra_pokes, attempts_before_correct, correct, score
    )


def _score(
    rng: random.Random, correct: bool, ability: float, difficulty: int, *, used_ratest: bool = False
) -> float:
    if correct:
        return 100.0
    # Partial credit from manual grading of a wrong final submission.
    base = 45 + 35 * ability - 4 * difficulty + (6 if used_ratest else 0)
    return float(max(0.0, min(95.0, rng.gauss(base, 14))))


def _simulate_survey(rng: random.Random, students: list[StudentRecord]) -> list[SurveyResponse]:
    responses: list[SurveyResponse] = []
    likert = ("strongly agree", "agree", "neutral", "disagree", "strongly disagree")
    for record in students:
        if not record.profile.uses_ratest or rng.random() > 0.95:
            continue
        helped_weights = (28, 42, 18, 9, 3)
        again_weights = (55, 38, 5, 1, 1)
        helpful: list[str] = []
        if rng.random() < 0.94:
            helpful.append("i")
        if rng.random() < 0.58:
            helpful.append("g")
        for easy in ("b", "d", "e"):
            if rng.random() < 0.18:
                helpful.append(easy)
        responses.append(
            SurveyResponse(
                counterexamples_helped=rng.choices(likert, weights=helped_weights)[0],
                would_use_again=rng.choices(likert, weights=again_weights)[0],
                most_helpful_problems=tuple(helpful),
            )
        )
    return responses
