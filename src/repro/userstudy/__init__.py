"""Simulated user study (§8): cohort model and analysis pipeline."""

from repro.userstudy.analysis import (
    headline_findings,
    score_comparison,
    survey_summary,
    transfer_analysis,
    usage_statistics,
)
from repro.userstudy.simulation import (
    RATEST_AVAILABLE,
    TRACKED_PROBLEMS,
    CohortResult,
    ProblemOutcome,
    StudentProfile,
    StudentRecord,
    SurveyResponse,
    simulate_cohort,
)

__all__ = [
    "CohortResult",
    "ProblemOutcome",
    "RATEST_AVAILABLE",
    "StudentProfile",
    "StudentRecord",
    "SurveyResponse",
    "TRACKED_PROBLEMS",
    "headline_findings",
    "score_comparison",
    "simulate_cohort",
    "survey_summary",
    "transfer_analysis",
    "usage_statistics",
]
