"""Analysis pipeline for the (simulated) user study: Figures 8–10 and Table 5.

Every function takes a :class:`~repro.userstudy.simulation.CohortResult` and
returns a list of plain dictionaries (one per table row), which the benchmarks
and EXPERIMENTS.md render as markdown tables.
"""

from __future__ import annotations

from statistics import mean, pstdev
from typing import Any

from repro.userstudy.simulation import RATEST_AVAILABLE, CohortResult

Row = dict[str, Any]


def usage_statistics(cohort: CohortResult) -> list[Row]:
    """Figure 8: per-problem RATest usage statistics."""
    rows: list[Row] = []
    for problem in RATEST_AVAILABLE:
        users = [
            record.outcomes[problem]
            for record in cohort.students
            if record.outcomes[problem].used_ratest
        ]
        eventually_correct = [outcome for outcome in users if outcome.correct]
        rows.append(
            {
                "problem": problem,
                "num_users": len(users),
                "num_users_correct_eventually": len(eventually_correct),
                "avg_attempts": round(mean(o.attempts for o in users), 2) if users else 0.0,
                "avg_attempts_before_correct": (
                    round(mean(o.attempts_before_correct for o in eventually_correct), 2)
                    if eventually_correct
                    else 0.0
                ),
            }
        )
    return rows


def score_comparison(cohort: CohortResult) -> list[Row]:
    """Table 5: scores of RATest users vs non-users on the problems it covered."""
    rows: list[Row] = []
    for problem in RATEST_AVAILABLE:
        users = [
            record.outcomes[problem].score
            for record in cohort.students
            if record.outcomes[problem].used_ratest
        ]
        non_users = [
            record.outcomes[problem].score
            for record in cohort.students
            if not record.outcomes[problem].used_ratest
        ]
        rows.append(
            {
                "problem": problem,
                "non_users": len(non_users),
                "non_user_mean_score": round(mean(non_users), 2) if non_users else 0.0,
                "non_user_std": round(pstdev(non_users), 2) if len(non_users) > 1 else 0.0,
                "users": len(users),
                "user_mean_score": round(mean(users), 2) if users else 0.0,
                "user_std": round(pstdev(users), 2) if len(users) > 1 else 0.0,
            }
        )
    return rows


def transfer_analysis(cohort: CohortResult) -> list[Row]:
    """Figure 9: did using RATest on (i) transfer to the similar (h) but not (j)?"""
    rows: list[Row] = []
    groups = {
        "did not use RATest on (i)": [
            r for r in cohort.students if not r.outcomes["i"].used_ratest
        ],
        "used RATest on (i)": [r for r in cohort.students if r.outcomes["i"].used_ratest],
    }
    for label, records in groups.items():
        row: Row = {"group": label, "num_students": len(records)}
        for problem in ("i", "h", "j"):
            scores = [r.outcomes[problem].score for r in records]
            row[f"mean_score_{problem}"] = round(mean(scores), 2) if scores else 0.0
            row[f"std_{problem}"] = round(pstdev(scores), 2) if len(scores) > 1 else 0.0
        rows.append(row)

    # Breakdown by when the student started (procrastination effect).
    user_records = groups["used RATest on (i)"]
    buckets = {
        "5-7 days before due": lambda d: d >= 5,
        "3-4 days before due": lambda d: 3 <= d <= 4,
        "2 days before due": lambda d: d == 2,
        "1 day before due": lambda d: d <= 1,
    }
    for label, predicate in buckets.items():
        records = [r for r in user_records if predicate(r.profile.days_before_due)]
        row = {"group": f"first use {label}", "num_students": len(records)}
        for problem in ("i", "h", "j"):
            scores = [r.outcomes[problem].score for r in records]
            row[f"mean_score_{problem}"] = round(mean(scores), 2) if scores else 0.0
            row[f"std_{problem}"] = round(pstdev(scores), 2) if len(scores) > 1 else 0.0
        rows.append(row)
    return rows


def survey_summary(cohort: CohortResult) -> list[Row]:
    """Figure 10: questionnaire response distribution."""
    total = len(cohort.survey)
    if total == 0:
        return []
    likert = ("strongly agree", "agree", "neutral", "disagree", "strongly disagree")

    def distribution(attribute: str) -> Row:
        counts = {level: 0 for level in likert}
        for response in cohort.survey:
            counts[getattr(response, attribute)] += 1
        row: Row = {"question": attribute, "responses": total}
        for level in likert:
            row[level.replace(" ", "_")] = round(100.0 * counts[level] / total, 1)
        return row

    rows = [distribution("counterexamples_helped"), distribution("would_use_again")]
    votes = {problem: 0 for problem in RATEST_AVAILABLE}
    for response in cohort.survey:
        for problem in response.most_helpful_problems:
            votes[problem] += 1
    rows.append(
        {
            "question": "most_helpful_problem_votes_pct",
            "responses": total,
            **{problem: round(100.0 * count / total, 1) for problem, count in votes.items()},
        }
    )
    return rows


def headline_findings(cohort: CohortResult) -> Row:
    """The qualitative claims of §8, computed from the simulated cohort."""
    table5 = {row["problem"]: row for row in score_comparison(cohort)}
    transfer = {row["group"]: row for row in transfer_analysis(cohort)}
    users_better_on_hard = (
        table5["g"]["user_mean_score"] >= table5["g"]["non_user_mean_score"]
        and table5["i"]["user_mean_score"] >= table5["i"]["non_user_mean_score"]
    )
    transfer_to_similar = (
        transfer["used RATest on (i)"]["mean_score_h"]
        >= transfer["did not use RATest on (i)"]["mean_score_h"]
    )
    no_transfer_to_dissimilar = (
        abs(
            transfer["used RATest on (i)"]["mean_score_j"]
            - transfer["did not use RATest on (i)"]["mean_score_j"]
        )
        <= 6.0
    )
    survey = survey_summary(cohort)
    helped = survey[0]["strongly_agree"] + survey[0]["agree"] if survey else 0.0
    return {
        "users_better_on_hard_problems": users_better_on_hard,
        "transfer_to_similar_problem": transfer_to_similar,
        "no_transfer_to_dissimilar_problem": no_transfer_to_dissimilar,
        "pct_agree_counterexamples_helped": helped,
    }
