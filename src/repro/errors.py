"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single exception type at the API boundary while still being able
to distinguish schema problems from parse errors or solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or two schemas are incompatible."""


class TypeMismatchError(SchemaError):
    """A value cannot be coerced to the declared attribute type."""


class UnknownRelationError(SchemaError):
    """A query refers to a relation that is not part of the database schema."""


class UnknownAttributeError(SchemaError):
    """An expression refers to an attribute that is not in scope."""


class ConstraintViolationError(ReproError):
    """A database instance violates one of its declared integrity constraints."""


class QueryEvaluationError(ReproError):
    """Evaluating a relational algebra expression failed."""


class ParseError(ReproError):
    """The relational algebra text DSL could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SolverError(ReproError):
    """The SAT / SMT-lite layer was used incorrectly or hit an internal limit."""


class UnsatisfiableError(SolverError):
    """A formula that was expected to be satisfiable is not."""


class BudgetExceededError(SolverError):
    """A solver exceeded its configured time or iteration budget."""


class CounterexampleError(ReproError):
    """No counterexample exists or the search for one failed."""


class NotApplicableError(ReproError):
    """A specialised algorithm was invoked on a query class it does not support."""
