"""Query mutation operators: generating realistic "wrong" queries.

The paper's §7.1 experiments use real student submissions; those are not
available, so the workload reproduces the error *classes* the paper lists
(different selection conditions, incorrect use of difference, misplaced
projections, missing join predicates) by mutating the correct queries.  Each
mutation changes exactly one thing and preserves the output schema, so every
mutant is a plausible, syntactically valid submission.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.ra.ast import (
    Difference,
    GroupBy,
    Intersection,
    Join,
    RAExpression,
    Selection,
    Union,
)
from repro.ra.predicates import (
    And,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conj,
)

_FLIPPED_OPERATORS = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_RELAXED_OPERATORS = {"<": "<=", ">": ">=", "<=": "<", ">=": ">"}


@dataclass(frozen=True)
class Mutant:
    """A mutated query together with a description of what was changed."""

    query: RAExpression
    description: str


# ---------------------------------------------------------------------------
# Predicate-level rewriting machinery
# ---------------------------------------------------------------------------


def _map_selections(
    expression: RAExpression, transform: Callable[[Predicate, int], Predicate | None]
) -> list[tuple[RAExpression, str]]:
    """Apply ``transform`` to each selection/join predicate position separately.

    ``transform`` receives the predicate and a running index; returning a new
    predicate yields one mutant per position, returning ``None`` skips it.
    """
    mutants: list[tuple[RAExpression, str]] = []
    positions = [
        node
        for node in expression.walk()
        if isinstance(node, Selection) or (isinstance(node, Join) and node.predicate is not None)
    ]
    for index, target in enumerate(positions):
        original = target.predicate if isinstance(target, Selection) else target.predicate
        assert original is not None
        new_predicate = transform(original, index)
        if new_predicate is None or new_predicate == original:
            continue
        mutated = _replace_node_predicate(expression, target, new_predicate)
        mutants.append((mutated, f"predicate #{index}"))
    return mutants


def _replace_node_predicate(
    expression: RAExpression, target: RAExpression, new_predicate: Predicate
) -> RAExpression:
    if expression is target:
        if isinstance(expression, Selection):
            return Selection(expression.child, new_predicate)
        if isinstance(expression, Join):
            return Join(expression.left, expression.right, new_predicate)
    children = expression.children()
    if not children:
        return expression
    new_children = [_replace_node_predicate(child, target, new_predicate) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expression
    return expression.with_children(new_children)


def _comparisons_in(predicate: Predicate) -> list[Comparison]:
    result: list[Comparison] = []

    def visit(node: Predicate) -> None:
        if isinstance(node, Comparison):
            result.append(node)
        elif isinstance(node, (And, Or)):
            for operand in node.operands:
                visit(operand)
        elif isinstance(node, Not):
            visit(node.operand)

    visit(predicate)
    return result


def _replace_comparison(
    predicate: Predicate, target: Comparison, replacement: Comparison | None
) -> Predicate:
    """Replace (or drop, when ``replacement`` is None) one comparison."""
    if predicate is target:
        return replacement if replacement is not None else TruePredicate()
    if isinstance(predicate, And):
        operands = [
            _replace_comparison(op, target, replacement)
            for op in predicate.operands
        ]
        operands = [op for op in operands if not isinstance(op, TruePredicate)]
        return conj(operands)
    if isinstance(predicate, Or):
        return Or(tuple(_replace_comparison(op, target, replacement) for op in predicate.operands))
    if isinstance(predicate, Not):
        return Not(_replace_comparison(predicate.operand, target, replacement))
    return predicate


# ---------------------------------------------------------------------------
# Mutation operators
# ---------------------------------------------------------------------------


def mutate_constants(
    expression: RAExpression, constant_pool: Sequence[Any]
) -> list[Mutant]:
    """Replace a literal constant in some predicate with a different constant."""
    mutants: list[Mutant] = []

    def transform_factory(pool_value: Any):
        def transform(predicate: Predicate, index: int) -> Predicate | None:
            for comparison in _comparisons_in(predicate):
                for side_name in ("left", "right"):
                    side = getattr(comparison, side_name)
                    if isinstance(side, Literal) and side.value != pool_value and type(side.value) is type(pool_value):
                        new_sides = {
                            "left": comparison.left,
                            "right": comparison.right,
                            side_name: Literal(pool_value),
                        }
                        replacement = Comparison(comparison.op, new_sides["left"], new_sides["right"])
                        return _replace_comparison(predicate, comparison, replacement)
            return None

        return transform

    for value in constant_pool:
        for query, where in _map_selections(expression, transform_factory(value)):
            mutants.append(Mutant(query, f"changed a constant to {value!r} in {where}"))
    return mutants


def flip_comparison_operators(expression: RAExpression) -> list[Mutant]:
    """Flip a comparison operator (= to !=, < to >=, ...)."""
    mutants: list[Mutant] = []

    def transform(predicate: Predicate, index: int) -> Predicate | None:
        for comparison in _comparisons_in(predicate):
            flipped = _FLIPPED_OPERATORS.get(comparison.op)
            if flipped is None:
                continue
            replacement = Comparison(flipped, comparison.left, comparison.right)
            return _replace_comparison(predicate, comparison, replacement)
        return None

    for query, where in _map_selections(expression, transform):
        mutants.append(Mutant(query, f"flipped a comparison operator in {where}"))
    return mutants


def relax_comparison_operators(expression: RAExpression) -> list[Mutant]:
    """Turn strict inequalities into non-strict ones and vice versa (off-by-one errors)."""
    mutants: list[Mutant] = []

    def transform(predicate: Predicate, index: int) -> Predicate | None:
        for comparison in _comparisons_in(predicate):
            relaxed = _RELAXED_OPERATORS.get(comparison.op)
            if relaxed is None:
                continue
            replacement = Comparison(relaxed, comparison.left, comparison.right)
            return _replace_comparison(predicate, comparison, replacement)
        return None

    for query, where in _map_selections(expression, transform):
        mutants.append(Mutant(query, f"relaxed a comparison operator in {where}"))
    return mutants


def drop_conjuncts(expression: RAExpression) -> list[Mutant]:
    """Drop one conjunct from a selection/join predicate (a forgotten condition)."""
    mutants: list[Mutant] = []
    seen_positions: set[int] = set()

    def transform_factory(drop_index: int):
        def transform(predicate: Predicate, index: int) -> Predicate | None:
            comparisons = _comparisons_in(predicate)
            if len(comparisons) <= 1 or drop_index >= len(comparisons):
                return None
            return _replace_comparison(predicate, comparisons[drop_index], None)

        return transform

    for drop_index in range(6):
        for query, where in _map_selections(expression, transform_factory(drop_index)):
            key = hash((str(query),))
            if key in seen_positions:
                continue
            seen_positions.add(key)
            mutants.append(Mutant(query, f"dropped conjunct #{drop_index} in {where}"))
    return mutants


def swap_difference_operands(expression: RAExpression) -> list[Mutant]:
    """Swap the operands of a difference (a classic direction mistake)."""
    return _swap_binary(expression, Difference, "swapped the operands of a difference")


def replace_difference_with_union(expression: RAExpression) -> list[Mutant]:
    """Replace a difference with a union (misunderstanding of EXCEPT)."""
    mutants: list[Mutant] = []
    for node in expression.walk():
        if isinstance(node, Difference):
            replacement = Union(node.left, node.right)
            mutants.append(
                Mutant(_replace_subtree(expression, node, replacement), "replaced a difference with a union")
            )
    return mutants


def drop_difference(expression: RAExpression) -> list[Mutant]:
    """Keep only the left operand of a difference (the running-example mistake)."""
    mutants: list[Mutant] = []
    for node in expression.walk():
        if isinstance(node, Difference):
            mutants.append(
                Mutant(_replace_subtree(expression, node, node.left), "dropped the right side of a difference")
            )
    return mutants


def replace_intersection_with_union(expression: RAExpression) -> list[Mutant]:
    """Replace an intersection with a union ("both" misread as "either")."""
    mutants: list[Mutant] = []
    for node in expression.walk():
        if isinstance(node, Intersection):
            replacement = Union(node.left, node.right)
            mutants.append(
                Mutant(
                    _replace_subtree(expression, node, replacement),
                    "replaced an intersection with a union",
                )
            )
    return mutants


def mutate_group_by(expression: RAExpression) -> list[Mutant]:
    """Drop one grouping attribute from a GroupBy (wrong granularity)."""
    mutants: list[Mutant] = []
    for node in expression.walk():
        if isinstance(node, GroupBy) and len(node.group_by) > 1:
            for index in range(len(node.group_by)):
                remaining = node.group_by[:index] + node.group_by[index + 1 :]
                replacement = GroupBy(node.child, remaining, node.aggregates)
                mutants.append(
                    Mutant(
                        _replace_subtree(expression, node, replacement),
                        f"dropped grouping attribute {node.group_by[index]!r}",
                    )
                )
    return mutants


def _swap_binary(expression: RAExpression, node_type, description: str) -> list[Mutant]:
    mutants: list[Mutant] = []
    for node in expression.walk():
        if isinstance(node, node_type):
            swapped = node.with_children([node.children()[1], node.children()[0]])
            mutants.append(Mutant(_replace_subtree(expression, node, swapped), description))
    return mutants


def _replace_subtree(
    expression: RAExpression, target: RAExpression, replacement: RAExpression
) -> RAExpression:
    if expression is target:
        return replacement
    children = expression.children()
    if not children:
        return expression
    new_children = [_replace_subtree(child, target, replacement) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expression
    return expression.with_children(new_children)


ALL_MUTATION_OPERATORS: tuple[Callable[..., list[Mutant]], ...] = (
    flip_comparison_operators,
    relax_comparison_operators,
    drop_conjuncts,
    swap_difference_operands,
    replace_difference_with_union,
    drop_difference,
    replace_intersection_with_union,
    mutate_group_by,
)


def generate_mutants(
    expression: RAExpression,
    *,
    constant_pool: Sequence[Any] = (),
    max_mutants: int | None = None,
    seed: int = 0,
) -> list[Mutant]:
    """All single-step mutants of a query (optionally subsampled deterministically)."""
    mutants: list[Mutant] = []
    seen: set[str] = {str(expression)}
    candidates: list[Mutant] = []
    for operator in ALL_MUTATION_OPERATORS:
        candidates.extend(operator(expression))
    if constant_pool:
        candidates.extend(mutate_constants(expression, constant_pool))
    for mutant in candidates:
        text = str(mutant.query)
        if text in seen:
            continue
        seen.add(text)
        mutants.append(mutant)
    if max_mutants is not None and len(mutants) > max_mutants:
        rng = random.Random(seed)
        mutants = rng.sample(mutants, max_mutants)
    return mutants
