"""The user-study homework: ten RA problems over the beers database (§8).

The paper's user study asked students to solve ten relational-algebra
problems (no aggregation allowed) against a database of bars, beers and
drinkers; RATest was made available for problems (b), (d), (e), (g), (i).
This module provides reference queries for all ten problems — including the
hardest ones (g), (h), (i), (j) that drive the study's findings — plus
hand-written wrong variants for the RATest-enabled problems so that examples
and benchmarks can exercise the tool on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.parser.ra_parser import parse_query
from repro.ra.ast import RAExpression

#: Problems for which RATest was made available in the user study.
RATEST_PROBLEMS = ("b", "d", "e", "g", "i")


@dataclass(frozen=True)
class BeersProblem:
    key: str
    prompt: str
    difficulty: int
    correct_text: str
    wrong_texts: tuple[str, ...] = ()
    ratest_available: bool = False

    @property
    def correct_query(self) -> RAExpression:
        return parse_query(self.correct_text)

    @property
    def handwritten_wrong_queries(self) -> tuple[RAExpression, ...]:
        return tuple(parse_query(text) for text in self.wrong_texts)


# -- building blocks ---------------------------------------------------------

_BARS_OF = """
\\project_{f.bar -> bar} \\select_{f.drinker = '%s'} \\rename_{prefix: f} Frequents
"""

_GOOD_PAIRS = """
\\project_{l.drinker -> drinker, s.bar -> bar} (
  \\rename_{prefix: l} Likes
  \\join_{l.beer = s.beer}
  \\rename_{prefix: s} Serves
)
"""

_FREQUENT_PAIRS = """
\\project_{f.drinker -> drinker, f.bar -> bar} \\rename_{prefix: f} Frequents
"""

# (drinker, bar, beer) triples for every beer served at a bar, paired with every drinker.
_ALL_DRINKER_BAR_BEER = """
\\project_{d.name -> drinker, s.bar -> bar, s.beer -> beer} (
  ( \\rename_{prefix: d} Drinker ) \\cross ( \\rename_{prefix: s} Serves )
)
"""

_LIKED_DRINKER_BAR_BEER = """
\\project_{l.drinker -> drinker, s.bar -> bar, s.beer -> beer} (
  \\rename_{prefix: l} Likes
  \\join_{l.beer = s.beer}
  \\rename_{prefix: s} Serves
)
"""

_ALL_BAR_PAIRS = """
\\project_{b1.name -> bar1, b2.name -> bar2} \\select_{b1.name <> b2.name} (
  ( \\rename_{prefix: b1} Bar ) \\cross ( \\rename_{prefix: b2} Bar )
)
"""

# Beers served at bar1 paired with every candidate bar2.
_SERVED1_WITH_BAR2 = """
\\project_{s1.bar -> bar1, b2.name -> bar2, s1.beer -> beer} (
  ( \\rename_{prefix: s1} Serves ) \\cross ( \\rename_{prefix: b2} Bar )
)
"""

# Beers served at both bars.
_SERVED_BOTH = """
\\project_{s1.bar -> bar1, s2.bar -> bar2, s1.beer -> beer} (
  \\rename_{prefix: s1} Serves
  \\join_{s1.beer = s2.beer}
  \\rename_{prefix: s2} Serves
)
"""

# Beers served at bar2 paired with every candidate bar1.
_SERVED2_WITH_BAR1 = """
\\project_{b1.name -> bar1, s2.bar -> bar2, s2.beer -> beer} (
  ( \\rename_{prefix: b1} Bar ) \\cross ( \\rename_{prefix: s2} Serves )
)
"""


@lru_cache(maxsize=1)
def beers_problems() -> tuple[BeersProblem, ...]:
    """All ten homework problems, keyed (a) through (j)."""
    return (
        BeersProblem(
            key="a",
            prompt="Find drinkers who like Corona.",
            difficulty=1,
            correct_text="\\project_{drinker} \\select_{beer = 'Corona'} Likes",
        ),
        BeersProblem(
            key="b",
            prompt="Find drinkers who frequent any bar serving Corona.",
            difficulty=1,
            ratest_available=True,
            correct_text="""
            \\project_{f.drinker -> drinker} (
              \\rename_{prefix: f} Frequents
              \\join_{f.bar = s.bar and s.beer = 'Corona'}
              \\rename_{prefix: s} Serves
            )
            """,
            wrong_texts=(
                # Joined on the wrong column: drinkers who *like* Corona and go to any bar.
                """
                \\project_{f.drinker -> drinker} (
                  \\rename_{prefix: f} Frequents
                  \\join_{f.drinker = l.drinker and l.beer = 'Corona'}
                  \\rename_{prefix: l} Likes
                )
                """,
            ),
        ),
        BeersProblem(
            key="c",
            prompt="Find bars that serve some beer that Ben likes.",
            difficulty=2,
            correct_text="""
            \\project_{s.bar -> bar} (
              \\rename_{prefix: s} Serves
              \\join_{s.beer = l.beer and l.drinker = 'Ben'}
              \\rename_{prefix: l} Likes
            )
            """,
        ),
        BeersProblem(
            key="d",
            prompt="Find drinkers who frequent both JJ Pub and Satisfaction.",
            difficulty=2,
            ratest_available=True,
            correct_text="""
            ( \\project_{f.drinker -> drinker} \\select_{f.bar = 'JJ Pub'} \\rename_{prefix: f} Frequents )
            \\intersect
            ( \\project_{g.drinker -> drinker} \\select_{g.bar = 'Satisfaction'} \\rename_{prefix: g} Frequents )
            """,
            wrong_texts=(
                # "Either" instead of "both".
                """
                ( \\project_{f.drinker -> drinker} \\select_{f.bar = 'JJ Pub'} \\rename_{prefix: f} Frequents )
                \\union
                ( \\project_{g.drinker -> drinker} \\select_{g.bar = 'Satisfaction'} \\rename_{prefix: g} Frequents )
                """,
            ),
        ),
        BeersProblem(
            key="e",
            prompt="Find bars frequented by either Ben or Dan, but not both.",
            difficulty=3,
            ratest_available=True,
            correct_text=(
                "( (" + (_BARS_OF % "Ben") + ") \\union (" + (_BARS_OF % "Dan") + ") )"
                " \\diff "
                "( (" + (_BARS_OF % "Ben") + ") \\intersect (" + (_BARS_OF % "Dan") + ") )"
            ),
            wrong_texts=(
                # Forgot to remove the bars frequented by both.
                "(" + (_BARS_OF % "Ben") + ") \\union (" + (_BARS_OF % "Dan") + ")",
                # Only "Ben but not Dan" — missed the symmetric case.
                "(" + (_BARS_OF % "Ben") + ") \\diff (" + (_BARS_OF % "Dan") + ")",
            ),
        ),
        BeersProblem(
            key="f",
            prompt="Find drinkers who frequent some bar that serves no beer at all.",
            difficulty=3,
            correct_text="""
            \\project_{f.drinker -> drinker} (
              \\rename_{prefix: f} Frequents
              \\join_{f.bar = e.bar}
              \\rename_{prefix: e} (
                ( \\project_{name -> bar} Bar ) \\diff ( \\project_{bar} Serves )
              )
            )
            """,
        ),
        BeersProblem(
            key="g",
            prompt="For each bar, find the drinker(s) who frequent it the greatest number of times.",
            difficulty=4,
            ratest_available=True,
            correct_text="""
            ( \\project_{f.bar -> bar, f.drinker -> drinker} \\rename_{prefix: f} Frequents )
            \\diff
            ( \\project_{f.bar -> bar, f.drinker -> drinker} (
                \\rename_{prefix: f} Frequents
                \\join_{f.bar = g.bar and g.times_a_week > f.times_a_week}
                \\rename_{prefix: g} Frequents
            ) )
            """,
            wrong_texts=(
                # Compared in the wrong direction: returns the *least* frequent drinkers.
                """
                ( \\project_{f.bar -> bar, f.drinker -> drinker} \\rename_{prefix: f} Frequents )
                \\diff
                ( \\project_{f.bar -> bar, f.drinker -> drinker} (
                    \\rename_{prefix: f} Frequents
                    \\join_{f.bar = g.bar and g.times_a_week < f.times_a_week}
                    \\rename_{prefix: g} Frequents
                ) )
                """,
                # Forgot to restrict the comparison to the same bar.
                """
                ( \\project_{f.bar -> bar, f.drinker -> drinker} \\rename_{prefix: f} Frequents )
                \\diff
                ( \\project_{f.bar -> bar, f.drinker -> drinker} (
                    \\rename_{prefix: f} Frequents
                    \\join_{g.times_a_week > f.times_a_week}
                    \\rename_{prefix: g} Frequents
                ) )
                """,
            ),
        ),
        BeersProblem(
            key="h",
            prompt="Find drinkers who frequent only bars that serve some beer they like.",
            difficulty=4,
            correct_text=(
                "( \\project_{f.drinker -> drinker} \\rename_{prefix: f} Frequents )"
                " \\diff "
                "( \\project_{drinker} ( (" + _FREQUENT_PAIRS + ") \\diff (" + _GOOD_PAIRS + ") ) )"
            ),
            wrong_texts=(
                # "Some bar" instead of "only bars".
                """
                \\project_{f.drinker -> drinker} (
                  \\rename_{prefix: f} Frequents
                  \\join_{f.drinker = l.drinker and f.bar = s.bar and l.beer = s.beer}
                  ( \\rename_{prefix: l} Likes \\cross \\rename_{prefix: s} Serves )
                )
                """,
            ),
        ),
        BeersProblem(
            key="i",
            prompt="Find drinkers who frequent only bars that serve only beers they like.",
            difficulty=5,
            ratest_available=True,
            correct_text=(
                "( \\project_{f.drinker -> drinker} \\rename_{prefix: f} Frequents )"
                " \\diff "
                "( \\project_{drinker} ( (" + _FREQUENT_PAIRS + ") \\intersect "
                "( \\project_{drinker, bar} ( (" + _ALL_DRINKER_BAR_BEER + ") \\diff ("
                + _LIKED_DRINKER_BAR_BEER
                + ") ) ) ) )"
            ),
            wrong_texts=(
                # Solved (h) instead of (i): "serve some beer they like".
                (
                    "( \\project_{f.drinker -> drinker} \\rename_{prefix: f} Frequents )"
                    " \\diff "
                    "( \\project_{drinker} ( (" + _FREQUENT_PAIRS + ") \\diff (" + _GOOD_PAIRS + ") ) )"
                ),
                # Forgot the final difference: returns drinkers with at least one bad bar.
                (
                    "\\project_{drinker} ( (" + _FREQUENT_PAIRS + ") \\intersect "
                    "( \\project_{drinker, bar} ( (" + _ALL_DRINKER_BAR_BEER + ") \\diff ("
                    + _LIKED_DRINKER_BAR_BEER
                    + ") ) ) )"
                ),
            ),
        ),
        BeersProblem(
            key="j",
            prompt="Find all (bar1, bar2) pairs where the set of beers served at bar1 is a "
            "proper subset of the beers served at bar2.",
            difficulty=5,
            correct_text=(
                "( ( " + _ALL_BAR_PAIRS + " ) \\diff "
                "( \\project_{bar1, bar2} ( (" + _SERVED1_WITH_BAR2 + ") \\diff (" + _SERVED_BOTH + ") ) ) )"
                " \\intersect "
                "( \\project_{bar1, bar2} ( (" + _SERVED2_WITH_BAR1 + ") \\diff "
                "( \\project_{s2.bar -> bar1, s1.bar -> bar2, s1.beer -> beer} ("
                "  \\rename_{prefix: s1} Serves \\join_{s1.beer = s2.beer} \\rename_{prefix: s2} Serves"
                ") ) ) )"
            ),
        ),
    )


def beers_problem(key: str) -> BeersProblem:
    """Look up a problem by its letter key."""
    for problem in beers_problems():
        if problem.key == key:
            return problem
    raise KeyError(f"unknown beers problem {key!r}")
