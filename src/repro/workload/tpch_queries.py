"""Relational-algebra translations of the TPC-H queries used in §7.2.

The paper evaluates the aggregate algorithms on TPC-H Q4, Q16, Q18, Q21 and a
modified Q21-S (Q21 with an extra selection on the aggregate value), each with
two hand-made wrong variants whose errors mirror common student mistakes
(different selection conditions, incorrect use of difference, incorrect
position of projection).  The queries below keep the structure of the official
SQL — semijoins/antijoins become joins and differences, aggregation sits at
the top of the tree — with constants adapted to the TPC-H-lite generator
(dates are day numbers, thresholds are scaled to the smaller row counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.parser.ra_parser import parse_query
from repro.ra.ast import RAExpression


@dataclass(frozen=True)
class TpchQuery:
    """One benchmark query: reference RA text plus wrong variants."""

    key: str
    description: str
    correct_text: str
    wrong_texts: tuple[str, ...]
    #: True when the query has a selection on an aggregate value at the top
    #: (these are the queries the parameterization optimisation targets).
    has_aggregate_predicate: bool = False

    @property
    def correct_query(self) -> RAExpression:
        return parse_query(self.correct_text)

    @property
    def wrong_queries(self) -> tuple[RAExpression, ...]:
        return tuple(parse_query(text) for text in self.wrong_texts)


# -- Q4: order priority checking ---------------------------------------------

_Q4_CORE = """
\\project_{o_orderpriority, o_orderkey} (
  \\select_{o_orderdate >= 300 and o_orderdate < 800} orders
  \\join_{o_orderkey = l_orderkey and l_commitdate < l_receiptdate}
  lineitem
)
"""

_Q4 = "\\aggr_{group: o_orderpriority ; count(*) -> order_count} (" + _Q4_CORE + ")"

_Q4_WRONG_FLIPPED = _Q4.replace("l_commitdate < l_receiptdate", "l_commitdate > l_receiptdate")

# Counting join rows instead of orders: the projection keeps the line number,
# so the same order is counted once per late lineitem.
_Q4_WRONG_PROJECTION = (
    "\\aggr_{group: o_orderpriority ; count(*) -> order_count} ("
    + _Q4_CORE.replace(
        "\\project_{o_orderpriority, o_orderkey}",
        "\\project_{o_orderpriority, o_orderkey, l_linenumber}",
    )
    + ")"
)

# -- Q16: parts/supplier relationship ------------------------------------------

_Q16_BASE = """
\\project_{p_brand, p_type, p_size, ps_suppkey} (
  \\select_{p_brand <> 'Brand#45' and (p_size = 49 or p_size = 23 or p_size = 45)} part
  \\join_{p_partkey = ps_partkey}
  partsupp
)
"""

_Q16_EXCLUDED = """
\\project_{p_brand, p_type, p_size, ps_suppkey} (
  (
    \\select_{p_brand <> 'Brand#45' and (p_size = 49 or p_size = 23 or p_size = 45)} part
    \\join_{p_partkey = ps_partkey}
    partsupp
  )
  \\join_{ps_suppkey = s_suppkey and s_nationkey < 5}
  supplier
)
"""

_Q16_CORE = "(" + _Q16_BASE + ") \\diff (" + _Q16_EXCLUDED + ")"

_Q16 = (
    "\\aggr_{group: p_brand, p_type, p_size ; count(ps_suppkey) -> supplier_cnt} ("
    + _Q16_CORE
    + ")"
)

_Q16_WRONG_BRAND = _Q16.replace("p_brand <> 'Brand#45'", "p_brand = 'Brand#45'")
_Q16_WRONG_NO_DIFF = (
    "\\aggr_{group: p_brand, p_type, p_size ; count(ps_suppkey) -> supplier_cnt} ("
    + _Q16_BASE
    + ")"
)

# -- Q18: large volume customers ------------------------------------------------

_Q18_CORE = """
customer
\\join_{c_custkey = o_custkey}
orders
\\join_{o_orderkey = l_orderkey}
lineitem
"""

_Q18 = (
    "\\select_{total_qty > 150} "
    "\\aggr_{group: c_name, c_custkey, o_orderkey ; sum(l_quantity) -> total_qty} ("
    + _Q18_CORE
    + ")"
)

_Q18_WRONG_THRESHOLD = _Q18.replace("total_qty > 150", "total_qty > 120")
_Q18_WRONG_FILTER = (
    "\\select_{total_qty > 150} "
    "\\aggr_{group: c_name, c_custkey, o_orderkey ; sum(l_quantity) -> total_qty} ("
    "customer \\join_{c_custkey = o_custkey} orders "
    "\\join_{o_orderkey = l_orderkey} \\select_{l_returnflag = 'R'} lineitem"
    ")"
)

# -- Q21: suppliers who kept orders waiting -------------------------------------

_Q21_LATE = "\\project_{l_orderkey, l_suppkey} \\select_{l_receiptdate > l_commitdate} lineitem"

_Q21_MULTI = (
    "\\project_{l_orderkey, l_suppkey} ("
    "  \\select_{l_receiptdate > l_commitdate} lineitem"
    "  \\join_{l_orderkey = m.l_orderkey and l_suppkey <> m.l_suppkey}"
    "  \\rename_{prefix: m} (" + _Q21_LATE + ")"
    ")"
)

_Q21_SOLE = "(" + _Q21_LATE + ") \\diff (" + _Q21_MULTI + ")"

_Q21_CORE = (
    "\\project_{s_name, o_orderkey} ("
    "  supplier"
    "  \\join_{s_suppkey = l_suppkey}"
    "  (" + _Q21_SOLE + ")"
    "  \\join_{l_orderkey = o_orderkey and o_orderstatus = 'F'}"
    "  orders"
    ")"
)

_Q21 = "\\aggr_{group: s_name ; count(*) -> numwait} (" + _Q21_CORE + ")"

_Q21_WRONG_NO_SOLE = (
    "\\aggr_{group: s_name ; count(*) -> numwait} ("
    "\\project_{s_name, o_orderkey} ("
    "  supplier"
    "  \\join_{s_suppkey = l_suppkey}"
    "  (" + _Q21_LATE + ")"
    "  \\join_{l_orderkey = o_orderkey and o_orderstatus = 'F'}"
    "  orders"
    ")"
    ")"
)
_Q21_WRONG_FLIPPED = _Q21.replace("l_receiptdate > l_commitdate", "l_receiptdate < l_commitdate")

# -- Q21-S: Q21 with a selection on the aggregate value --------------------------

_Q21S = "\\select_{numwait >= 2} (" + _Q21 + ")"
_Q21S_WRONG_NO_SOLE = "\\select_{numwait >= 2} (" + _Q21_WRONG_NO_SOLE + ")"
_Q21S_WRONG_THRESHOLD = "\\select_{numwait >= 1} (" + _Q21 + ")"


@lru_cache(maxsize=1)
def tpch_queries() -> tuple[TpchQuery, ...]:
    """The five benchmark queries with two wrong variants each."""
    return (
        TpchQuery(
            key="Q4",
            description="Order priority checking: count orders per priority with a late lineitem.",
            correct_text=_Q4,
            wrong_texts=(_Q4_WRONG_FLIPPED, _Q4_WRONG_PROJECTION),
        ),
        TpchQuery(
            key="Q16",
            description="Parts/supplier relationship: count suppliers per brand/type/size, "
            "excluding a supplier blacklist.",
            correct_text=_Q16,
            wrong_texts=(_Q16_WRONG_BRAND, _Q16_WRONG_NO_DIFF),
        ),
        TpchQuery(
            key="Q18",
            description="Large-volume customers: orders whose total quantity exceeds a threshold.",
            correct_text=_Q18,
            wrong_texts=(_Q18_WRONG_THRESHOLD, _Q18_WRONG_FILTER),
            has_aggregate_predicate=True,
        ),
        TpchQuery(
            key="Q21",
            description="Suppliers who kept orders waiting: count, per supplier, the 'F' orders "
            "where only that supplier's lineitem was late.",
            correct_text=_Q21,
            wrong_texts=(_Q21_WRONG_NO_SOLE, _Q21_WRONG_FLIPPED),
        ),
        TpchQuery(
            key="Q21-S",
            description="Q21 with an additional selection on the aggregate value at the top.",
            correct_text=_Q21S,
            wrong_texts=(_Q21S_WRONG_NO_SOLE, _Q21S_WRONG_THRESHOLD),
            has_aggregate_predicate=True,
        ),
    )


def tpch_query(key: str) -> TpchQuery:
    for query in tpch_queries():
        if query.key == key:
            return query
    raise KeyError(f"unknown TPC-H query {key!r}")
