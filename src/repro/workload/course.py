"""The course workload: 8 relational-algebra questions with wrong submissions.

The §7.1 experiments use student submissions to a relational algebra
assignment (8 questions, 141 students, 170 discovered wrong queries).  Real
submissions are not available, so this module provides:

* the eight reference queries over the university schema, written in the RA
  DSL (they range from a single select-join to double-difference "exactly
  one"/"for all" queries, matching the difficulty spread the paper describes);
* hand-written wrong variants reproducing the classic mistakes the paper
  quotes (the running example's "at least one instead of exactly one", wrong
  constants, forgotten predicates, reversed differences);
* mutation-generated wrong variants that bring the pool to the same order of
  magnitude as the paper's 170 wrong queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.parser.ra_parser import parse_query
from repro.ra.analysis import profile
from repro.ra.ast import Join, NaturalJoin, RAExpression
from repro.ra.evaluator import split_equijoin_conjuncts
from repro.workload.mutations import Mutant, generate_mutants
from repro.datagen.university import university_schema

_CONSTANT_POOL = ("ECON", "MATH", "BIO")


@dataclass(frozen=True)
class CourseQuestion:
    """One homework question: reference query plus typical wrong submissions."""

    key: str
    prompt: str
    difficulty: int
    correct_text: str
    wrong_texts: tuple[str, ...] = ()

    @property
    def correct_query(self) -> RAExpression:
        return parse_query(self.correct_text)

    @property
    def handwritten_wrong_queries(self) -> tuple[RAExpression, ...]:
        return tuple(parse_query(text) for text in self.wrong_texts)


# -- building blocks ---------------------------------------------------------

_STUDENTS_WITH_CS = """
\\project_{s.name -> name, s.major -> major} (
  \\rename_{prefix: s} Student
  \\join_{s.name = r.name and r.dept = 'CS'}
  \\rename_{prefix: r} Registration
)
"""

_STUDENTS_WITH_TWO_CS = """
\\project_{s.name -> name, s.major -> major} (
  \\rename_{prefix: s} Student
  \\join_{s.name = r1.name}
  \\rename_{prefix: r1} Registration
  \\join_{s.name = r2.name and r1.course <> r2.course and r1.dept = 'CS' and r2.dept = 'CS'}
  \\rename_{prefix: r2} Registration
)
"""

_STUDENTS_WITH_NON_CS = """
\\project_{s.name -> name, s.major -> major} (
  \\rename_{prefix: s} Student
  \\join_{s.name = r.name and r.dept <> 'CS'}
  \\rename_{prefix: r} Registration
)
"""

_STUDENTS_WITH_ECON = _STUDENTS_WITH_CS.replace("'CS'", "'ECON'")


@lru_cache(maxsize=1)
def course_questions() -> tuple[CourseQuestion, ...]:
    """The eight questions of the relational algebra assignment."""
    return (
        CourseQuestion(
            key="q1",
            prompt="Find students who registered for at least one CS course.",
            difficulty=1,
            correct_text=_STUDENTS_WITH_CS,
            wrong_texts=(
                # Forgot the department filter entirely.
                """
                \\project_{s.name -> name, s.major -> major} (
                  \\rename_{prefix: s} Student
                  \\join_{s.name = r.name}
                  \\rename_{prefix: r} Registration
                )
                """,
                # Filtered on the student's major instead of the course department.
                """
                \\project_{s.name -> name, s.major -> major} (
                  \\select_{s.major = 'CS'} \\rename_{prefix: s} Student
                  \\join_{s.name = r.name}
                  \\rename_{prefix: r} Registration
                )
                """,
            ),
        ),
        CourseQuestion(
            key="q2",
            prompt="Find students who registered for exactly one CS course.",
            difficulty=4,
            correct_text=f"({_STUDENTS_WITH_CS}) \\diff ({_STUDENTS_WITH_TWO_CS})",
            wrong_texts=(
                # The running example: "one or more" instead of "exactly one".
                _STUDENTS_WITH_CS,
                # Used equality instead of inequality between the two courses.
                f"({_STUDENTS_WITH_CS}) \\diff ("
                + _STUDENTS_WITH_TWO_CS.replace("r1.course <> r2.course", "r1.course = r2.course")
                + ")",
            ),
        ),
        CourseQuestion(
            key="q3",
            prompt="Find students who registered for no CS course at all.",
            difficulty=3,
            correct_text=f"(\\project_{{name, major}} Student) \\diff ({_STUDENTS_WITH_CS})",
            wrong_texts=(
                # "Registered for some non-CS course" is not the same thing.
                _STUDENTS_WITH_NON_CS,
                # Difference in the wrong direction.
                f"({_STUDENTS_WITH_CS}) \\diff (\\project_{{name, major}} Student)",
                # Started from "students with some registration" instead of all
                # students: misses students who never registered for anything,
                # a corner case only large test instances contain.
                (
                    "( \\project_{s.name -> name, s.major -> major} ("
                    "  \\rename_{prefix: s} Student"
                    "  \\join_{s.name = r.name}"
                    "  \\rename_{prefix: r} Registration"
                    ") ) \\diff (" + _STUDENTS_WITH_CS + ")"
                ),
            ),
        ),
        CourseQuestion(
            key="q4",
            prompt="Find students who registered for both a CS course and an ECON course.",
            difficulty=2,
            correct_text=f"({_STUDENTS_WITH_CS}) \\intersect ({_STUDENTS_WITH_ECON})",
            wrong_texts=(
                # "Either" instead of "both".
                f"({_STUDENTS_WITH_CS}) \\union ({_STUDENTS_WITH_ECON})",
            ),
        ),
        CourseQuestion(
            key="q5",
            prompt="Find students all of whose registrations are CS courses (and who "
            "registered for at least one course).",
            difficulty=4,
            correct_text=(
                "( \\project_{s.name -> name, s.major -> major} ("
                "  \\rename_{prefix: s} Student"
                "  \\join_{s.name = r.name}"
                "  \\rename_{prefix: r} Registration"
                ") ) \\diff (" + _STUDENTS_WITH_NON_CS + ")"
            ),
            wrong_texts=(
                # "Some CS course" instead of "only CS courses".
                _STUDENTS_WITH_CS,
                # Subtracted the CS students instead of the non-CS students.
                (
                    "( \\project_{s.name -> name, s.major -> major} ("
                    "  \\rename_{prefix: s} Student"
                    "  \\join_{s.name = r.name}"
                    "  \\rename_{prefix: r} Registration"
                    ") ) \\diff (" + _STUDENTS_WITH_CS + ")"
                ),
            ),
        ),
        CourseQuestion(
            key="q6",
            prompt="Find students who registered for every CS course that Jesse registered for.",
            difficulty=5,
            correct_text="""
            (\\project_{name} Student) \\diff (
              \\project_{s.name -> name} (
                (
                  ( \\project_{name -> s.name} Student )
                  \\cross
                  ( \\project_{course -> j.course} \\select_{name = 'Jesse' and dept = 'CS'} Registration )
                )
                \\diff
                ( \\project_{name -> s.name, course -> j.course} \\select_{dept = 'CS'} Registration )
              )
            )
            """,
            wrong_texts=(
                # Students who registered for *some* CS course Jesse registered for.
                """
                \\project_{r.name -> name} (
                  ( \\project_{course -> j.course} \\select_{name = 'Jesse' and dept = 'CS'} Registration )
                  \\join_{r.course = j.course and r.dept = 'CS'}
                  \\rename_{prefix: r} Registration
                )
                """,
                # Forgot to restrict Jesse's courses to CS.
                """
                (\\project_{name} Student) \\diff (
                  \\project_{s.name -> name} (
                    (
                      ( \\project_{name -> s.name} Student )
                      \\cross
                      ( \\project_{course -> j.course} \\select_{name = 'Jesse'} Registration )
                    )
                    \\diff
                    ( \\project_{name -> s.name, course -> j.course} \\select_{dept = 'CS'} Registration )
                  )
                )
                """,
            ),
        ),
        CourseQuestion(
            key="q7",
            prompt="Find courses (course, dept) taken by some CS major but by no ECON major.",
            difficulty=3,
            correct_text="""
            ( \\project_{r.course -> course, r.dept -> dept} (
                \\select_{s.major = 'CS'} \\rename_{prefix: s} Student
                \\join_{s.name = r.name}
                \\rename_{prefix: r} Registration
            ) ) \\diff ( \\project_{r.course -> course, r.dept -> dept} (
                \\select_{s.major = 'ECON'} \\rename_{prefix: s} Student
                \\join_{s.name = r.name}
                \\rename_{prefix: r} Registration
            ) )
            """,
            wrong_texts=(
                # Filtered on the registration department instead of the student's major.
                """
                ( \\project_{r.course -> course, r.dept -> dept} (
                    \\rename_{prefix: s} Student
                    \\join_{s.name = r.name and r.dept = 'CS'}
                    \\rename_{prefix: r} Registration
                ) ) \\diff ( \\project_{r.course -> course, r.dept -> dept} (
                    \\rename_{prefix: s} Student
                    \\join_{s.name = r.name and r.dept = 'ECON'}
                    \\rename_{prefix: r} Registration
                ) )
                """,
            ),
        ),
        CourseQuestion(
            key="q8",
            prompt="Find students who registered for at least two distinct CS courses.",
            difficulty=2,
            correct_text=_STUDENTS_WITH_TWO_CS,
            wrong_texts=(
                # Forgot that the two courses must be distinct.
                _STUDENTS_WITH_TWO_CS.replace("r1.course <> r2.course and ", ""),
            ),
        ),
    )


@dataclass
class SubmissionPool:
    """Wrong queries per question, standing in for the student submission pool."""

    wrong_queries: dict[str, list[RAExpression]] = field(default_factory=dict)
    descriptions: dict[str, list[str]] = field(default_factory=dict)

    def total_wrong(self) -> int:
        return sum(len(queries) for queries in self.wrong_queries.values())


def course_submission_pool(
    *, seed: int = 0, mutants_per_question: int = 20
) -> SubmissionPool:
    """Hand-written plus mutation-generated wrong queries for every question.

    With the default settings the pool holds roughly 170 wrong queries across
    the 8 questions — the same order of magnitude as the paper's student pool.
    Mutants that lose all equi-join conjuncts of some join are dropped, the
    analogue of the paper excluding two submissions with massive cross
    products.
    """
    rng = random.Random(seed)
    pool = SubmissionPool()
    for question in course_questions():
        correct = question.correct_query
        wrong: list[RAExpression] = list(question.handwritten_wrong_queries)
        descriptions = [f"handwritten wrong variant #{i}" for i in range(len(wrong))]
        mutants = generate_mutants(
            correct,
            constant_pool=_CONSTANT_POOL,
            max_mutants=None,
            seed=rng.randint(0, 10_000),
        )
        usable = [m for m in mutants if _keeps_join_keys(correct, m) and _is_schema_valid(m.query)]
        rng.shuffle(usable)
        for mutant in usable[:mutants_per_question]:
            wrong.append(mutant.query)
            descriptions.append(mutant.description)
        pool.wrong_queries[question.key] = wrong
        pool.descriptions[question.key] = descriptions
    return pool


def _is_schema_valid(query: RAExpression) -> bool:
    try:
        query.output_schema(university_schema())
        profile(query)
    except Exception:
        return False
    return True


def _equi_join_deficit(query: RAExpression) -> int:
    """Number of theta joins that have no equi-join pair (cross-product risk)."""
    deficit = 0
    schema = university_schema()
    for node in query.walk():
        if isinstance(node, Join):
            try:
                left = node.left.output_schema(schema)
                right = node.right.output_schema(schema)
            except Exception:
                return 10**6
            pairs, _ = split_equijoin_conjuncts(node.effective_predicate(), left, right)
            if not pairs:
                deficit += 1
        elif isinstance(node, NaturalJoin):
            continue
    return deficit


def _keeps_join_keys(correct: RAExpression, mutant: Mutant) -> bool:
    return _equi_join_deficit(mutant.query) <= _equi_join_deficit(correct)
