"""Seeded random RA query generation for differential backend testing.

The SQLite backend claims bit-for-bit agreement with the in-process engine;
that claim is only worth something if it is checked on queries nobody wrote
by hand.  This module provides the pieces the differential suites
(``tests/test_fuzz_differential.py`` and the counterexample mode of
``tests/test_fuzz_counterexamples.py``) are built from:

* :class:`QueryFuzzer` — a schema-aware, depth-bounded random generator
  covering the full SPJUDA language (selection, projection, theta/natural
  join, union, difference, intersection, rename, group-by/aggregate) plus
  optional ``@parameter`` bindings.  Every query is derived from one integer
  seed, so any failure reproduces from ``(schema, seed)`` alone.  The
  ``join_heavy`` flag re-weights generation toward deep join trees whose
  equi-join keys follow declared foreign keys — the shapes the cost-based
  optimizer rewrites — without disturbing the default mode's seed streams.
* :func:`perturb_instance` — seeded random instance mutations (tuple
  deletions and synthesized insertions), so backends are compared on data
  they were not tuned for, including NULLs in nullable columns.
* :func:`to_dsl` — renders a generated (or mutated) expression back into
  parseable DSL text.  Failures print this text as the reproduction
  one-liner, and round-tripping through :func:`~repro.parser.ra_parser.parse_query`
  is itself part of what the fuzz suite checks.
* :class:`CounterexampleFuzzer` / :func:`run_counterexample_fuzz` — the
  **counterexample mode**: generated queries are turned into wrong-query
  pairs with the mutation operators of :mod:`repro.workload.mutations`, every
  applicable algorithm from :data:`repro.core.finder.ALGORITHMS` is run on
  each pair, and every returned witness is machine-verified
  (:func:`repro.core.verify.verify_counterexample`) — valid, FK-closed and,
  where ``optimal`` was claimed, cross-checked minimal.  A failure prints a
  ``seed`` + DSL reproduction one-liner.

Generated queries are deliberately *boring* in two respects: literals are
drawn from values that actually occur in the instance (so selections and
joins are non-trivially selective), and SUM/AVG aggregates are restricted to
integer attributes — float accumulation order differs between backends, and
the suite asserts exact equality, not tolerance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.catalog.types import DataType
from repro.ra.ast import (
    AggregateFunction,
    AggregateSpec,
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.ra.predicates import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    Scalar,
    TruePredicate,
)

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")
_ORDERED_OPS = ("<", "<=", ">", ">=")


# ---------------------------------------------------------------------------
# DSL rendering
# ---------------------------------------------------------------------------


def _dsl_literal(value: Any) -> str:
    """Render a constant so the DSL lexer reads back the same value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        if "e" in text or "E" in text or "inf" in text or "nan" in text:
            raise ValueError(f"float literal {value!r} is not expressible in the DSL")
        return text
    if isinstance(value, str):
        if "'" in value:
            raise ValueError(f"string literal {value!r} contains a quote")
        return f"'{value}'"
    raise ValueError(f"cannot render literal {value!r} in the DSL")


def _dsl_scalar(scalar: Scalar) -> str:
    if isinstance(scalar, ColumnRef):
        return scalar.name
    if isinstance(scalar, Literal):
        return _dsl_literal(scalar.value)
    if isinstance(scalar, Param):
        return f"@{scalar.name}"
    raise ValueError(
        f"scalar of type {type(scalar).__name__} is not expressible in the DSL"
    )


def _dsl_predicate(predicate: Predicate) -> str:
    if isinstance(predicate, TruePredicate):
        # The DSL has no TRUE literal; a tautology evaluates identically.
        return "0 = 0"
    if isinstance(predicate, Comparison):
        op = "<>" if predicate.op == "!=" else predicate.op
        return f"{_dsl_scalar(predicate.left)} {op} {_dsl_scalar(predicate.right)}"
    if isinstance(predicate, And):
        return " and ".join(f"({_dsl_predicate(p)})" for p in predicate.operands)
    if isinstance(predicate, Or):
        return " or ".join(f"({_dsl_predicate(p)})" for p in predicate.operands)
    if isinstance(predicate, Not):
        return f"not ({_dsl_predicate(predicate.operand)})"
    raise ValueError(
        f"predicate of type {type(predicate).__name__} is not expressible in the DSL"
    )


def to_dsl(expression: RAExpression) -> str:
    """Parseable DSL text for an expression (the fuzzer's repro format).

    Raises :class:`ValueError` for constructs the DSL cannot express
    (arithmetic scalars, relation-name renames, ``TruePredicate`` joins).
    """
    if isinstance(expression, RelationRef):
        return expression.name
    if isinstance(expression, Selection):
        return f"\\select_{{{_dsl_predicate(expression.predicate)}}} ({to_dsl(expression.child)})"
    if isinstance(expression, Projection):
        if expression.aliases is None:
            columns = ", ".join(expression.columns)
        else:
            columns = ", ".join(
                f"{c} -> {a}" for c, a in zip(expression.columns, expression.aliases)
            )
        return f"\\project_{{{columns}}} ({to_dsl(expression.child)})"
    if isinstance(expression, Rename):
        if expression.relation_name is not None:
            raise ValueError("relation-name renames are not expressible in the DSL")
        if expression.prefix is not None:
            return f"\\rename_{{prefix: {expression.prefix}}} ({to_dsl(expression.child)})"
        mapping = ", ".join(f"{old} -> {new}" for old, new in expression.attribute_mapping)
        return f"\\rename_{{{mapping}}} ({to_dsl(expression.child)})"
    if isinstance(expression, Join):
        left, right = to_dsl(expression.left), to_dsl(expression.right)
        if expression.predicate is None:
            return f"({left}) \\cross ({right})"
        return f"({left}) \\join_{{{_dsl_predicate(expression.predicate)}}} ({right})"
    if isinstance(expression, NaturalJoin):
        return f"({to_dsl(expression.left)}) \\join ({to_dsl(expression.right)})"
    if isinstance(expression, Union):
        return f"({to_dsl(expression.left)}) \\union ({to_dsl(expression.right)})"
    if isinstance(expression, Difference):
        return f"({to_dsl(expression.left)}) \\diff ({to_dsl(expression.right)})"
    if isinstance(expression, Intersection):
        return f"({to_dsl(expression.left)}) \\intersect ({to_dsl(expression.right)})"
    if isinstance(expression, GroupBy):
        group = ", ".join(expression.group_by)
        aggregates = ", ".join(
            f"{spec.func.value}({spec.attribute if spec.attribute is not None else '*'})"
            f" -> {spec.alias}"
            for spec in expression.aggregates
        )
        return f"\\aggr_{{group: {group} ; {aggregates}}} ({to_dsl(expression.child)})"
    raise ValueError(f"cannot render node of type {type(expression).__name__}")


# ---------------------------------------------------------------------------
# Instance perturbation
# ---------------------------------------------------------------------------


def perturb_instance(
    instance: DatabaseInstance,
    seed: int,
    *,
    delete_fraction: float = 0.25,
    insert_fraction: float = 0.3,
    null_fraction: float = 0.2,
) -> DatabaseInstance:
    """A seeded random mutation of ``instance`` (same schema, new data).

    Each tuple survives with probability ``1 - delete_fraction``; each
    relation then gains ``round(len * insert_fraction)`` synthesized tuples
    whose values are drawn from the relation's existing values (plus
    occasional fresh ones, and NULLs in nullable columns), so joins still
    find partners.  Integrity constraints are *not* re-established: the
    engines under test must agree on dirty data too.
    """
    rng = random.Random(seed)
    perturbed = DatabaseInstance(instance.schema)
    for name, relation in instance.relations.items():
        schema = relation.schema
        survivors = [
            values
            for _, values in relation.tuples()
            if rng.random() >= delete_fraction
        ]
        pools: list[list[Any]] = []
        for index, attr in enumerate(schema.attributes):
            pool = [values[index] for _, values in relation.tuples()]
            pools.append(pool or [_fresh_value(rng, attr.dtype)])
        inserted = []
        for _ in range(round(len(relation) * insert_fraction)):
            row = []
            for index, attr in enumerate(schema.attributes):
                if attr.nullable and rng.random() < null_fraction:
                    row.append(None)
                elif rng.random() < 0.15:
                    row.append(_fresh_value(rng, attr.dtype))
                else:
                    row.append(rng.choice(pools[index]))
            inserted.append(tuple(row))
        target = perturbed.relation(name)
        for values in survivors + inserted:
            target.insert(values)
    return perturbed


def _fresh_value(rng: random.Random, dtype: DataType) -> Any:
    if dtype is DataType.INT:
        return rng.randint(0, 999)
    if dtype is DataType.FLOAT:
        return round(rng.uniform(0.0, 99.0), 2)
    if dtype is DataType.BOOL:
        return rng.random() < 0.5
    return f"v{rng.randint(0, 999)}"


# ---------------------------------------------------------------------------
# Query generation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzQuery:
    """One generated query: expression, its DSL text, and parameter values."""

    seed: int
    expression: RAExpression
    dsl: str
    params: "dict[str, Any]" = field(default_factory=dict)

    def repro(self) -> str:
        """The reproduction one-liner printed on a differential failure."""
        text = f"seed={self.seed} query: {self.dsl}"
        if self.params:
            text += f" params={self.params!r}"
        return text


class QueryFuzzer:
    """Schema-aware random generator of evaluable RA queries.

    Deterministic per ``(schema contents, seed)``: :meth:`query` derives all
    randomness from the given seed, never from global state.  Pass the
    ``instance`` the queries will run on so literals are drawn from live
    column values (selective predicates, joinable constants).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        *,
        instance: DatabaseInstance | None = None,
        max_depth: int = 4,
        allow_aggregates: bool = True,
        allow_params: bool = True,
        join_heavy: bool = False,
    ) -> None:
        self.schema = schema
        self.max_depth = max_depth
        self.allow_aggregates = allow_aggregates
        self.allow_params = allow_params
        self.join_heavy = join_heavy
        self._foreign_keys = tuple(schema.foreign_keys())
        self._pools = self._value_pools(instance)

    def _value_pools(self, instance: DatabaseInstance | None) -> dict[DataType, list[Any]]:
        pools: dict[DataType, list[Any]] = {
            DataType.INT: [0, 1, 2, 5, 10, 100],
            DataType.FLOAT: [0.5, 1.5, 2.5, 10.25],
            DataType.STRING: ["a", "b", "c"],
            DataType.BOOL: [True, False],
        }
        if instance is None:
            return pools
        seen: dict[DataType, list[Any]] = {dtype: [] for dtype in pools}
        for relation in instance.relations.values():
            for index, attr in enumerate(relation.schema.attributes):
                bucket = seen[attr.dtype]
                for _, values in relation.tuples():
                    value = values[index]
                    if value is None or value in bucket:
                        continue
                    if isinstance(value, str) and "'" in value:
                        continue  # not expressible in the DSL
                    if isinstance(value, float) and "e" in repr(value):
                        continue
                    bucket.append(value)
                    if len(bucket) >= 24:
                        break
        for dtype, bucket in seen.items():
            if bucket:
                pools[dtype] = bucket
        # Off-by-one neighbours make <=/< boundaries interesting.
        pools[DataType.INT] = pools[DataType.INT] + [
            v + 1 for v in pools[DataType.INT][:4]
        ]
        return pools

    # -- public API ---------------------------------------------------------

    def query(self, seed: int) -> FuzzQuery:
        """Generate the query for ``seed`` (same seed → same query)."""
        # A string seed hashes via SHA-512 inside Random, so generation is
        # stable across processes regardless of PYTHONHASHSEED.
        rng = random.Random(f"repro-fuzz-{seed}")
        params: dict[str, Any] = {}
        expression = self._expression(rng, self.max_depth, params)
        return FuzzQuery(
            seed=seed, expression=expression, dsl=to_dsl(expression), params=params
        )

    def queries(self, count: int, *, start: int = 0) -> Iterator[FuzzQuery]:
        """``count`` queries for seeds ``start .. start+count-1``."""
        for seed in range(start, start + count):
            yield self.query(seed)

    # -- generation ---------------------------------------------------------

    def _expression(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression:
        if depth <= 0 or rng.random() < (0.1 if self.join_heavy else 0.25):
            return self._base(rng)
        if self.join_heavy:
            # Join-heavy mode: deeper, mostly-join trees whose equi-join keys
            # follow declared foreign keys — the shape the cost-based
            # reorder/semijoin passes and the columnar join path optimize.
            # A separate branch so the default mode's random streams (and
            # therefore every historical seed) are untouched.
            generators = [
                (self._gen_selection, 3),
                (self._gen_projection, 2),
                (self._gen_fk_join, 8),
                (self._gen_theta_join, 5),
                (self._gen_natural_join, 2),
                (self._gen_set_op, 1),
            ]
        else:
            generators = [
                (self._gen_selection, 5),
                (self._gen_projection, 4),
                (self._gen_rename, 2),
                (self._gen_theta_join, 4),
                (self._gen_natural_join, 2),
                (self._gen_set_op, 4),
            ]
        if self.allow_aggregates:
            generators.append((self._gen_group_by, 3))
        makers = [g for g, _ in generators]
        weights = [w for _, w in generators]
        for _ in range(6):
            maker = rng.choices(makers, weights=weights)[0]
            candidate = maker(rng, depth, params)
            if candidate is not None:
                return candidate
        return self._base(rng)

    def _base(self, rng: random.Random) -> RAExpression:
        return RelationRef(rng.choice(tuple(self.schema.relations)))

    def _schema_of(self, expression: RAExpression) -> RelationSchema:
        return expression.output_schema(self.schema)

    # Each generator returns None when its preconditions don't hold for the
    # randomly chosen inputs; the caller then rolls another operator.

    def _gen_selection(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression | None:
        child = self._expression(rng, depth - 1, params)
        predicate = self._predicate(rng, self._schema_of(child), params)
        if predicate is None:
            return None
        return Selection(child, predicate)

    def _gen_projection(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression | None:
        child = self._expression(rng, depth - 1, params)
        schema = self._schema_of(child)
        names = list(schema.attribute_names)
        count = rng.randint(1, len(names))
        columns = rng.sample(names, count)
        if rng.random() < 0.3:
            aliases = tuple(f"x{i + 1}" for i in range(count))
            return Projection(child, tuple(columns), aliases)
        return Projection(child, tuple(columns))

    def _gen_rename(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression | None:
        child = self._expression(rng, depth - 1, params)
        schema = self._schema_of(child)
        if rng.random() < 0.5:
            return Rename(child, prefix=f"t{rng.randint(1, 9)}")
        attr = rng.choice(schema.attribute_names)
        new_name = f"renamed_{rng.randint(1, 99)}"
        if schema.has_attribute(new_name):
            return None
        return Rename(child, attribute_mapping=((attr, new_name),))

    def _gen_theta_join(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression | None:
        left = Rename(self._expression(rng, depth - 1, params), prefix=f"j{rng.randint(1, 4)}a")
        right = Rename(self._expression(rng, depth - 1, params), prefix=f"j{rng.randint(1, 4)}b")
        left_schema, right_schema = self._schema_of(left), self._schema_of(right)
        pairs = [
            (a.name, b.name)
            for a in left_schema.attributes
            for b in right_schema.attributes
            if a.dtype == b.dtype
        ]
        if not pairs:
            return None
        conjuncts: list[Predicate] = []
        for a, b in rng.sample(pairs, min(len(pairs), rng.randint(1, 2))):
            conjuncts.append(Comparison("=", ColumnRef(a), ColumnRef(b)))
        if rng.random() < 0.3:
            extra = self._comparison(rng, left_schema, params)
            if extra is not None:
                conjuncts.append(extra)
        predicate: Predicate = conjuncts[0] if len(conjuncts) == 1 else And(tuple(conjuncts))
        return Join(left, right, predicate)

    def _gen_fk_join(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression | None:
        """A left-deep chain of equi-joins following declared foreign keys.

        Each hop joins the chain's most recent relation to a neighbour in the
        schema's FK graph (either direction), on exactly the FK columns —
        the join shape semijoin reduction looks for.  Hops get distinct
        rename prefixes (``f{tag}r{i}``) so self-joins stay unambiguous, and
        an occasional extra selective filter rides along.
        """
        if not self._foreign_keys:
            return None
        fk = rng.choice(self._foreign_keys)
        tag = rng.randint(1, 9)
        last_rel = fk.child if rng.random() < 0.5 else fk.parent
        current: RAExpression = Rename(RelationRef(last_rel), prefix=f"f{tag}r0")
        last_offset = 0
        hops = rng.randint(1, max(1, min(depth, 3)))
        joined = 0
        for i in range(1, hops + 1):
            neighbours = [
                c for c in self._foreign_keys if last_rel in (c.child, c.parent)
            ]
            if not neighbours:
                break
            hop = rng.choice(neighbours)
            if hop.child == last_rel:
                next_rel = hop.parent
                my_attrs, their_attrs = hop.child_attributes, hop.parent_attributes
            else:
                next_rel = hop.child
                my_attrs, their_attrs = hop.parent_attributes, hop.child_attributes
            right = Rename(RelationRef(next_rel), prefix=f"f{tag}r{i}")
            current_schema = self._schema_of(current)
            right_schema = self._schema_of(right)
            last_base = self.schema.relations[last_rel]
            next_base = self.schema.relations[next_rel]
            conjuncts: list[Predicate] = [
                Comparison(
                    "=",
                    ColumnRef(
                        current_schema.attributes[
                            last_offset + last_base.index_of(a)
                        ].name
                    ),
                    ColumnRef(right_schema.attributes[next_base.index_of(b)].name),
                )
                for a, b in zip(my_attrs, their_attrs)
            ]
            predicate: Predicate = (
                conjuncts[0] if len(conjuncts) == 1 else And(tuple(conjuncts))
            )
            last_offset = current_schema.arity
            current = Join(current, right, predicate)
            last_rel = next_rel
            joined += 1
        if not joined:
            return None
        if rng.random() < 0.3:
            extra = self._comparison(rng, self._schema_of(current), params)
            if extra is not None:
                current = Selection(current, extra)
        return current

    def _gen_natural_join(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression | None:
        left = self._expression(rng, depth - 1, params)
        right = self._base(rng)
        node = NaturalJoin(left, right)
        if not node.shared_attributes(self.schema):
            return None  # would degenerate to a cross product — skip
        return node

    def _gen_set_op(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression | None:
        left = self._expression(rng, depth - 1, params)
        schema = self._schema_of(left)
        kind = rng.choice((Union, Difference, Intersection))
        if rng.random() < 0.5:
            # Same-shape operand: a filtered version of the left side, so
            # differences and intersections are non-trivially overlapping.
            predicate = self._predicate(rng, schema, params)
            if predicate is None:
                return None
            return kind(left, Selection(left, predicate))
        right = self._projection_with_signature(
            rng, tuple(a.dtype for a in schema.attributes)
        )
        if right is None:
            return None
        return kind(left, right)

    def _projection_with_signature(
        self, rng: random.Random, signature: Sequence[DataType]
    ) -> RAExpression | None:
        """A projection over some base relation matching ``signature`` exactly."""
        candidates = []
        for name, relation in self.schema.relations.items():
            by_type: dict[DataType, list[str]] = {}
            for attr in relation.attributes:
                by_type.setdefault(attr.dtype, []).append(attr.name)
            if all(dtype in by_type for dtype in signature):
                candidates.append((name, by_type))
        if not candidates:
            return None
        name, by_type = rng.choice(candidates)
        columns = tuple(rng.choice(by_type[dtype]) for dtype in signature)
        aliases = tuple(f"u{i + 1}" for i in range(len(columns)))
        return Projection(RelationRef(name), columns, aliases)

    def _gen_group_by(
        self, rng: random.Random, depth: int, params: "dict[str, Any]"
    ) -> RAExpression | None:
        child = self._expression(rng, depth - 1, params)
        schema = self._schema_of(child)
        names = list(schema.attribute_names)
        group_count = rng.randint(0, min(2, len(names)))
        group = tuple(rng.sample(names, group_count))
        aggregates: list[AggregateSpec] = []
        for index in range(rng.randint(1, 2)):
            alias = f"z_agg{index + 1}"
            if schema.has_attribute(alias):
                return None
            choice = rng.random()
            int_columns = [
                a.name for a in schema.attributes if a.dtype is DataType.INT
            ]
            if choice < 0.35 or not names:
                aggregates.append(AggregateSpec(AggregateFunction.COUNT, None, alias))
            elif choice < 0.55 and int_columns:
                # SUM/AVG stay on integers: float accumulation order differs
                # between backends and the differential suite checks equality.
                func = rng.choice((AggregateFunction.SUM, AggregateFunction.AVG))
                aggregates.append(AggregateSpec(func, rng.choice(int_columns), alias))
            elif choice < 0.8:
                func = rng.choice((AggregateFunction.MIN, AggregateFunction.MAX))
                aggregates.append(AggregateSpec(func, rng.choice(names), alias))
            else:
                aggregates.append(
                    AggregateSpec(AggregateFunction.COUNT, rng.choice(names), alias)
                )
        return GroupBy(child, group, tuple(aggregates))

    # -- predicates ---------------------------------------------------------

    def _predicate(
        self, rng: random.Random, schema: RelationSchema, params: "dict[str, Any]"
    ) -> Predicate | None:
        atoms: list[Predicate] = []
        for _ in range(rng.randint(1, 3)):
            atom = self._comparison(rng, schema, params)
            if atom is not None:
                atoms.append(atom)
        if not atoms:
            return None
        if len(atoms) == 1:
            predicate = atoms[0]
        elif rng.random() < 0.6:
            predicate = And(tuple(atoms))
        else:
            predicate = Or(tuple(atoms))
        if rng.random() < 0.2:
            predicate = Not(predicate)
        return predicate

    def _comparison(
        self, rng: random.Random, schema: RelationSchema, params: "dict[str, Any]"
    ) -> Predicate | None:
        attribute = rng.choice(schema.attributes)
        op = rng.choice(
            _COMPARISON_OPS if attribute.dtype is not DataType.BOOL else ("=", "!=")
        )
        if rng.random() < 0.25:
            partners = [
                a.name
                for a in schema.attributes
                if a.name != attribute.name and a.dtype == attribute.dtype
            ]
            if partners:
                return Comparison(op, ColumnRef(attribute.name), ColumnRef(rng.choice(partners)))
        value = rng.choice(self._pools[attribute.dtype])
        right: Scalar = Literal(value)
        if self.allow_params and rng.random() < 0.15:
            name = f"p{len(params) + 1}"
            params[name] = value
            right = Param(name)
        return Comparison(op, ColumnRef(attribute.name), right)


# ---------------------------------------------------------------------------
# Counterexample mode: wrong-query pairs, all algorithms, verified witnesses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WrongQueryPair:
    """A generated (reference, wrong submission) pair that differs on the data."""

    seed: int
    correct: RAExpression
    mutant: RAExpression
    correct_dsl: str
    mutant_dsl: str
    mutation: str
    params: "dict[str, Any]" = field(default_factory=dict)

    def repro(self) -> str:
        """Reproduction one-liner: regenerate with ``CounterexampleFuzzer.pair(seed)``."""
        text = (
            f"seed={self.seed} correct: {self.correct_dsl} || "
            f"mutant ({self.mutation}): {self.mutant_dsl}"
        )
        if self.params:
            text += f" params={self.params!r}"
        return text


@dataclass
class CounterexampleOutcome:
    """One (pair, algorithm) trial: the witness and its verification report."""

    pair: WrongQueryPair
    algorithm: str
    result: "Any | None" = None  # CounterexampleResult
    report: "Any | None" = None  # VerificationReport
    skipped: str | None = None  # reason the algorithm did not produce a witness
    error: str | None = None  # unexpected failure (a bug)

    @property
    def ok(self) -> bool:
        return self.error is None and (self.report is None or self.report.valid)

    def repro(self) -> str:
        detail = self.error or (
            "; ".join(self.report.issues) if self.report is not None else ""
        )
        return f"[{self.algorithm}] {self.pair.repro()} -> {detail}"


class CounterexampleFuzzer:
    """Seeded wrong-query pairs: a generated reference plus one of its mutants.

    Deterministic per ``(instance contents, seed)``: the reference query comes
    from :class:`QueryFuzzer`, the wrong submission from the mutation
    operators the course workload uses (``repro.workload.mutations``), chosen
    by the same seed.  Only pairs that actually *differ* on the instance are
    produced — a mutant that happens to be equivalent on the data is not a
    wrong query in the paper's sense.
    """

    #: How many mutants of one reference query are probed before giving up.
    MUTANTS_PER_SEED = 8

    def __init__(
        self,
        instance: DatabaseInstance,
        *,
        max_depth: int = 3,
        allow_aggregates: bool = True,
        allow_params: bool = True,
        session: "Any | None" = None,
    ) -> None:
        from repro.engine.session import EngineSession

        self.instance = instance
        self.session = session if session is not None else EngineSession(instance)
        self.fuzzer = QueryFuzzer(
            instance.schema,
            instance=instance,
            max_depth=max_depth,
            allow_aggregates=allow_aggregates,
            allow_params=allow_params,
        )
        pools = self.fuzzer._pools
        self._constant_pool = [pool[0] for pool in pools.values() if pool]

    def pair(self, seed: int) -> WrongQueryPair | None:
        """The wrong-query pair for ``seed`` (None when no mutant differs)."""
        from repro.errors import ReproError
        from repro.parser.ra_parser import parse_query
        from repro.workload.mutations import generate_mutants

        fuzz_query = self.fuzzer.query(seed)
        try:
            reference_schema = fuzz_query.expression.output_schema(self.instance.schema)
            reference_rows = self.session.evaluate(fuzz_query.expression, fuzz_query.params)
        except ReproError:
            return None  # the reference query itself does not evaluate
        mutants = generate_mutants(
            fuzz_query.expression, constant_pool=self._constant_pool
        )
        rng = random.Random(f"repro-cexfuzz-{seed}")
        rng.shuffle(mutants)
        for mutant in mutants[: self.MUTANTS_PER_SEED]:
            try:
                mutant_dsl = to_dsl(mutant.query)
            except ValueError:
                continue  # not expressible in the DSL — no reproduction line
            try:
                mutant_schema = mutant.query.output_schema(self.instance.schema)
                mutant_rows = self.session.evaluate(mutant.query, fuzz_query.params)
            except ReproError:
                continue
            if not reference_schema.union_compatible(mutant_schema):
                # A grader rejects schema-incompatible submissions outright
                # (``error_kind="schema_error"``); no counterexample exists.
                continue
            if mutant_rows.same_rows(reference_rows):
                continue
            # The pair must reproduce from DSL text alone; a mutant whose
            # rendering does not parse back cannot carry a repro line, so it
            # is skipped here (DSL round-trip fidelity itself is covered by
            # the differential suite, not this mode).
            try:
                reparsed = parse_query(mutant_dsl)
            except ReproError:
                continue
            return WrongQueryPair(
                seed=seed,
                correct=fuzz_query.expression,
                mutant=reparsed,
                correct_dsl=fuzz_query.dsl,
                mutant_dsl=mutant_dsl,
                mutation=mutant.description,
                params=fuzz_query.params,
            )
        return None

    def pairs(
        self, count: int, *, start: int = 0, max_seeds: int | None = None
    ) -> Iterator[WrongQueryPair]:
        """``count`` wrong pairs, advancing seeds from ``start`` until found."""
        produced = 0
        seed = start
        limit = max_seeds if max_seeds is not None else max(50 * count, 1000)
        while produced < count and seed < start + limit:
            pair = self.pair(seed)
            seed += 1
            if pair is not None:
                produced += 1
                yield pair


def applicable_algorithms(q1: RAExpression, q2: RAExpression) -> tuple[str, ...]:
    """The :data:`repro.core.finder.ALGORITHMS` entries worth running on a pair.

    Aggregate pairs route to the aggregate algorithms; SPJUD pairs run the
    general solvers plus the poly-time specialisations where their query
    classes allow (the specialised entries may still raise
    ``NotApplicableError`` on inspection — callers treat that as a skip, which
    keeps this routing an over-approximation rather than a filter to trust).
    """
    from repro.core.aggregates import is_aggregate_pair
    from repro.ra.analysis import profile

    if is_aggregate_pair(q1, q2):
        return ("agg-opt", "agg-basic")
    names = ["optsigma", "basic"]
    if profile(q1).is_monotone and profile(q2).is_monotone:
        names.append("polytime-dnf")
    names.append("spjud-star")
    return tuple(names)


#: Per-algorithm option overrides keeping fuzz trials bounded: the point is
#: verifying many witnesses, not stress-testing solver scalability.
_FUZZ_ALGORITHM_OPTIONS: "dict[str, dict[str, Any]]" = {
    "basic": {"max_rows": 12},
    "spjud-star": {"max_witnesses_per_terminal": 16, "max_combinations": 2000},
}


def run_counterexample_fuzz(
    instance: DatabaseInstance,
    *,
    pairs: int,
    start: int = 0,
    max_depth: int = 3,
    allow_aggregates: bool = True,
    verify: bool = True,
    bruteforce_budget: int = 5_000,
    enumeration_budget: int = 32,
) -> "list[CounterexampleOutcome]":
    """Counterexample mode: generate, solve with every applicable algorithm, verify.

    Returns one outcome per (wrong pair, algorithm) trial.  ``skipped``
    outcomes are expected (specialised algorithms refusing a query class, the
    aggregate solver exhausting its budget, dirty fuzz data making the FK
    clauses unsatisfiable); ``error`` outcomes and invalid verification
    reports are bugs, and ``CounterexampleOutcome.repro()`` prints the seeded
    DSL one-liner that reproduces them.
    """
    from repro.core.aggregates import is_aggregate_pair
    from repro.core.finder import find_smallest_counterexample
    from repro.core.verify import verify_counterexample
    from repro.errors import (
        CounterexampleError,
        NotApplicableError,
        QueryEvaluationError,
        UnsatisfiableError,
    )
    from repro.solver.theory import AggregateSolverConfig

    fuzzer = CounterexampleFuzzer(
        instance, max_depth=max_depth, allow_aggregates=allow_aggregates
    )
    outcomes: list[CounterexampleOutcome] = []
    for pair in fuzzer.pairs(pairs, start=start):
        for algorithm in applicable_algorithms(pair.correct, pair.mutant):
            options: dict[str, Any] = dict(_FUZZ_ALGORITHM_OPTIONS.get(algorithm, {}))
            if is_aggregate_pair(pair.correct, pair.mutant) and algorithm == "agg-basic":
                options["solver_config"] = AggregateSolverConfig(
                    max_nodes=20_000, time_budget=2.0
                )
            outcome = CounterexampleOutcome(pair=pair, algorithm=algorithm)
            try:
                result = find_smallest_counterexample(
                    pair.correct,
                    pair.mutant,
                    instance,
                    algorithm=algorithm,
                    params=pair.params,
                    session=fuzzer.session,
                    **options,
                )
            except (NotApplicableError, CounterexampleError, UnsatisfiableError) as exc:
                outcome.skipped = f"{type(exc).__name__}: {exc}"
                outcomes.append(outcome)
                continue
            except QueryEvaluationError as exc:
                # Mutants may divide by zero or compare incompatible types on
                # rows only the counterexample search evaluates.
                outcome.skipped = f"QueryEvaluationError: {exc}"
                outcomes.append(outcome)
                continue
            except Exception as exc:  # noqa: BLE001 — a fuzz finding, reported as such
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcomes.append(outcome)
                continue
            outcome.result = result
            if verify:
                outcome.report = verify_counterexample(
                    pair.correct,
                    pair.mutant,
                    instance,
                    result,
                    params=pair.params,
                    session=fuzzer.session,
                    bruteforce_budget=bruteforce_budget,
                    enumeration_budget=enumeration_budget,
                )
            outcomes.append(outcome)
    return outcomes
