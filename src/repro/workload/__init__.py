"""Query workloads: course questions, beers homework problems, TPC-H queries."""

from repro.workload.beers_questions import (
    RATEST_PROBLEMS,
    BeersProblem,
    beers_problem,
    beers_problems,
)
from repro.workload.course import (
    CourseQuestion,
    SubmissionPool,
    course_questions,
    course_submission_pool,
)
from repro.workload.fuzz import (
    FuzzQuery,
    QueryFuzzer,
    perturb_instance,
    to_dsl,
)
from repro.workload.mutations import (
    ALL_MUTATION_OPERATORS,
    Mutant,
    drop_conjuncts,
    drop_difference,
    flip_comparison_operators,
    generate_mutants,
    mutate_constants,
    mutate_group_by,
    relax_comparison_operators,
    replace_difference_with_union,
    replace_intersection_with_union,
    swap_difference_operands,
)
from repro.workload.tpch_queries import TpchQuery, tpch_queries, tpch_query

__all__ = [
    "ALL_MUTATION_OPERATORS",
    "BeersProblem",
    "CourseQuestion",
    "FuzzQuery",
    "Mutant",
    "QueryFuzzer",
    "RATEST_PROBLEMS",
    "SubmissionPool",
    "TpchQuery",
    "beers_problem",
    "beers_problems",
    "course_questions",
    "course_submission_pool",
    "drop_conjuncts",
    "drop_difference",
    "flip_comparison_operators",
    "generate_mutants",
    "mutate_constants",
    "mutate_group_by",
    "perturb_instance",
    "relax_comparison_operators",
    "replace_difference_with_union",
    "replace_intersection_with_union",
    "swap_difference_operands",
    "to_dsl",
    "tpch_queries",
    "tpch_query",
]
